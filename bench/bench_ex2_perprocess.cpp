// Experiment E2 (§6 II + §5.1 remote execution): per-process views.
//
// Claim reproduced: for remote execution, binding the child's root to the
// invoker's root gives parameter coherence but no local access; binding it
// to the executor's root gives local access but breaks parameters; the
// per-process view (private root carrying the parent's bindings plus a
// fresh attachment of the executor's tree) gives both — "in spite of not
// having global names".
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "os/process_manager.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct ExecWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  ProcessManager pm{graph, fs, net, transport};
  MachineId m1, m2;
  EntityId r1, r2;
  ProcessId parent;
  std::vector<CompoundName> params;       // names passed to the child
  std::vector<CompoundName> local_names;  // executor-machine names

  ExecWorld() {
    NetworkId n = net.add_network("lan");
    m1 = net.add_machine(n, "m1");
    m2 = net.add_machine(n, "m2");
    r1 = fs.make_root("m1");
    r2 = fs.make_root("m2");
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 4;
    spec.common_fraction = 0.5;
    spec.site_tag = "s1";
    populate_tree(fs, r1, spec, 401);
    spec.site_tag = "s2";
    populate_tree(fs, r2, spec, 401);
    parent = pm.spawn(m1, "parent", r1, r1);
    params = absolutize(probes_from_dir(graph, r1));
    local_names = absolutize(probes_from_dir(graph, r2));
  }

  struct Row {
    double param_coherence;
    double local_access;
  };

  Row measure(RemoteExecPolicy policy) {
    auto child = pm.remote_exec(parent, m2, "child", policy, r2,
                                Name("exec-site"));
    NAMECOH_CHECK(child.is_ok(), "remote_exec");
    FractionCounter param_ok, local_ok;
    for (const auto& p : params) {
      param_ok.add(pm.resolve_internal(parent, p.to_path())
                       .same_entity(pm.resolve_internal(child.value(),
                                                        p.to_path())));
    }
    // Local access: the executor's files, via their local name or via the
    // per-process attachment prefix.
    Context executor_ctx = FileSystem::make_process_context(r2, r2);
    for (const auto& p : local_names) {
      Resolution truth = fs.resolve_path(executor_ctx, p.to_path());
      if (!truth.ok()) continue;
      Resolution direct = pm.resolve_internal(child.value(), p.to_path());
      Resolution via_attach = pm.resolve_internal(
          child.value(), "/exec-site" + p.to_path());
      local_ok.add(truth.same_entity(direct) ||
                   truth.same_entity(via_attach));
    }
    NAMECOH_CHECK(pm.kill(child.value()).is_ok(), "kill child");
    return Row{param_ok.fraction(), local_ok.fraction()};
  }
};

void run_experiment() {
  bench::print_header(
      "E2: remote execution & per-process views (§6 II, §5.1)",
      "invoker-root: parameters coherent, no local access.  executor-root: "
      "the reverse.\nper-process private attach: both at once, without "
      "global names.");

  ExecWorld w;
  Table t({"child context policy", "parameter coherence",
           "executor-local access"});
  for (RemoteExecPolicy policy :
       {RemoteExecPolicy::kInvokerRoot, RemoteExecPolicy::kExecutorRoot,
        RemoteExecPolicy::kPrivateAttach}) {
    auto row = w.measure(policy);
    t.add_row({std::string(remote_exec_policy_name(policy)),
               bench::frac(row.param_coherence),
               bench::frac(row.local_access)});
  }
  t.print(std::cout);

  // The view-sharing form of §6 II: two processes on different machines
  // given identical private views are coherent for every name.
  EntityId view = w.graph.add_context_object("shared-view");
  w.graph.context(view).bind(Name("."), view);
  w.graph.context(view).bind(Name(".."), view);
  NAMECOH_CHECK(w.fs.attach(view, Name("m1"), w.r1).is_ok(), "");
  NAMECOH_CHECK(w.fs.attach(view, Name("m2"), w.r2).is_ok(), "");
  ProcessId a = w.pm.spawn(w.m1, "a", view, view);
  ProcessId b = w.pm.spawn(w.m2, "b", view, view);
  FractionCounter coherent;
  for (const auto& p : absolutize(probes_from_dir(w.graph, view))) {
    coherent.add(w.pm.resolve_internal(a, p.to_path())
                     .same_entity(w.pm.resolve_internal(b, p.to_path())));
  }
  Table t2({"identical per-process views on different machines", "value"});
  t2.add_row({"strict coherence over the whole view",
              bench::frac(coherent.fraction())});
  t2.add_row({"probes", std::to_string(coherent.trials())});
  t2.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_RemoteExecSpawn(benchmark::State& state) {
  // Design-choice ablation (DESIGN.md #5): cost of building the child
  // context per policy; private-attach copies the parent's root bindings.
  ExecWorld w;
  auto policy = static_cast<RemoteExecPolicy>(state.range(0));
  int i = 0;
  for (auto _ : state) {
    ++i;
    auto child = w.pm.remote_exec(w.parent, w.m2,
                                  "c" + std::to_string(i), policy, w.r2,
                                  Name("x" + std::to_string(i)));
    benchmark::DoNotOptimize(child);
    state.PauseTiming();
    if (child.is_ok()) (void)w.pm.kill(child.value());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteExecSpawn)
    ->Arg(static_cast<int>(RemoteExecPolicy::kInvokerRoot))
    ->Arg(static_cast<int>(RemoteExecPolicy::kExecutorRoot))
    ->Arg(static_cast<int>(RemoteExecPolicy::kPrivateAttach));

void BM_ForkChild(benchmark::State& state) {
  ExecWorld w;
  int i = 0;
  for (auto _ : state) {
    ProcessId child = w.pm.fork_child(w.parent, "f" + std::to_string(i++));
    benchmark::DoNotOptimize(child);
    state.PauseTiming();
    (void)w.pm.kill(child);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForkChild);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
