// Experiment U3 (mechanics): file-system substrate and snapshot costs.
//
// Prints a storage-shape table (entities, bindings, snapshot bytes) for
// growing trees — the §5.3 "ship a subtree between autonomous systems"
// payload cost — then microbenchmarks the fs operations every scheme and
// experiment sits on.
#include "bench_common.hpp"
#include "fs/fsck.hpp"
#include "fs/snapshot.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct FsWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  EntityId root;

  explicit FsWorld(std::size_t depth = 3, std::size_t fanout = 3) {
    root = fs.make_root("root");
    TreeSpec spec;
    spec.depth = depth;
    spec.dirs_per_dir = fanout;
    spec.files_per_dir = 3;
    spec.common_fraction = 1.0;
    populate_tree(fs, root, spec, 77);
  }
};

void run_experiment() {
  bench::print_header(
      "U3: file-system substrate & snapshot costs",
      "Storage shape of growing naming trees and the byte cost of shipping "
      "them as\nsnapshots (§5.3 copies across autonomous systems).");

  Table t({"depth", "fanout", "directories", "files", "bindings",
           "snapshot bytes", "bytes/entity"});
  for (auto [depth, fanout] : {std::pair<std::size_t, std::size_t>{2, 2},
                               {3, 3},
                               {4, 4}}) {
    FsWorld w(depth, fanout);
    FsckReport shape = fsck(w.graph, w.root);
    NAMECOH_CHECK(shape.clean(), "fsck");
    auto snapshot = export_subtree(w.graph, w.root);
    NAMECOH_CHECK(snapshot.is_ok(), "export");
    double entities =
        static_cast<double>(shape.directories + shape.files);
    t.add_row({std::to_string(depth), std::to_string(fanout),
               std::to_string(shape.directories),
               std::to_string(shape.files),
               std::to_string(shape.bindings),
               std::to_string(snapshot.value().size()),
               bench::frac(static_cast<double>(snapshot.value().size()) /
                               entities,
                           1)});
  }
  t.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_MkdirP(benchmark::State& state) {
  FsWorld w(1, 1);
  int i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        w.fs.mkdir_p(w.root, "a" + std::to_string(i) + "/b/c/d"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_MkdirP);

void BM_CreateFileAt(benchmark::State& state) {
  FsWorld w(1, 1);
  int i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(w.fs.create_file_at(
        w.root, "dir/f" + std::to_string(i), "contents"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CreateFileAt);

void BM_Walk(benchmark::State& state) {
  FsWorld w(4, 3);
  for (auto _ : state) {
    std::size_t count = 0;
    w.fs.walk(w.root, [&](const CompoundName&, EntityId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Walk);

void BM_CopySubtree(benchmark::State& state) {
  FsWorld w(static_cast<std::size_t>(state.range(0)), 3);
  EntityId dest = w.fs.make_root("dest");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.fs.copy_subtree(
        w.root, dest, Name("c" + std::to_string(i++))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CopySubtree)->Arg(2)->Arg(4);

void BM_SnapshotExport(benchmark::State& state) {
  FsWorld w(4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(export_subtree(w.graph, w.root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotExport);

void BM_SnapshotImport(benchmark::State& state) {
  FsWorld w(4, 3);
  std::string snapshot = export_subtree(w.graph, w.root).value();
  NamingGraph dst_graph;
  FileSystem dst_fs(dst_graph);
  EntityId dst = dst_fs.make_root("dst");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dst_fs.graph().entity_count());
    benchmark::DoNotOptimize(import_snapshot(
        dst_fs, dst, Name("s" + std::to_string(i++)), snapshot));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotImport);

void BM_Fsck(benchmark::State& state) {
  FsWorld w(4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsck(w.graph, w.root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fsck);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
