// Experiment X3 (extension): continuous churn — what the R(sender) remap
// fixes and what it cannot.
//
// The remap eliminates *context* incoherence (sender and receiver
// qualifying the same pid differently) completely, at any churn rate. It
// cannot eliminate *staleness*: if the subject's machine is renumbered
// after the pid was captured, the pid is simply out of date. The sweep
// shows validity pinned by staleness alone with the remap on, and
// strictly worse without it — with the gap being exactly the
// cross-machine traffic share.
#include "bench_common.hpp"
#include "workload/churn.hpp"

namespace namecoh {
namespace {

struct ChurnWorld {
  Simulator sim;
  Internetwork net;
  std::vector<MachineId> machines;
  std::vector<EndpointId> processes;

  ChurnWorld() {
    NetworkId n1 = net.add_network("n1");
    NetworkId n2 = net.add_network("n2");
    for (int m = 0; m < 3; ++m) {
      machines.push_back(net.add_machine(m < 2 ? n1 : n2,
                                         "m" + std::to_string(m)));
      for (int p = 0; p < 4; ++p) {
        processes.push_back(net.add_endpoint(machines.back(), "p"));
      }
    }
  }
};

void run_experiment() {
  bench::print_header(
      "X3 (extension): pid validity under continuous churn",
      "The R(sender) remap removes context incoherence at any rate; "
      "staleness from\nrenumbering-in-flight remains and grows with churn.");

  Table t({"renumber interval (ticks)", "remap", "pid valid fraction",
           "deliveries", "reconfigs"});
  for (SimDuration interval : {SimDuration{0}, SimDuration{5000},
                               SimDuration{500}, SimDuration{100}}) {
    for (bool remap : {true, false}) {
      ChurnWorld w;
      TransportConfig config;
      config.remap_embedded_pids = remap;
      Transport transport(w.sim, w.net, config);
      ChurnSpec spec;
      spec.duration = 60000;
      spec.message_interval = 20;
      spec.renumber_interval = interval;
      spec.seed = 99;
      ChurnOutcome outcome = run_churn(w.sim, w.net, transport, w.machines,
                                       w.processes, spec);
      t.add_row({interval == 0 ? "none" : std::to_string(interval),
                 remap ? "on" : "off",
                 bench::frac(outcome.pid_valid.fraction()),
                 std::to_string(outcome.deliveries),
                 std::to_string(outcome.reconfigurations)});
    }
  }
  t.print(std::cout);
  std::cout << "(with no churn, remap-on is exactly 1.000 and remap-off "
               "fails on the cross-machine\n share of traffic; with churn, "
               "remap-on degrades only by true staleness)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ChurnThroughput(benchmark::State& state) {
  for (auto _ : state) {
    ChurnWorld w;
    Transport transport(w.sim, w.net);
    ChurnSpec spec;
    spec.duration = 10000;
    spec.message_interval = 10;
    spec.renumber_interval = 500;
    ChurnOutcome outcome = run_churn(w.sim, w.net, transport, w.machines,
                                     w.processes, spec);
    benchmark::DoNotOptimize(outcome);
    state.counters["deliveries"] =
        static_cast<double>(outcome.deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_ChurnThroughput);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
