// Experiment F5 (Fig. 5 + §5.3, cross-links between autonomous systems).
//
// Claims reproduced:
//   * cross-links give *access* to the remote naming graph: after linking,
//     the fraction of system-2 entities reachable from system 1 jumps from
//     0 to ~1;
//   * they give no *coherence*: the same name still means different things
//     ("no global names between systems unless they happen to use the same
//     prefix name");
//   * exchanged names across the boundary conflict exactly like the shared
//     naming graph's remote-execution case;
//   * the §7 prefix mapping (/users → /org2/users) mechanically restores
//     common reference for 100% of mapped names.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "core/graph_ops.hpp"
#include "schemes/crosslink.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct FederationWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  CrossLinkScheme scheme{fs};
  SiteId org1, org2;
  std::vector<CompoundName> org2_probes;

  FederationWorld() {
    org1 = scheme.add_site("org1");
    org2 = scheme.add_site("org2");
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 4;
    spec.common_fraction = 0.5;
    spec.site_tag = "o1";
    populate_tree(fs, scheme.site_tree(org1), spec, 55);
    spec.site_tag = "o2";
    populate_tree(fs, scheme.site_tree(org2), spec, 55);
    // Organizational structure the paper talks about: /users at both.
    NAMECOH_CHECK(
        fs.create_file_at(scheme.site_tree(org1), "users/ann/profile", "ann")
            .is_ok(), "");
    NAMECOH_CHECK(
        fs.create_file_at(scheme.site_tree(org2), "users/bob/profile", "bob")
            .is_ok(), "");
    scheme.finalize();
    org2_probes = absolutize(probes_from_dir(graph, scheme.site_tree(org2)));
  }

  double reachable_fraction_of_org2_from_org1() {
    auto reachable = reachable_from(graph, scheme.site_tree(org1));
    auto org2_entities = reachable_from(graph, scheme.site_tree(org2));
    std::size_t hit = 0;
    for (EntityId e : org2_entities) {
      if (reachable.contains(e)) ++hit;
    }
    return org2_entities.empty()
               ? 0.0
               : static_cast<double>(hit) /
                     static_cast<double>(org2_entities.size());
  }
};

void run_experiment() {
  bench::print_header(
      "F5: cross-links between autonomous systems (Fig. 5)",
      "Cross-links give access to the remote graph but no coherence; the "
      "§7 prefix\nmapping restores common reference mechanically.");

  FederationWorld w;
  CoherenceAnalyzer analyzer(w.graph);
  EntityId c1 = w.scheme.make_site_context(w.org1);
  EntityId c2 = w.scheme.make_site_context(w.org2);

  double access_before = w.reachable_fraction_of_org2_from_org1();
  DegreeReport coherence_before = analyzer.degree(c1, c2, w.org2_probes);

  NAMECOH_CHECK(
      w.scheme.add_cross_link(w.org1, Name("org2"), w.org2).is_ok(), "");

  double access_after = w.reachable_fraction_of_org2_from_org1();
  DegreeReport coherence_after = analyzer.degree(c1, c2, w.org2_probes);

  Table t({"state", "org2 entities reachable from org1",
           "strict coherence (org2 names)"});
  t.add_row({"before cross-link", bench::frac(access_before),
             bench::frac(coherence_before.strict.fraction())});
  t.add_row({"after cross-link", bench::frac(access_after),
             bench::frac(coherence_after.strict.fraction())});
  t.print(std::cout);

  // Prefix mapping: translate each org2 name for use on org1.
  Context on1 = FileSystem::make_process_context(w.scheme.site_root(w.org1),
                                                 w.scheme.site_root(w.org1));
  Context on2 = FileSystem::make_process_context(w.scheme.site_root(w.org2),
                                                 w.scheme.site_root(w.org2));
  FractionCounter mapped_ok;
  for (const auto& p : w.org2_probes) {
    Resolution meant = w.fs.resolve_path(on2, p.to_path());
    if (!meant.ok()) continue;
    auto mapped = CrossLinkScheme::map_with_prefix(Name("org2"), p.to_path());
    mapped_ok.add(mapped.is_ok() &&
                  w.fs.resolve_path(on1, mapped.value()).same_entity(meant));
  }
  Table t2({"§7 mapping", "restored common reference", "names"});
  t2.add_row({"/X on org2 -> /org2/X on org1",
              bench::frac(mapped_ok.fraction()),
              std::to_string(mapped_ok.trials())});
  t2.print(std::cout);

  // The "same prefix by luck" case: /users exists on both — same *name*,
  // different entity: the dangerous silent conflict.
  ProbeVerdict users = analyzer.probe(c1, c2, CompoundName::path("/users"));
  std::cout << "\n\"/users\" on both systems: verdict = "
            << probe_verdict_name(users)
            << " (same name, different entity — the §5.3 name conflict)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_CrossLinkResolution(benchmark::State& state) {
  FederationWorld w;
  NAMECOH_CHECK(
      w.scheme.add_cross_link(w.org1, Name("org2"), w.org2).is_ok(), "");
  Context on1 = FileSystem::make_process_context(w.scheme.site_root(w.org1),
                                                 w.scheme.site_root(w.org1));
  std::vector<CompoundName> mapped;
  for (const auto& p : w.org2_probes) {
    auto m = CrossLinkScheme::map_with_prefix(Name("org2"), p.to_path());
    if (m.is_ok()) mapped.push_back(CompoundName::path(m.value()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve(w.graph, on1, mapped[i++ % mapped.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CrossLinkResolution);

void BM_ReachabilitySweep(benchmark::State& state) {
  FederationWorld w;
  NAMECOH_CHECK(
      w.scheme.add_cross_link(w.org1, Name("org2"), w.org2).is_ok(), "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reachable_from(w.graph, w.scheme.site_tree(w.org1)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReachabilitySweep);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
