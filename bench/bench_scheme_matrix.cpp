// Experiment S1: the §5 summary — "The Degree of Coherence in Some Common
// Naming Schemes" as one matrix.
//
// Every scheme the paper analyses, built on an identical three-site
// fixture, measured with identical probe sets. Rows reproduce the paper's
// ranking: single graph (global root) at the top, per-process shared views
// equal to it, shared graph in the middle (its /vice subset perfect, local
// names zero), Newcastle and bare federation at the bottom — where the
// mapping-rule column shows what the §5.1/§7 human rules recover.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "coherence/repair.hpp"
#include "schemes/crosslink.hpp"
#include "schemes/newcastle.hpp"
#include "schemes/per_process.hpp"
#include "schemes/shared_graph.hpp"
#include "schemes/single_graph.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct Row {
  std::string scheme;
  double pairwise_strict;
  double pairwise_weak;
  double global_fraction;
  double repairable;  // fraction of incoherent probes a mapping rule fixes
};

template <typename Scheme>
Row measure(Scheme& scheme, NamingGraph& graph, FileSystem& fs,
            bool allow_dot_names) {
  TreeSpec spec;
  spec.depth = 2;
  spec.dirs_per_dir = 2;
  spec.files_per_dir = 3;
  spec.common_fraction = 0.5;
  std::vector<SiteId> sites;
  for (int i = 0; i < 3; ++i) {
    sites.push_back(scheme.add_site("site" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    spec.site_tag = "s" + std::to_string(i);
    populate_tree(fs, scheme.site_tree(sites[i]), spec, 1993);
  }
  scheme.finalize();

  CoherenceAnalyzer analyzer(graph);
  std::vector<EntityId> contexts;
  for (SiteId s : sites) contexts.push_back(scheme.make_site_context(s));
  auto probes =
      absolutize(probes_from_dir(graph, scheme.site_root(sites[0])));

  DegreeReport degree = analyzer.pairwise_degree(contexts, probes);
  FractionCounter global =
      analyzer.global_fraction(contexts, probes, CoherenceMode::kStrict);

  RepairAdvisor advisor(graph);
  RepairOptions options;
  options.allow_dot_names = allow_dot_names;
  RepairReport repair =
      advisor.suggest(contexts[0], contexts[1], probes, options);
  double repairable =
      repair.incoherent == 0
          ? 1.0
          : static_cast<double>(repair.repairable) /
                static_cast<double>(repair.incoherent);

  return Row{std::string(scheme.scheme_name()), degree.strict.fraction(),
             degree.weak.fraction(), global.fraction(), repairable};
}

void run_experiment() {
  bench::print_header(
      "S1: the §5 matrix — degree of coherence across naming schemes",
      "Identical three-site fixture and probe sets for every scheme the "
      "paper analyses.");

  Table t({"scheme", "pairwise strict", "pairwise weak", "global names",
           "repairable by mapping"});

  {
    NamingGraph graph;
    FileSystem fs(graph);
    SingleGraphScheme scheme(fs);
    Row row = measure(scheme, graph, fs, true);
    t.add_row({row.scheme, bench::frac(row.pairwise_strict),
               bench::frac(row.pairwise_weak),
               bench::frac(row.global_fraction),
               bench::frac(row.repairable)});
  }
  {
    NamingGraph graph;
    FileSystem fs(graph);
    PerProcessScheme scheme(fs);
    // For the matrix, processes attach ALL sites (the shared-view case).
    std::vector<SiteId> sites;
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 3;
    spec.common_fraction = 0.5;
    for (int i = 0; i < 3; ++i) {
      sites.push_back(scheme.add_site("site" + std::to_string(i)));
      spec.site_tag = "s" + std::to_string(i);
      populate_tree(fs, scheme.site_tree(sites.back()), spec, 1993);
    }
    scheme.finalize();
    CoherenceAnalyzer analyzer(graph);
    std::vector<EntityId> contexts;
    for (int i = 0; i < 3; ++i) {
      EntityId view = scheme.make_view_of_sites(sites);
      EntityId ctx = graph.add_context_object("p" + std::to_string(i));
      graph.context(ctx) = FileSystem::make_process_context(view, view);
      contexts.push_back(ctx);
    }
    auto probes = absolutize(probes_from_dir(
        graph, graph.context(contexts[0])(Name("/"))));
    DegreeReport degree = analyzer.pairwise_degree(contexts, probes);
    FractionCounter global =
        analyzer.global_fraction(contexts, probes, CoherenceMode::kStrict);
    t.add_row({std::string(scheme.scheme_name()) + " (shared views)",
               bench::frac(degree.strict.fraction()),
               bench::frac(degree.weak.fraction()),
               bench::frac(global.fraction()), bench::frac(1.0)});
  }
  {
    NamingGraph graph;
    FileSystem fs(graph);
    SharedGraphScheme scheme(fs);
    NAMECOH_CHECK(
        fs.create_file_at(scheme.shared_tree(), "lib/shared.o", "s").is_ok(),
        "");
    Row row = measure(scheme, graph, fs, true);
    t.add_row({row.scheme, bench::frac(row.pairwise_strict),
               bench::frac(row.pairwise_weak),
               bench::frac(row.global_fraction),
               bench::frac(row.repairable)});
  }
  {
    NamingGraph graph;
    FileSystem fs(graph);
    NewcastleScheme scheme(fs);
    Row row = measure(scheme, graph, fs, true);
    t.add_row({row.scheme, bench::frac(row.pairwise_strict),
               bench::frac(row.pairwise_weak),
               bench::frac(row.global_fraction),
               bench::frac(row.repairable)});
  }
  {
    NamingGraph graph;
    FileSystem fs(graph);
    CrossLinkScheme scheme(fs);
    Row row = measure(scheme, graph, fs, false);
    t.add_row({row.scheme + " (no links)", bench::frac(row.pairwise_strict),
               bench::frac(row.pairwise_weak),
               bench::frac(row.global_fraction),
               bench::frac(row.repairable)});
  }
  {
    NamingGraph graph;
    FileSystem fs(graph);
    CrossLinkScheme scheme(fs);
    // Build with links this time.
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 3;
    spec.common_fraction = 0.5;
    std::vector<SiteId> sites;
    for (int i = 0; i < 3; ++i) {
      sites.push_back(scheme.add_site("site" + std::to_string(i)));
      spec.site_tag = "s" + std::to_string(i);
      populate_tree(fs, scheme.site_tree(sites.back()), spec, 1993);
    }
    scheme.finalize();
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i == j) continue;
        NAMECOH_CHECK(scheme.add_cross_link(
                          sites[i], Name("site" + std::to_string(j)),
                          sites[j]).is_ok(), "");
      }
    }
    CoherenceAnalyzer analyzer(graph);
    std::vector<EntityId> contexts;
    for (SiteId s : sites) contexts.push_back(scheme.make_site_context(s));
    auto probes =
        absolutize(probes_from_dir(graph, scheme.site_tree(sites[0])));
    DegreeReport degree = analyzer.pairwise_degree(contexts, probes);
    FractionCounter global =
        analyzer.global_fraction(contexts, probes, CoherenceMode::kStrict);
    RepairAdvisor advisor(graph);
    RepairOptions options;
    options.allow_dot_names = false;
    RepairReport repair =
        advisor.suggest(contexts[0], contexts[1], probes, options);
    double repairable =
        repair.incoherent == 0
            ? 1.0
            : static_cast<double>(repair.repairable) /
                  static_cast<double>(repair.incoherent);
    t.add_row({std::string(scheme.scheme_name()) + " (full links)",
               bench::frac(degree.strict.fraction()),
               bench::frac(degree.weak.fraction()),
               bench::frac(global.fraction()), bench::frac(repairable)});
  }

  t.print(std::cout);
  std::cout << "(probes are enumerated from site0's view in each scheme; "
               "'repairable' is the\n fraction of incoherent probes a "
               "single discovered mapping rule set fixes)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_SchemeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    NamingGraph graph;
    FileSystem fs(graph);
    NewcastleScheme scheme(fs);
    TreeSpec spec;
    for (int i = 0; i < 4; ++i) {
      SiteId s = scheme.add_site("m" + std::to_string(i));
      spec.site_tag = "s" + std::to_string(i);
      populate_tree(fs, scheme.site_tree(s), spec, 7);
    }
    scheme.finalize();
    benchmark::DoNotOptimize(scheme.super_root());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchemeConstruction);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
