// Experiment X5 (extension): pipelined resolution and request coalescing.
//
// The paper's model resolves one name at a time, and so did this repo's
// resolver until the async engine (docs/ASYNC.md): resolve() monopolised
// the simulator for a full referral chain before the next lookup could
// even send. Real clients — a process manager starting N programs, a
// directory listing stat-ing every entry — issue *bursts*. This experiment
// measures what the event-driven engine buys them:
//
//   * pipelining: N concurrent deep-chain resolutions overlap every hop on
//     the wire, so the batch completes in ~one chain time instead of N;
//   * coalescing: N identical in-flight lookups share a single wire
//     exchange, so the burst costs one chain of messages, not N.
#include "bench_common.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "workload/parallel.hpp"

namespace namecoh {
namespace {

constexpr int kFiles = 64;

// A four-machine referral chain: the client's machine m1 holds only its
// root; "a" lives on m2, "a/b" on m3, "a/b/c" (and the files) on m4. A
// cold lookup of "a/b/c/fK" therefore walks m1 → m2 → m3 → m4: one
// same-machine round trip (10 ticks) plus three cross-machine round trips
// (100 ticks each) = 310 ticks end to end.
struct X5World {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  AuthorityMap homes;
  NameService service{graph, net, transport, homes};
  MachineId m1, m2, m3, m4;
  EntityId root, tree_a, tree_b, tree_c;
  std::vector<CompoundName> names;

  X5World() {
    NetworkId lan = net.add_network("lan");
    m1 = net.add_machine(lan, "m1");
    m2 = net.add_machine(lan, "m2");
    m3 = net.add_machine(lan, "m3");
    m4 = net.add_machine(lan, "m4");
    root = fs.make_root("m1-root");
    tree_a = fs.make_root("a");
    tree_b = fs.make_root("b");
    tree_c = fs.make_root("c");
    for (int i = 0; i < kFiles; ++i) {
      std::string leaf = "f" + std::to_string(i);
      NAMECOH_CHECK(fs.create_file(tree_c, Name(leaf), "v").is_ok(), "file");
      names.push_back(CompoundName::relative("a/b/c/" + leaf));
    }
    NAMECOH_CHECK(fs.attach(root, Name("a"), tree_a).is_ok(), "attach a");
    NAMECOH_CHECK(fs.attach(tree_a, Name("b"), tree_b).is_ok(), "attach b");
    NAMECOH_CHECK(fs.attach(tree_b, Name("c"), tree_c).is_ok(), "attach c");
    homes.set_home_subtree(graph, tree_c, m4);
    homes.set_home_subtree(graph, tree_b, m3);
    homes.set_home_subtree(graph, tree_a, m2);
    homes.set_home_subtree(graph, root, m1);
    service.add_server(m1);
    service.add_server(m2);
    service.add_server(m3);
    service.add_server(m4);
  }
};

void run_experiment() {
  bench::print_header(
      "X5 (extension): async pipelining & request coalescing",
      "N concurrent deep-chain lookups complete in ~one chain time, not N;\n"
      "N identical in-flight lookups cost one wire exchange, not N.");

  // Part 1: serial vs pipelined issue of 64 distinct four-hop lookups.
  {
    X5World w;
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "pipe");

    SimTime t0 = w.sim.now();
    NAMECOH_CHECK(client.resolve(w.root, w.names[0]).is_ok(), "probe");
    const SimDuration single = w.sim.now() - t0;

    SimTime serial_start = w.sim.now();
    for (const CompoundName& name : w.names) {
      NAMECOH_CHECK(client.resolve(w.root, name).is_ok(), "serial resolve");
    }
    const SimDuration serial = w.sim.now() - serial_start;

    std::vector<ResolveHandle> handles;
    SimTime pipe_start = w.sim.now();
    for (const CompoundName& name : w.names) {
      handles.push_back(client.resolve_async(w.root, name));
    }
    w.sim.run();
    const SimDuration pipelined = w.sim.now() - pipe_start;
    for (const ResolveHandle& handle : handles) {
      NAMECOH_CHECK(handle.done() && handle.result().is_ok(),
                    "pipelined resolve failed");
    }

    Table t({"schedule", "lookups", "sim ticks", "vs one chain"});
    t.add_row({"one chain (baseline)", "1", std::to_string(single), "1.0x"});
    t.add_row({"serial blocking", std::to_string(kFiles),
               std::to_string(serial),
               bench::frac(double(serial) / double(single), 1) + "x"});
    t.add_row({"pipelined async", std::to_string(kFiles),
               std::to_string(pipelined),
               bench::frac(double(pipelined) / double(single), 1) + "x"});
    t.print(std::cout);
    NAMECOH_CHECK(pipelined < 2 * single,
                  "pipelined batch took >= 2x one chain time");
    NAMECOH_CHECK(serial >= SimDuration(kFiles) * single,
                  "serial baseline unexpectedly overlapped");
    std::cout << "(every hop of all " << kFiles
              << " chains overlaps on the wire: the batch costs one chain "
                 "time,\nwhere the blocking client paid "
              << kFiles << " chain times)\n"
              << std::endl;
  }

  // Part 2: a burst of identical lookups coalesces onto one exchange.
  {
    X5World w;
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "burst");
    std::vector<ResolveHandle> handles;
    for (int i = 0; i < kFiles; ++i) {
      handles.push_back(client.resolve_async(w.root, w.names[0]));
    }
    w.sim.run();
    for (const ResolveHandle& handle : handles) {
      NAMECOH_CHECK(handle.done() && handle.result().is_ok(),
                    "coalesced resolve failed");
    }
    auto stats = client.snapshot();
    auto server = w.service.snapshot();
    Table t({"metric", "value"});
    t.add_row({"identical lookups issued", std::to_string(kFiles)});
    t.add_row({"coalesced onto the first", std::to_string(stats["coalesced"])});
    t.add_row({"client messages sent", std::to_string(stats["messages_sent"])});
    t.add_row({"server requests handled", std::to_string(server["requests"])});
    t.print(std::cout);
    NAMECOH_CHECK(stats["coalesced"] == kFiles - 1,
                  "burst did not coalesce onto one exchange");
    NAMECOH_CHECK(server["requests"] == 4, "expected one request per hop");
    std::cout << "(63 waiters attached to the first lookup's exchange: the "
                 "whole burst\ncost the 4 messages of a single chain)\n"
              << std::endl;
  }

  // Part 3: the closed-loop workload — fixed work, rising concurrency.
  {
    Table t({"activities", "resolutions", "sim ticks", "lookups/kilotick"});
    for (std::size_t activities : {std::size_t(1), std::size_t(4),
                                   std::size_t(16), std::size_t(64)}) {
      X5World w;
      ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                            w.m1, "loop");
      std::vector<ParallelQuery> queries;
      for (const CompoundName& name : w.names) {
        queries.push_back({w.root, name});
      }
      ParallelSpec spec;
      spec.activities = activities;
      spec.total_resolutions = 256;
      spec.seed = 7;
      ParallelOutcome out = run_parallel(w.sim, client, queries, spec);
      NAMECOH_CHECK(out.ok == out.completed, "closed-loop lookups failed");
      t.add_row({std::to_string(activities), std::to_string(out.completed),
                 std::to_string(out.elapsed()),
                 bench::frac(1000.0 * double(out.completed) /
                                 double(out.elapsed()),
                             1)});
    }
    t.print(std::cout);
    std::cout << "(same 256 lookups; throughput scales with the "
                 "multiprogramming level\nbecause chains interleave instead "
                 "of queueing behind one another)\n"
              << std::endl;
  }
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_PipelinedBatch(benchmark::State& state) {
  // Host cost of driving 64 overlapping four-hop chains to completion.
  X5World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench");
  for (auto _ : state) {
    std::vector<ResolveHandle> handles;
    handles.reserve(w.names.size());
    for (const CompoundName& name : w.names) {
      handles.push_back(client.resolve_async(w.root, name));
    }
    w.sim.run();
    benchmark::DoNotOptimize(handles.back().result());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.names.size()));
}
BENCHMARK(BM_PipelinedBatch);

void BM_CoalescedBurst(benchmark::State& state) {
  // Host cost of a 64-wide identical burst: one exchange + 63 attaches.
  X5World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench");
  for (auto _ : state) {
    std::vector<ResolveHandle> handles;
    handles.reserve(kFiles);
    for (int i = 0; i < kFiles; ++i) {
      handles.push_back(client.resolve_async(w.root, w.names[0]));
    }
    w.sim.run();
    benchmark::DoNotOptimize(handles.back().result());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFiles));
}
BENCHMARK(BM_CoalescedBurst);

void BM_ClosedLoop64(benchmark::State& state) {
  // One closed-loop pass: 256 lookups at multiprogramming level 64.
  X5World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench");
  std::vector<ParallelQuery> queries;
  for (const CompoundName& name : w.names) queries.push_back({w.root, name});
  ParallelSpec spec;
  spec.activities = 64;
  spec.total_resolutions = 256;
  spec.seed = 7;
  for (auto _ : state) {
    ParallelOutcome out = run_parallel(w.sim, client, queries, spec);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * spec.total_resolutions));
}
BENCHMARK(BM_ClosedLoop64);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
