// Experiment E1 (§6 Example 1): partially qualified identifiers under
// renumbering / reconfiguration.
//
// Claims reproduced:
//   * pids qualified only inside a renamed scope stay valid, so "the
//     subsystem maintains its internal connections and does not have to be
//     shut down";
//   * fully qualified pids go stale in proportion to the renumbering
//     fraction; with address reuse they can silently denote the WRONG
//     process (misdelivery);
//   * the R(sender) remap keeps exchanged pids valid across the boundary
//     regardless of prior renumbering, because the remap always works from
//     current locations.
#include "bench_common.hpp"
#include "net/forwarding.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace namecoh {
namespace {

struct PidWorld {
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  std::vector<NetworkId> networks;
  std::vector<MachineId> machines;
  std::vector<EndpointId> processes;

  // A stored reference: `holder` keeps a pid for `target`.
  struct StoredRef {
    EndpointId holder;
    EndpointId target;
    Pid partially_qualified;  // minimal at store time
    Pid fully_qualified;
    enum class Scope { kIntraMachine, kIntraNetwork, kInterNetwork } scope;
  };
  std::vector<StoredRef> refs;

  PidWorld(std::size_t n_networks, std::size_t machines_per_network,
           std::size_t procs_per_machine, std::size_t refs_per_proc,
           std::uint64_t seed, bool reuse = false) {
    net.set_address_reuse(reuse);
    Rng rng(seed);
    for (std::size_t n = 0; n < n_networks; ++n) {
      networks.push_back(net.add_network("n" + std::to_string(n)));
      for (std::size_t m = 0; m < machines_per_network; ++m) {
        machines.push_back(net.add_machine(
            networks.back(), "m" + std::to_string(n) + "." + std::to_string(m)));
        for (std::size_t p = 0; p < procs_per_machine; ++p) {
          processes.push_back(
              net.add_endpoint(machines.back(), "p" + std::to_string(p)));
        }
      }
    }
    // Every process stores refs to random targets, both as a minimal
    // (partially qualified) pid and as a fully qualified pid.
    for (EndpointId holder : processes) {
      Location holder_loc = net.location_of(holder).value();
      for (std::size_t k = 0; k < refs_per_proc; ++k) {
        EndpointId target = rng.pick(processes);
        Location target_loc = net.location_of(target).value();
        StoredRef ref;
        ref.holder = holder;
        ref.target = target;
        ref.partially_qualified = relativize(target_loc, holder_loc);
        ref.fully_qualified = Pid::fully_qualified(target_loc);
        ref.scope = target_loc.same_machine(holder_loc)
                        ? StoredRef::Scope::kIntraMachine
                    : target_loc.same_network(holder_loc)
                        ? StoredRef::Scope::kIntraNetwork
                        : StoredRef::Scope::kInterNetwork;
        refs.push_back(ref);
      }
    }
  }

  struct Survival {
    FractionCounter pq_machine, pq_network, pq_internet;
    FractionCounter fq_all;
    std::uint64_t fq_misdelivered = 0;
  };

  Survival measure() {
    Survival out;
    for (const StoredRef& ref : refs) {
      auto pq = transport.resolve_pid(ref.holder, ref.partially_qualified);
      bool pq_ok = pq.is_ok() && pq.value() == ref.target;
      switch (ref.scope) {
        case StoredRef::Scope::kIntraMachine:
          out.pq_machine.add(pq_ok);
          break;
        case StoredRef::Scope::kIntraNetwork:
          out.pq_network.add(pq_ok);
          break;
        case StoredRef::Scope::kInterNetwork:
          out.pq_internet.add(pq_ok);
          break;
      }
      auto fq = transport.resolve_pid(ref.holder, ref.fully_qualified);
      bool fq_ok = fq.is_ok() && fq.value() == ref.target;
      out.fq_all.add(fq_ok);
      if (fq.is_ok() && fq.value() != ref.target) ++out.fq_misdelivered;
    }
    return out;
  }
};

void run_experiment() {
  bench::print_header(
      "E1: partially qualified pids under renumbering (§6 Example 1)",
      "Partial qualification confines damage to the renamed scope: pids "
      "qualified only\ninside it survive; fully qualified pids go stale "
      "(or, with address reuse, lie).");

  // Sweep the fraction of machines renumbered.
  Table t({"machines renumbered", "PQ intra-machine", "PQ intra-network",
           "PQ inter-network", "FQ (all scopes)"});
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    PidWorld w(3, 4, 4, 8, /*seed=*/17);
    Rng rng(99);
    std::size_t count = static_cast<std::size_t>(
        f * static_cast<double>(w.machines.size()) + 0.5);
    std::vector<MachineId> order = w.machines;
    rng.shuffle(order);
    for (std::size_t i = 0; i < count; ++i) {
      NAMECOH_CHECK(w.net.renumber_machine(order[i]).is_ok(), "");
    }
    auto s = w.measure();
    t.add_row({bench::frac(f), bench::frac(s.pq_machine.fraction()),
               bench::frac(s.pq_network.fraction()),
               bench::frac(s.pq_internet.fraction()),
               bench::frac(s.fq_all.fraction())});
  }
  t.print(std::cout);
  std::cout << "(PQ intra-machine pids survive ANY machine renumbering; "
               "FQ pids decay with it)\n\n";

  // Network renumbering: the scope-confinement claim at the outer level.
  Table t2({"networks renumbered", "PQ intra-machine", "PQ intra-network",
            "PQ inter-network", "FQ (all scopes)"});
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    PidWorld w(3, 4, 4, 8, 17);
    for (std::size_t i = 0; i < k; ++i) {
      NAMECOH_CHECK(w.net.renumber_network(w.networks[i]).is_ok(), "");
    }
    auto s = w.measure();
    t2.add_row({std::to_string(k) + "/3",
                bench::frac(s.pq_machine.fraction()),
                bench::frac(s.pq_network.fraction()),
                bench::frac(s.pq_internet.fraction()),
                bench::frac(s.fq_all.fraction())});
  }
  t2.print(std::cout);
  std::cout << "(everything qualified inside a renamed network keeps "
               "working; only cross-network\n references via (n,m,l) break)\n\n";

  // Address reuse: stale FQ pids silently denoting the wrong process.
  {
    PidWorld w(2, 3, 3, 8, 23, /*reuse=*/true);
    for (MachineId m : w.machines) {
      NAMECOH_CHECK(w.net.renumber_machine(m).is_ok(), "");
    }
    // New machines claim the vacated addresses.
    for (int i = 0; i < 6; ++i) {
      MachineId imposter =
          w.net.add_machine(w.networks[i % 2], "imposter" + std::to_string(i));
      for (int p = 0; p < 3; ++p) {
        w.net.add_endpoint(imposter, "ip" + std::to_string(p));
      }
    }
    auto s = w.measure();
    Table t3({"with address reuse", "value"});
    t3.add_row({"FQ pids still correct", bench::frac(s.fq_all.fraction())});
    t3.add_row({"FQ pids silently WRONG process",
                std::to_string(s.fq_misdelivered)});
    t3.print(std::cout);
  }

  // R(sender) remap under churn: exchanged pids stay valid because the
  // remap is computed from current locations at every boundary.
  {
    PidWorld w(2, 3, 3, 0, 29);
    FractionCounter exchanged_ok;
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
      EndpointId sender = rng.pick(w.processes);
      EndpointId receiver = rng.pick(w.processes);
      EndpointId subject = rng.pick(w.processes);
      if (!w.net.has_endpoint(sender) || !w.net.has_endpoint(receiver)) {
        continue;
      }
      // Occasionally renumber something mid-workload.
      if (round % 20 == 10) {
        NAMECOH_CHECK(
            w.net.renumber_machine(rng.pick(w.machines)).is_ok(), "");
      }
      Location sender_loc = w.net.location_of(sender).value();
      Location subject_loc = w.net.location_of(subject).value();
      Pid embedded = relativize(subject_loc, sender_loc);
      Message msg;
      msg.type = 1;
      msg.payload.add_pid(embedded);
      EndpointId got_target = EndpointId::invalid();
      w.transport.set_handler(
          receiver, [&](EndpointId self, const Message& m) {
            auto resolved = w.transport.resolve_pid(self, m.payload.pid_at(0));
            if (resolved.is_ok()) got_target = resolved.value();
          });
      Location receiver_loc = w.net.location_of(receiver).value();
      Status sent = w.transport.send(
          sender, relativize(receiver_loc, sender_loc), std::move(msg));
      if (!sent.is_ok()) continue;
      w.sim.run();
      exchanged_ok.add(got_target == subject);
      w.transport.clear_handler(receiver);
    }
    Table t4({"exchanged pids with R(sender) remap under churn", "value"});
    t4.add_row({"delivered pid denotes intended process",
                bench::frac(exchanged_ok.fraction())});
    t4.add_row({"messages measured", std::to_string(exchanged_ok.trials())});
    t4.print(std::cout);
    std::cout << "\n";
  }

  // Ablation (DESIGN.md #3): partial qualification vs fully qualified pids
  // with forwarding tables, on identical renumbering workloads. Both keep
  // references alive; the costs differ in kind — forwarding accumulates
  // state and lookup hops with reconfiguration *history*, partial
  // qualification is stateless.
  {
    Table t5({"renumber rounds", "PQ intra-mach survival", "PQ state",
              "FQ+fwd survival", "fwd entries", "max fwd chain"});
    for (int rounds : {1, 4, 16}) {
      PidWorld w(2, 3, 3, 6, 41);
      ForwardingTable fwd;
      // Record original fully qualified locations of all targets.
      struct FqRef {
        EndpointId holder, target;
        Location stored;
      };
      std::vector<FqRef> fq_refs;
      for (const auto& ref : w.refs) {
        fq_refs.push_back(FqRef{
            ref.holder, ref.target,
            Location{ref.fully_qualified.naddr, ref.fully_qualified.maddr,
                     ref.fully_qualified.laddr}});
      }
      Rng rng(rounds);
      for (int r = 0; r < rounds; ++r) {
        MachineId victim = rng.pick(w.machines);
        NAMECOH_CHECK(
            renumber_machine_with_forwarding(w.net, fwd, victim).is_ok(),
            "");
      }
      auto survival = w.measure();
      FractionCounter fq_fwd;
      std::size_t max_chain = 0;
      for (const auto& ref : fq_refs) {
        auto via_fwd = fwd.resolve(w.net, ref.stored);
        fq_fwd.add(via_fwd.is_ok() && via_fwd.value() == ref.target);
        max_chain = std::max(max_chain,
                             fwd.chain_length(w.net, ref.stored));
      }
      t5.add_row({std::to_string(rounds),
                  bench::frac(survival.pq_machine.fraction()), "0 bytes",
                  bench::frac(fq_fwd.fraction()),
                  std::to_string(fwd.entries()),
                  std::to_string(max_chain)});
    }
    t5.print(std::cout);
    std::cout << "(forwarding matches PQ survival but pays with state and "
                 "hop chains that grow\n with reconfiguration history)\n"
              << std::endl;
  }
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_QualifyRelativize(benchmark::State& state) {
  Location targets[] = {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1}};
  Location ref{1, 1, 3};
  std::size_t i = 0;
  for (auto _ : state) {
    Pid pid = relativize(targets[i++ % 4], ref);
    benchmark::DoNotOptimize(qualify(pid, ref));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QualifyRelativize);

void BM_Rebase(benchmark::State& state) {
  Location sender{1, 2, 3}, receiver{4, 5, 6};
  Pid pids[] = {{0, 0, 9}, {0, 7, 9}, {8, 7, 9}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rebase(pids[i++ % 3], sender, receiver));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Rebase);

void BM_ResolvePid(benchmark::State& state) {
  PidWorld w(3, 4, 4, 4, 31);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ref = w.refs[i++ % w.refs.size()];
    benchmark::DoNotOptimize(
        w.transport.resolve_pid(ref.holder, ref.partially_qualified));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolvePid);

void BM_RenumberMachine(benchmark::State& state) {
  // Cost of a renumber grows with endpoints on the machine (index update).
  PidWorld w(1, 2, static_cast<std::size_t>(state.range(0)), 0, 37);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.net.renumber_machine(w.machines[i++ % w.machines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RenumberMachine)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
