// Experiment U1 (§2 mechanics): cost of the core naming-model operations —
// compound-name resolution across depth × fanout, binding, lookup, graph
// queries. Prints a resolution-cost table (steps scale linearly with
// depth), then microbenchmarks.
#include "bench_common.hpp"
#include "core/graph_ops.hpp"
#include "core/resolve.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace namecoh {
namespace {

struct SyntheticTree {
  NamingGraph graph;
  EntityId root;
  std::vector<CompoundName> leaves;  // one full-depth name per leaf

  SyntheticTree(std::size_t depth, std::size_t fanout) {
    root = graph.add_context_object("root");
    build(root, {}, depth, fanout);
  }

  void build(EntityId dir, std::vector<Name> prefix, std::size_t depth,
             std::size_t fanout) {
    if (depth == 0) {
      EntityId file = graph.add_data_object("leaf");
      Name name("leaf");
      NAMECOH_CHECK(graph.bind(dir, name, file).is_ok(), "");
      prefix.push_back(name);
      leaves.emplace_back(prefix);
      return;
    }
    for (std::size_t i = 0; i < fanout; ++i) {
      Name name("d" + std::to_string(i));
      EntityId child = graph.add_context_object(name.text());
      NAMECOH_CHECK(graph.bind(dir, name, child).is_ok(), "");
      auto next = prefix;
      next.push_back(name);
      build(child, std::move(next), depth - 1, fanout);
    }
  }
};

void run_experiment() {
  bench::print_header(
      "U1: core resolution mechanics (§2)",
      "Resolution cost is linear in compound-name length and independent "
      "of tree width;\nsteps == components, per the recursive definition "
      "c(n1…nk) = σ(c(n1))(n2…nk).");

  Table t({"depth", "fanout", "contexts", "avg steps per resolution",
           "all leaves resolve"});
  for (auto [depth, fanout] : {std::pair<std::size_t, std::size_t>{2, 8},
                               {4, 4},
                               {8, 2},
                               {16, 1},
                               {64, 1}}) {
    SyntheticTree tree(depth, fanout);
    Accumulator steps;
    bool all_ok = true;
    for (const auto& name : tree.leaves) {
      Resolution res = resolve_from(tree.graph, tree.root, name);
      all_ok = all_ok && res.ok();
      steps.add(static_cast<double>(res.steps));
    }
    t.add_row({std::to_string(depth), std::to_string(fanout),
               std::to_string(
                   tree.graph.entities_of_kind(EntityKind::kContextObject)
                       .size()),
               bench::frac(steps.mean()), all_ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ResolveByDepth(benchmark::State& state) {
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(tree.graph, tree.root, name));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResolveByDepth)->RangeMultiplier(2)->Range(1, 128)->Complexity();

void BM_ResolveTracingDisabled(benchmark::State& state) {
  // Acceptance check for the observability subsystem: a disabled tracer
  // attached to ResolveOptions must cost one branch per call — this curve
  // should sit within noise of BM_ResolveByDepth at the same depth.
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  Tracer tracer;  // default: disabled, ring never allocated
  ResolveOptions options;
  options.tracer = &tracer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve_from(tree.graph, tree.root, name, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResolveTracingDisabled)
    ->RangeMultiplier(2)
    ->Range(1, 128)
    ->Complexity();

void BM_ResolveTracingEnabled(benchmark::State& state) {
  // Cost with spans on: open + per-step event + close, ring bounded.
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  Tracer tracer;
  tracer.set_enabled(true);
  ResolveOptions options;
  options.tracer = &tracer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve_from(tree.graph, tree.root, name, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveTracingEnabled)->Arg(8)->Arg(64);

void BM_ResolveByFanout(benchmark::State& state) {
  // Width should not matter (map lookup per step).
  SyntheticTree tree(2, static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(
        tree.graph, tree.root, tree.leaves[i++ % tree.leaves.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveByFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_BindUnbind(benchmark::State& state) {
  NamingGraph graph;
  EntityId dir = graph.add_context_object("d");
  EntityId target = graph.add_data_object("t");
  Name name("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.bind(dir, name, target));
    benchmark::DoNotOptimize(graph.unbind(dir, name));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_BindUnbind);

void BM_SingleLookup(benchmark::State& state) {
  NamingGraph graph;
  EntityId dir = graph.add_context_object("d");
  for (int i = 0; i < 256; ++i) {
    NAMECOH_CHECK(graph.bind(dir, Name("n" + std::to_string(i)),
                             graph.add_data_object("t")).is_ok(), "");
  }
  Name probe("n128");
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.lookup(dir, probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleLookup);

void BM_EnumerateNames(benchmark::State& state) {
  SyntheticTree tree(4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_names(tree.graph, tree.root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnumerateNames);

void BM_ShortestName(benchmark::State& state) {
  SyntheticTree tree(6, 2);
  Resolution target =
      resolve_from(tree.graph, tree.root, tree.leaves.back());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shortest_name(tree.graph, tree.root, target.entity));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShortestName);

void BM_GraphClone(benchmark::State& state) {
  SyntheticTree tree(4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.graph.clone());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphClone);

void BM_ParsePath(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompoundName::parse_path("/usr/share/doc/project/README.md"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParsePath);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
