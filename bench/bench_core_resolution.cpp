// Experiment U1 (§2 mechanics): cost of the core naming-model operations —
// compound-name resolution across depth × fanout, binding, lookup, graph
// queries. Prints a resolution-cost table (steps scale linearly with
// depth), then microbenchmarks.
#include "bench_common.hpp"
#include "core/graph_ops.hpp"
#include "core/resolve.hpp"
#include "exec/batch.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/worker_pool.hpp"
#include "workload/parallel.hpp"

namespace namecoh {
namespace {

struct SyntheticTree {
  NamingGraph graph;
  EntityId root;
  std::vector<CompoundName> leaves;  // one full-depth name per leaf

  SyntheticTree(std::size_t depth, std::size_t fanout) {
    root = graph.add_context_object("root");
    build(root, {}, depth, fanout);
  }

  void build(EntityId dir, std::vector<Name> prefix, std::size_t depth,
             std::size_t fanout) {
    if (depth == 0) {
      EntityId file = graph.add_data_object("leaf");
      Name name("leaf");
      NAMECOH_CHECK(graph.bind(dir, name, file).is_ok(), "");
      prefix.push_back(name);
      leaves.emplace_back(prefix);
      return;
    }
    for (std::size_t i = 0; i < fanout; ++i) {
      Name name("d" + std::to_string(i));
      EntityId child = graph.add_context_object(name.text());
      NAMECOH_CHECK(graph.bind(dir, name, child).is_ok(), "");
      auto next = prefix;
      next.push_back(name);
      build(child, std::move(next), depth - 1, fanout);
    }
  }
};

/// Worker count for the par-policy measurements: the --threads flag, or
/// the hardware width when unset.
std::size_t par_threads() {
  return bench::thread_flag() != 0 ? bench::thread_flag()
                                   : WorkerPool::hardware_workers();
}

/// Queries for the batch experiments: every leaf of a depth-8 binary tree,
/// resolved from the root (255 contexts, 256 distinct 8-hop paths).
std::vector<ParallelQuery> batch_queries(const SyntheticTree& tree) {
  std::vector<ParallelQuery> queries;
  queries.reserve(tree.leaves.size());
  for (const auto& name : tree.leaves) {
    queries.push_back(ParallelQuery{tree.root, name});
  }
  return queries;
}

void run_exec_seam_experiment() {
  bench::print_header(
      "U1b: execution-policy seam (seq vs par batch resolution)",
      "Pure local resolutions batched through exec::resolve_batch: seq runs "
      "on the\nsimulator thread, par fans contiguous slices across a real "
      "worker pool and\nmerges per-worker metric shards at the barrier "
      "(docs/PARALLELISM.md).");

  SyntheticTree tree(8, 2);
  const std::vector<ParallelQuery> queries = batch_queries(tree);
  const std::size_t max_threads = par_threads();

  LocalBatchSpec spec;
  spec.batch_size = 4096;
  spec.batches = 16;
  spec.seed = 42;

  spec.threads = 0;  // seq baseline
  const LocalBatchOutcome seq = run_local_batches(tree.graph, queries, spec);

  Table t({"policy", "workers", "resolutions", "ok", "wall s",
           "resolutions/s", "speedup vs seq"});
  auto row = [&](const char* policy, const LocalBatchOutcome& out) {
    t.add_row({policy, std::to_string(out.workers),
               std::to_string(out.resolutions), std::to_string(out.ok),
               bench::frac(out.wall_seconds),
               std::to_string(static_cast<std::uint64_t>(out.throughput())),
               bench::frac(out.throughput() / seq.throughput(), 2)});
  };
  row("seq", seq);
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    spec.threads = threads;
    row("par", run_local_batches(tree.graph, queries, spec));
    if (threads == max_threads) break;
    if (threads * 2 > max_threads) {
      spec.threads = max_threads;
      row("par", run_local_batches(tree.graph, queries, spec));
      break;
    }
  }
  t.print(std::cout);
  std::cout << "\n(hardware workers: " << WorkerPool::hardware_workers()
            << "; par rows use --threads when given)\n"
            << std::endl;
}

void run_experiment() {
  bench::print_header(
      "U1: core resolution mechanics (§2)",
      "Resolution cost is linear in compound-name length and independent "
      "of tree width;\nsteps == components, per the recursive definition "
      "c(n1…nk) = σ(c(n1))(n2…nk).");

  Table t({"depth", "fanout", "contexts", "avg steps per resolution",
           "all leaves resolve"});
  for (auto [depth, fanout] : {std::pair<std::size_t, std::size_t>{2, 8},
                               {4, 4},
                               {8, 2},
                               {16, 1},
                               {64, 1}}) {
    SyntheticTree tree(depth, fanout);
    Accumulator steps;
    bool all_ok = true;
    for (const auto& name : tree.leaves) {
      Resolution res = resolve_from(tree.graph, tree.root, name);
      all_ok = all_ok && res.ok();
      steps.add(static_cast<double>(res.steps));
    }
    t.add_row({std::to_string(depth), std::to_string(fanout),
               std::to_string(
                   tree.graph.entities_of_kind(EntityKind::kContextObject)
                       .size()),
               bench::frac(steps.mean()), all_ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << std::endl;

  run_exec_seam_experiment();
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ResolveByDepth(benchmark::State& state) {
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(tree.graph, tree.root, name));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResolveByDepth)->RangeMultiplier(2)->Range(1, 128)->Complexity();

void BM_ResolveTracingDisabled(benchmark::State& state) {
  // Acceptance check for the observability subsystem: a disabled tracer
  // attached to ResolveOptions must cost one branch per call — this curve
  // should sit within noise of BM_ResolveByDepth at the same depth.
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  Tracer tracer;  // default: disabled, ring never allocated
  ResolveOptions options;
  options.tracer = &tracer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve_from(tree.graph, tree.root, name, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResolveTracingDisabled)
    ->RangeMultiplier(2)
    ->Range(1, 128)
    ->Complexity();

void BM_ResolveTracingEnabled(benchmark::State& state) {
  // Cost with spans on: open + per-step event + close, ring bounded.
  SyntheticTree tree(static_cast<std::size_t>(state.range(0)), 1);
  const CompoundName& name = tree.leaves.front();
  Tracer tracer;
  tracer.set_enabled(true);
  ResolveOptions options;
  options.tracer = &tracer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve_from(tree.graph, tree.root, name, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveTracingEnabled)->Arg(8)->Arg(64);

void BM_ResolveByFanout(benchmark::State& state) {
  // Width should not matter (map lookup per step).
  SyntheticTree tree(2, static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(
        tree.graph, tree.root, tree.leaves[i++ % tree.leaves.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveByFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_BindUnbind(benchmark::State& state) {
  NamingGraph graph;
  EntityId dir = graph.add_context_object("d");
  EntityId target = graph.add_data_object("t");
  Name name("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.bind(dir, name, target));
    benchmark::DoNotOptimize(graph.unbind(dir, name));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_BindUnbind);

void BM_SingleLookup(benchmark::State& state) {
  NamingGraph graph;
  EntityId dir = graph.add_context_object("d");
  for (int i = 0; i < 256; ++i) {
    NAMECOH_CHECK(graph.bind(dir, Name("n" + std::to_string(i)),
                             graph.add_data_object("t")).is_ok(), "");
  }
  Name probe("n128");
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.lookup(dir, probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleLookup);

void BM_EnumerateNames(benchmark::State& state) {
  SyntheticTree tree(4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_names(tree.graph, tree.root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnumerateNames);

void BM_ShortestName(benchmark::State& state) {
  SyntheticTree tree(6, 2);
  Resolution target =
      resolve_from(tree.graph, tree.root, tree.leaves.back());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shortest_name(tree.graph, tree.root, target.entity));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShortestName);

void BM_GraphClone(benchmark::State& state) {
  SyntheticTree tree(4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.graph.clone());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphClone);

// --- Execution-policy seam: batch resolution throughput ----------------------
//
// BM_BatchResolveSeq and BM_BatchResolvePar run the same 4096-resolution
// batch through exec::resolve_batch; par uses a pool of --threads workers
// (hardware width when the flag is absent), reported in the "threads"
// counter. items_per_second is resolve throughput — the seq:par ratio is
// the seam's speedup on this machine (EXPERIMENTS.md X7).

struct BatchFixture {
  SyntheticTree tree;
  std::vector<CompoundName> names;  // owns the query name storage
  std::vector<exec::BatchQuery> batch;

  explicit BatchFixture(std::size_t batch_size) : tree(8, 2) {
    Rng rng(42);
    names.reserve(batch_size);
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      names.push_back(
          tree.leaves[rng.next_below(tree.leaves.size())]);
      batch.push_back(exec::BatchQuery{tree.root, names.back()});
    }
  }
};

void BM_BatchResolveSeq(benchmark::State& state) {
  BatchFixture fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::resolve_batch(
        exec::SeqPolicy{}, fixture.tree.graph,
        {fixture.batch.data(), fixture.batch.size()}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_BatchResolveSeq)->Arg(4096)->UseRealTime();

void BM_BatchResolvePar(benchmark::State& state) {
  BatchFixture fixture(static_cast<std::size_t>(state.range(0)));
  WorkerPool pool(par_threads());
  exec::ParPolicy policy{&pool, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::resolve_batch(
        policy, fixture.tree.graph,
        {fixture.batch.data(), fixture.batch.size()}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_BatchResolvePar)->Arg(4096)->UseRealTime();

void BM_ParsePath(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompoundName::parse_path("/usr/share/doc/project/README.md"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParsePath);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
