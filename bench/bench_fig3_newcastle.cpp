// Experiment F3 (Fig. 3 + §5.1, the Newcastle Connection).
//
// Claims reproduced, on the paper's own three-machine topology:
//   * processes on the same machine are fully coherent for '/…' names;
//   * across machines there is NO coherence for '/…' names (no common
//     reference, no global names) — failures split between silently-
//     different and unresolved;
//   * the '..'-above-root mapping rule ("/x" on m1 → "/../m1/x" on m2)
//     restores common reference for 100% of names;
//   * parent/child coherence: a child inherits its parent's context and
//     stays coherent until one of them rebinds its root.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "os/process_manager.hpp"
#include "schemes/newcastle.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct NewcastleWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  NewcastleScheme scheme{fs};
  SiteId m1, m2, m3;
  std::vector<CompoundName> probes_m1;

  NewcastleWorld() {
    m1 = scheme.add_site("m1");
    m2 = scheme.add_site("m2");
    m3 = scheme.add_site("m3");
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 3;
    spec.files_per_dir = 4;
    spec.common_fraction = 0.5;
    for (auto [site, tag] : {std::pair{m1, "s1"}, {m2, "s2"}, {m3, "s3"}}) {
      spec.site_tag = tag;
      populate_tree(fs, scheme.site_tree(site), spec, 1993);
    }
    scheme.finalize();
    probes_m1 = absolutize(probes_from_dir(graph, scheme.site_tree(m1)));
  }
};

void run_experiment() {
  bench::print_header(
      "F3: the Newcastle Connection, three machines (Fig. 3)",
      "Coherence for '/…' names exists only among processes on the same "
      "machine;\nthe '..'-above-root mapping rule restores common reference "
      "across machines.");

  NewcastleWorld w;
  CoherenceAnalyzer analyzer(w.graph);

  EntityId c1a = w.scheme.make_site_context(w.m1);
  EntityId c1b = w.scheme.make_site_context(w.m1);
  EntityId c2 = w.scheme.make_site_context(w.m2);
  EntityId c3 = w.scheme.make_site_context(w.m3);

  Table t({"process pair", "strict coherence", "different", "one-unresolved",
           "probes"});
  auto add = [&](const std::string& label, EntityId a, EntityId b) {
    DegreeReport r = analyzer.degree(a, b, w.probes_m1);
    t.add_row({label, bench::frac(r.strict.fraction()),
               std::to_string(r.verdicts.get("different")),
               std::to_string(r.verdicts.get("one-unresolved")),
               std::to_string(r.strict.trials())});
  };
  add("m1 <-> m1 (same machine)", c1a, c1b);
  add("m1 <-> m2 (cross machine)", c1a, c2);
  add("m1 <-> m3 (cross machine)", c1a, c3);
  add("m2 <-> m3 (cross machine)", c2, c3);
  t.print(std::cout);

  // Mapping rule: translate every m1 name for use on m2 and m3.
  FractionCounter mapped_ok_m2, mapped_ok_m3;
  Context on_m1 = FileSystem::make_process_context(w.scheme.site_root(w.m1),
                                                   w.scheme.site_root(w.m1));
  Context on_m2 = FileSystem::make_process_context(w.scheme.site_root(w.m2),
                                                   w.scheme.site_root(w.m2));
  Context on_m3 = FileSystem::make_process_context(w.scheme.site_root(w.m3),
                                                   w.scheme.site_root(w.m3));
  for (const auto& p : w.probes_m1) {
    Resolution direct = w.fs.resolve_path(on_m1, p.to_path());
    if (!direct.ok()) continue;
    auto to2 = w.scheme.map_path(w.m1, w.m2, p.to_path());
    auto to3 = w.scheme.map_path(w.m1, w.m3, p.to_path());
    mapped_ok_m2.add(to2.is_ok() &&
                     w.fs.resolve_path(on_m2, to2.value()).same_entity(direct));
    mapped_ok_m3.add(to3.is_ok() &&
                     w.fs.resolve_path(on_m3, to3.value()).same_entity(direct));
  }
  Table t2({"mapping", "restored common reference"});
  t2.add_row({"m1 name -> m2 via /../m1 prefix",
              bench::frac(mapped_ok_m2.fraction())});
  t2.add_row({"m1 name -> m3 via /../m1 prefix",
              bench::frac(mapped_ok_m3.fraction())});
  t2.print(std::cout);

  // Parent/child coherence (§5.1): inherit, then diverge.
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  ProcessManager pm(w.graph, w.fs, net, tp);
  NetworkId n = net.add_network("lan");
  MachineId machine1 = net.add_machine(n, "m1");
  ProcessId parent = pm.spawn(machine1, "parent", w.scheme.site_root(w.m1),
                              w.scheme.site_root(w.m1));
  ProcessId child = pm.fork_child(parent, "child");
  FractionCounter inherited, after_rebind;
  for (const auto& p : w.probes_m1) {
    inherited.add(pm.resolve_internal(parent, p.to_path())
                      .same_entity(pm.resolve_internal(child, p.to_path())));
  }
  NAMECOH_CHECK(pm.set_root(child, w.scheme.site_root(w.m2)).is_ok(), "");
  for (const auto& p : w.probes_m1) {
    after_rebind.add(
        pm.resolve_internal(parent, p.to_path())
            .same_entity(pm.resolve_internal(child, p.to_path())));
  }
  Table t3({"parent/child state", "strict coherence"});
  t3.add_row({"child inherits parent context",
              bench::frac(inherited.fraction())});
  t3.add_row({"child rebinds its root", bench::frac(after_rebind.fraction())});
  t3.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_NewcastleLocalResolve(benchmark::State& state) {
  NewcastleWorld w;
  Context ctx = FileSystem::make_process_context(w.scheme.site_root(w.m1),
                                                 w.scheme.site_root(w.m1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve(w.graph, ctx, w.probes_m1[i++ % w.probes_m1.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NewcastleLocalResolve);

void BM_NewcastleCrossMachineResolve(benchmark::State& state) {
  // Resolution through the super-root ('..' above root) costs two extra
  // steps; this quantifies the overhead vs the local path.
  NewcastleWorld w;
  Context ctx = FileSystem::make_process_context(w.scheme.site_root(w.m2),
                                                 w.scheme.site_root(w.m2));
  std::vector<CompoundName> mapped;
  for (const auto& p : w.probes_m1) {
    auto m = w.scheme.map_path(w.m1, w.m2, p.to_path());
    if (m.is_ok()) mapped.push_back(CompoundName::path(m.value()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve(w.graph, ctx, mapped[i++ % mapped.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NewcastleCrossMachineResolve);

void BM_CoherenceDegreeSweep(benchmark::State& state) {
  NewcastleWorld w;
  CoherenceAnalyzer analyzer(w.graph);
  EntityId a = w.scheme.make_site_context(w.m1);
  EntityId b = w.scheme.make_site_context(w.m2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.degree(a, b, w.probes_m1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(w.probes_m1.size()));
}
BENCHMARK(BM_CoherenceDegreeSweep);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
