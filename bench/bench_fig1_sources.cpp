// Experiment F1 (Fig. 1 + §4): the three sources of names and where
// coherence breaks under the default operating-system rule R(a).
//
// Claim reproduced: under R(activity) — the rule "commonly used in
// operating systems" — internally generated names are coherent only when
// contexts happen to agree; names *received from another activity* and
// names *read from an object* inherit the same limitation, i.e. coherence
// collapses to the global-name subset for all three sources. The
// per-source composite rule of §6 (R(a) / R(sender) / R(object)) fixes the
// second and third source while leaving the first to shared name spaces
// (§7).
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "os/process_manager.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct Fig1World {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  ProcessManager pm{graph, fs, net, transport};
  ProcessId p1, p2;  // p1 on m1 authors names; p2 on m2 consumes them
  EntityId r1, r2, shared;
  std::vector<CompoundName> probes;

  Fig1World() {
    NetworkId n = net.add_network("lan");
    MachineId m1 = net.add_machine(n, "m1");
    MachineId m2 = net.add_machine(n, "m2");
    r1 = fs.make_root("m1");
    r2 = fs.make_root("m2");
    shared = fs.make_root("shared");
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 4;
    spec.common_fraction = 0.6;
    spec.site_tag = "s1";
    populate_tree(fs, r1, spec, 31);
    spec.site_tag = "s2";
    populate_tree(fs, r2, spec, 31);
    TreeSpec shared_spec;
    shared_spec.common_fraction = 1.0;
    shared_spec.depth = 1;
    populate_tree(fs, shared, shared_spec, 9);
    NAMECOH_CHECK(fs.attach(r1, Name("services"), shared).is_ok(), "");
    NAMECOH_CHECK(fs.attach(r2, Name("services"), shared).is_ok(), "");
    p1 = pm.spawn(m1, "p1", r1, r1);
    p2 = pm.spawn(m2, "p2", r2, r2);
    probes = absolutize(probes_from_dir(graph, r1));
  }
};

void run_experiment() {
  bench::print_header(
      "F1: the three sources of names (Fig. 1)",
      "Under the default rule R(activity), coherence collapses to the "
      "shared-name-space\nsubset for every source; the §6 per-source rules "
      "repair the exchanged and embedded\nsources without global names.");

  Fig1World w;

  // Source 1: internally generated. Both processes generate the same path
  // text (e.g. a user typed it on both machines). Meaning agrees only on
  // the shared subset.
  FractionCounter internal_r_a;
  for (const auto& p : w.probes) {
    internal_r_a.add(w.pm.resolve_internal(w.p1, p.to_path())
                         .same_entity(w.pm.resolve_internal(w.p2, p.to_path())));
  }

  // Source 2: received from another activity. p1 sends every probe to p2.
  for (const auto& p : w.probes) {
    NAMECOH_CHECK(w.pm.send_name_to(w.p1, w.p2, p.to_path()).is_ok(), "");
  }
  w.pm.settle();
  FractionCounter msg_r_a, msg_r_sender;
  for (const ReceivedName& rn : w.pm.received_names()) {
    Resolution meant = w.pm.resolve_internal(w.p1, rn.path);
    if (!meant.ok()) continue;
    msg_r_a.add(meant.same_entity(w.pm.resolve_received(rn, ByReceiverRule{})));
    msg_r_sender.add(
        meant.same_entity(w.pm.resolve_received(rn, BySenderRule{})));
  }

  // Source 3: read from an object. Files on m1 embed the probes; p2 reads
  // them. R(a) resolves in p2's context; R(object) in the file's context.
  ClosureTable& table = w.pm.closures();
  EntityId obj_scope = w.graph.add_context_object("scope:m1");
  w.graph.context(obj_scope) = FileSystem::make_process_context(w.r1, w.r1);
  FractionCounter obj_r_a, obj_r_object;
  EntityId p2_act = w.pm.info(w.p2).activity;
  for (const auto& p : w.probes) {
    EntityId file = w.graph.add_data_object("carrier");
    w.graph.add_embedded_name(file, p);
    table.set_object_context(file, obj_scope);
    Resolution meant = resolve_from(w.graph, obj_scope, p);
    if (!meant.ok()) continue;
    Circumstance c = Circumstance::from_object(p2_act, file);
    obj_r_a.add(meant.same_entity(
        resolve_with_rule(w.graph, table, ByActivityRule{}, c, p)));
    obj_r_object.add(meant.same_entity(
        resolve_with_rule(w.graph, table, ByObjectRule{}, c, p)));
  }

  Table t({"name source (Fig. 1)", "rule", "coherent fraction"});
  t.add_row({"1. generated internally", "R(activity)",
             bench::frac(internal_r_a.fraction())});
  t.add_separator();
  t.add_row({"2. received from activity", "R(activity)=R(receiver)",
             bench::frac(msg_r_a.fraction())});
  t.add_row({"2. received from activity", "R(sender)   [§6 I]",
             bench::frac(msg_r_sender.fraction())});
  t.add_separator();
  t.add_row({"3. obtained from object", "R(activity)",
             bench::frac(obj_r_a.fraction())});
  t.add_row({"3. obtained from object", "R(object)    [§6 I]",
             bench::frac(obj_r_object.fraction())});
  t.print(std::cout);
  std::cout << "(sources 2 and 3 are repaired by source-dependent rules; "
               "source 1 needs shared\n name spaces — see bench_ex3_scopes)"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_InternalResolution(benchmark::State& state) {
  Fig1World w;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.pm.resolve_internal(w.p1, w.probes[i++ % w.probes.size()].to_path()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InternalResolution);

void BM_ProbeGeneration(benchmark::State& state) {
  Fig1World w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probes_from_dir(w.graph, w.r1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.probes.size()));
}
BENCHMARK(BM_ProbeGeneration);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
