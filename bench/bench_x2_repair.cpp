// Experiment X2 (extension): mechanical discovery of mapping rules.
//
// §7 relies on humans to bridge scope boundaries with prefix mappings
// ("/users → /org2/users … acceptable if the mapping rules are simple and
// intuitive"). The RepairAdvisor derives those rules automatically from
// probe evidence; this experiment runs it against the paper's own
// topologies and reports the discovered rules plus how much of the
// incoherence they repair.
#include "bench_common.hpp"
#include "coherence/repair.hpp"
#include "schemes/crosslink.hpp"
#include "schemes/newcastle.hpp"
#include "schemes/shared_graph.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

void report_rows(Table& t, const std::string& topology,
                 const RepairReport& report) {
  if (report.suggestions.empty()) {
    t.add_row({topology, "(none)", "-", "-",
               std::to_string(report.incoherent)});
    return;
  }
  for (std::size_t i = 0; i < report.suggestions.size() && i < 2; ++i) {
    const MappingSuggestion& s = report.suggestions[i];
    t.add_row({topology,
               s.from_prefix.to_path() + "  ->  " + s.to_prefix.to_path(),
               std::to_string(s.repaired), bench::frac(s.coverage()),
               std::to_string(report.incoherent)});
  }
}

void run_experiment() {
  bench::print_header(
      "X2 (extension): automatic discovery of §7 mapping rules",
      "On each §5 topology the advisor rediscovers the paper's own repair "
      "rule from\nprobe evidence alone.");

  Table t({"topology", "discovered rule", "repairs", "coverage",
           "incoherent probes"});

  {  // Newcastle: expect "/" -> "/../m1".
    NamingGraph graph;
    FileSystem fs(graph);
    NewcastleScheme scheme(fs);
    SiteId m1 = scheme.add_site("m1");
    SiteId m2 = scheme.add_site("m2");
    TreeSpec spec;
    spec.site_tag = "s1";
    populate_tree(fs, scheme.site_tree(m1), spec, 8);
    spec.site_tag = "s2";
    populate_tree(fs, scheme.site_tree(m2), spec, 8);
    scheme.finalize();
    RepairAdvisor advisor(graph);
    auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(m1)));
    report_rows(t, "Newcastle (Fig. 3)",
                advisor.suggest(scheme.make_site_context(m1),
                                scheme.make_site_context(m2), probes));
  }

  {  // Cross-linked federation: expect "/" -> "/org1".
    NamingGraph graph;
    FileSystem fs(graph);
    CrossLinkScheme scheme(fs);
    SiteId org1 = scheme.add_site("org1");
    SiteId org2 = scheme.add_site("org2");
    TreeSpec spec;
    spec.site_tag = "o1";
    populate_tree(fs, scheme.site_tree(org1), spec, 9);
    spec.site_tag = "o2";
    populate_tree(fs, scheme.site_tree(org2), spec, 9);
    scheme.finalize();
    NAMECOH_CHECK(scheme.add_cross_link(org2, Name("org1"), org1).is_ok(),
                  "");
    RepairAdvisor advisor(graph);
    auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(org1)));
    RepairOptions options;
    options.allow_dot_names = false;
    report_rows(t, "cross-link (Fig. 5)",
                advisor.suggest(scheme.make_site_context(org1),
                                scheme.make_site_context(org2), probes,
                                options));
  }

  {  // Shared graph: local names have NO repair (not reachable remotely);
     // /vice names need none.
    NamingGraph graph;
    FileSystem fs(graph);
    SharedGraphScheme scheme(fs);
    SiteId c1 = scheme.add_site("c1");
    SiteId c2 = scheme.add_site("c2");
    TreeSpec spec;
    spec.site_tag = "s1";
    populate_tree(fs, scheme.site_tree(c1), spec, 10);
    spec.site_tag = "s2";
    populate_tree(fs, scheme.site_tree(c2), spec, 10);
    NAMECOH_CHECK(
        fs.create_file_at(scheme.shared_tree(), "lib/x", "x").is_ok(), "");
    scheme.finalize();
    RepairAdvisor advisor(graph);
    auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(c1)));
    report_rows(t, "shared graph (Fig. 4)",
                advisor.suggest(scheme.make_site_context(c1),
                                scheme.make_site_context(c2), probes));
  }

  t.print(std::cout);
  std::cout << "(shared-graph local names are unreachable from other "
               "clients: correctly no rule;\n the paper's remedy there is "
               "the shared tree itself)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_RepairSuggest(benchmark::State& state) {
  NamingGraph graph;
  FileSystem fs(graph);
  NewcastleScheme scheme(fs);
  SiteId m1 = scheme.add_site("m1");
  SiteId m2 = scheme.add_site("m2");
  TreeSpec spec;
  spec.depth = static_cast<std::size_t>(state.range(0));
  spec.site_tag = "s1";
  populate_tree(fs, scheme.site_tree(m1), spec, 8);
  spec.site_tag = "s2";
  populate_tree(fs, scheme.site_tree(m2), spec, 8);
  scheme.finalize();
  RepairAdvisor advisor(graph);
  EntityId c1 = scheme.make_site_context(m1);
  EntityId c2 = scheme.make_site_context(m2);
  auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(m1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.suggest(c1, c2, probes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_RepairSuggest)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
