// Experiment X4 (extension): availability and staleness under replica
// failover.
//
// The paper's §5 introduces *weak* coherence — "same replicated object"
// instead of "same entity" — precisely because replicated naming data is
// how real systems (the DCE CDS, DNS secondaries) survive server loss.
// This experiment drives the replicated name service (docs/REPLICATION.md)
// through scripted faults (sim/faults.hpp) and measures both sides of the
// bargain:
//
//   * availability: a client workload keeps resolving while the primary is
//     killed mid-run; with a live secondary, every resolution must still
//     complete (0 permanent failures), at the cost of one failover budget
//     whenever the client re-probes the corpse;
//   * staleness: a secondary cut off from update propagation serves epoch-
//     stamped stale answers; every one of them must stay inside the
//     injected epoch gap and classify as kWeakReplicas — never kDifferent —
//     under the coherence analyzer, because the rebind replaced the entity
//     with a replica of the same object.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace namecoh {
namespace {

struct X4World {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  FaultInjector faults{sim};
  AuthorityMap homes;
  NameService service{graph, net, transport, homes};
  MachineId m1, m2, m3;
  EntityId root, shared, proj;
  std::vector<CompoundName> remote_names;
  std::vector<Name> leaves;

  X4World() {
    transport.attach_faults(&faults);
    NetworkId lan = net.add_network("lan");
    m1 = net.add_machine(lan, "m1");
    m2 = net.add_machine(lan, "m2");
    m3 = net.add_machine(lan, "m3");
    root = fs.make_root("m1-root");
    shared = fs.make_root("shared");
    for (int i = 0; i < 16; ++i) {
      NAMECOH_CHECK(
          fs.create_file_at(shared, "proj/f" + std::to_string(i), "v0")
              .is_ok(),
          "");
      remote_names.push_back(
          CompoundName::relative("shared/proj/f" + std::to_string(i)));
      leaves.push_back(Name("f" + std::to_string(i)));
    }
    NAMECOH_CHECK(fs.attach(root, Name("shared"), shared).is_ok(), "");
    // The shared tree is replicated: primary m2, secondary m3. The client's
    // machine m1 holds only its own root.
    homes.set_replicas_subtree(graph, shared, {m2, m3});
    homes.set_home_subtree(graph, root, m1);
    service.add_server(m1);
    service.add_server(m2);
    service.add_server(m3);
    Context ctx = FileSystem::make_process_context(root, root);
    proj = fs.resolve_path(ctx, "/shared/proj").entity;
    NAMECOH_CHECK(proj.valid(), "proj dir");
  }

  void sync_replicas() {
    for (EntityId ctx : homes.replicated_contexts()) {
      service.publish_update(ctx);
    }
    sim.run();
  }
};

/// Lift a client-side Result into the analyzer's Resolution shape.
Resolution as_resolution(const Result<EntityId>& r) {
  Resolution res;
  if (r.is_ok()) {
    res.status = Status::ok();
    res.entity = r.value();
  } else {
    res.status = r.status();
    res.entity = EntityId::invalid();
  }
  return res;
}

void run_experiment() {
  bench::print_header(
      "X4 (extension): replica failover availability & staleness bounds",
      "Killing the primary mid-workload costs failover latency, never "
      "resolutions;\na partitioned secondary serves stale answers bounded "
      "by the injected epoch\ngap, all weakly coherent (§5).");

  // Part 1: kill the primary mid-workload; the client must complete every
  // resolution by failing over to the secondary, re-probing the primary
  // each time its quarantine lapses.
  {
    X4World w;
    w.sync_replicas();
    ResolverClientConfig cfg;
    cfg.retry.request_timeout = 300;
    cfg.retry.retries = 1;
    cfg.replica_quarantine = 2000;  // re-probe the corpse periodically
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "avail", cfg);
    Rng rng(17);
    struct Phase {
      const char* label;
      int steps;
      std::uint64_t ok = 0;
      std::uint64_t failed = 0;
    };
    Phase phases[] = {{"before crash", 60, 0, 0},
                      {"primary crashed", 80, 0, 0},
                      {"after restart", 60, 0, 0}};
    for (int p = 0; p < 3; ++p) {
      if (p == 1) w.faults.crash(w.m2.value());
      if (p == 2) w.faults.restart(w.m2.value());
      for (int step = 0; step < phases[p].steps; ++step) {
        w.sim.run_until(w.sim.now() + 29);
        auto result = client.resolve(w.root, rng.pick(w.remote_names));
        if (result.is_ok()) {
          ++phases[p].ok;
        } else {
          ++phases[p].failed;
        }
      }
    }
    StatsSnapshot stats = client.snapshot();
    Table t({"phase", "resolutions", "permanent failures"});
    std::uint64_t total_failed = 0;
    for (const Phase& phase : phases) {
      t.add_row({phase.label, std::to_string(phase.ok + phase.failed),
                 std::to_string(phase.failed)});
      total_failed += phase.failed;
    }
    t.print(std::cout);
    NAMECOH_CHECK(total_failed == 0,
                  "a resolution failed permanently despite a live replica");

    const std::string hist_name =
        "ns.client." + std::to_string(client.endpoint().value()) +
        ".failover_latency";
    auto hist = w.transport.metrics().histograms().find(hist_name);
    NAMECOH_CHECK(hist != w.transport.metrics().histograms().end() &&
                      hist->second.total() > 0,
                  "failover latency histogram missing or empty");
    Table t2({"metric", "value"});
    t2.add_row({"failovers", std::to_string(stats["failovers"])});
    t2.add_row({"timeouts", std::to_string(stats["timeouts"])});
    t2.add_row({"failover latency p50 (ticks, bucket estimate)",
                bench::frac(hist->second.quantile(0.5), 0)});
    t2.add_row({"failover latency p95 (ticks, bucket estimate)",
                bench::frac(hist->second.quantile(0.95), 0)});
    t2.add_row({"failover latency max (ticks, exact)",
                bench::frac(hist->second.observed_max(), 0)});
    t2.add_row({"messages dropped at crashed machine",
                std::to_string(w.transport.metrics().counter_value(
                    "transport.fault.crash_drops"))});
    t2.print(std::cout);
    std::cout << "(0 permanent failures: every budget exhausted against the "
                 "dead primary\nends in a failover to the live secondary, "
                 "not an error)\n"
              << std::endl;
  }

  // Part 2: cut update propagation, rebind on the primary, and read
  // through the lagging secondary. Each rebind replaces a file with a new
  // entity in the *same replica group*, the §5 situation where stale
  // answers are weakly — but not strictly — coherent.
  {
    X4World w;
    w.sync_replicas();
    const std::uint64_t synced_epoch = *w.service.replica_epoch(w.m3, w.proj);

    // Block primary → secondary, then rebind half the files.
    w.faults.partition_one_way(w.m2.value(), w.m3.value());
    std::vector<bool> rebound(w.remote_names.size(), false);
    Context root_ctx = FileSystem::make_process_context(w.root, w.root);
    for (std::size_t i = 0; i < w.remote_names.size(); i += 2) {
      EntityId old_file = w.fs.resolve_path(root_ctx,
                                            "/shared/proj/f" +
                                                std::to_string(i))
                              .entity;
      ReplicaGroupId group = w.graph.new_replica_group();
      w.graph.set_replica_group(old_file, group);
      NAMECOH_CHECK(w.fs.unlink(w.proj, w.leaves[i]).is_ok(), "unlink");
      auto created = w.fs.create_file(w.proj, w.leaves[i], "v1");
      NAMECOH_CHECK(created.is_ok(), "create");
      w.graph.set_replica_group(created.value(), group);
      w.service.publish_update(w.proj);  // lost to the partition
      rebound[i] = true;
    }
    w.sim.run();
    const std::uint64_t current_epoch = w.graph.rebind_epoch(w.proj);
    const std::uint64_t injected_gap = current_epoch - synced_epoch;
    NAMECOH_CHECK(*w.service.replica_epoch(w.m3, w.proj) == synced_epoch,
                  "partition failed to hold the secondary back");

    // Read every name through the secondary (primary down) and classify
    // each answer against the authoritative graph.
    w.faults.crash(w.m2.value());
    ResolverClientConfig cfg;
    cfg.retry.request_timeout = 300;
    cfg.retry.retries = 1;
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "stale", cfg);
    CoherenceAnalyzer analyzer(w.graph);
    std::uint64_t same = 0, weak = 0, different = 0, unresolved = 0;
    for (std::size_t i = 0; i < w.remote_names.size(); ++i) {
      auto via_secondary = client.resolve(w.root, w.remote_names[i]);
      Resolution truth = resolve_from(w.graph, w.root, w.remote_names[i]);
      ProbeVerdict verdict =
          analyzer.compare(as_resolution(via_secondary), truth);
      switch (verdict) {
        case ProbeVerdict::kSameEntity: ++same; break;
        case ProbeVerdict::kWeakReplicas: ++weak; break;
        case ProbeVerdict::kDifferent: ++different; break;
        default: ++unresolved; break;
      }
      if (rebound[i]) {
        NAMECOH_CHECK(verdict == ProbeVerdict::kWeakReplicas,
                      "stale answer was not weakly coherent");
      } else {
        NAMECOH_CHECK(verdict == ProbeVerdict::kSameEntity,
                      "untouched name should agree exactly");
      }
    }
    // Every stale answer came from the snapshot applied at sync time, so
    // its staleness is exactly the injected epoch gap — never more.
    const std::uint64_t served_epoch =
        *w.service.replica_epoch(w.m3, w.proj);
    NAMECOH_CHECK(current_epoch - served_epoch <= injected_gap,
                  "secondary served older than the injected gap");

    Table t({"metric", "value"});
    t.add_row({"probes", std::to_string(w.remote_names.size())});
    t.add_row({"strictly coherent (kSameEntity)", std::to_string(same)});
    t.add_row({"stale but weakly coherent (kWeakReplicas)",
               std::to_string(weak)});
    t.add_row({"incoherent (kDifferent)", std::to_string(different)});
    t.add_row({"unresolved on either side", std::to_string(unresolved)});
    t.add_row({"secondary epoch at serve time",
               std::to_string(served_epoch)});
    t.add_row({"authority epoch", std::to_string(current_epoch)});
    t.add_row({"injected epoch gap", std::to_string(injected_gap)});
    t.print(std::cout);
    std::cout << "(the partitioned secondary lags by exactly the injected "
                 "gap; every stale\nanswer is a replica of the truth — weak "
                 "coherence in the §5 sense — and\nthe stamped epoch tells "
                 "the client precisely how stale it is)\n"
              << std::endl;
  }
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ResolveViaSecondary(benchmark::State& state) {
  // Steady-state reads against a quarantined-primary replica set: the
  // secondary's replica-store walk plus one referral.
  X4World w;
  w.sync_replicas();
  w.faults.crash(w.m2.value());
  ResolverClientConfig cfg;
  cfg.retry.request_timeout = 300;
  cfg.retry.retries = 1;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench", cfg);
  // Pay the one-time failover before measuring.
  (void)client.resolve(w.root, w.remote_names[0]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(
        w.root, w.remote_names[i++ % w.remote_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveViaSecondary);

void BM_PublishUpdate(benchmark::State& state) {
  // Cost of one full-snapshot push (encode + wire + apply) per iteration.
  X4World w;
  for (auto _ : state) {
    w.service.publish_update(w.proj);
    w.sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PublishUpdate);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
