// Experiment E3 (§7): shared name spaces at limited scopes.
//
// Claims reproduced:
//   * a name space attached under a common name in every context of a
//     scope (/users within an org, /services across orgs) gives coherence
//     exactly within that scope;
//   * crossing scope boundaries needs the human prefix mapping
//     (/users → /org2/users), which mechanically restores reference;
//   * embedded names inside a subtree fetched across the boundary are
//     incoherent under the prefix mapping alone ("the names would surely
//     not be prefixed by /org2/users") — the §6 R(file) rule restores
//     them.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "embed/embedded.hpp"
#include "workload/doc_gen.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct ScopesWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  // Two organizations, two machines each.
  EntityId org1_users, org2_users, services;
  EntityId m11, m12, m21, m22;  // machine roots

  ScopesWorld() {
    org1_users = fs.make_root("org1-users");
    org2_users = fs.make_root("org2-users");
    services = fs.make_root("services");
    TreeSpec spec;
    spec.depth = 1;
    spec.dirs_per_dir = 3;
    spec.files_per_dir = 3;
    spec.common_fraction = 1.0;
    populate_tree(fs, org1_users, spec, 61);
    populate_tree(fs, org2_users, spec, 62);
    populate_tree(fs, services, spec, 63);

    auto make_machine = [&](const char* label, EntityId users,
                            EntityId other_org_users, const char* other) {
      EntityId root = fs.make_root(label);
      NAMECOH_CHECK(fs.attach(root, Name("users"), users).is_ok(), "");
      NAMECOH_CHECK(fs.attach(root, Name("services"), services).is_ok(), "");
      // Cross-scope access: the other org's user space under a prefix.
      EntityId other_dir = fs.mkdir(root, Name(other)).value();
      NAMECOH_CHECK(
          fs.attach(other_dir, Name("users"), other_org_users).is_ok(), "");
      return root;
    };
    m11 = make_machine("org1-m1", org1_users, org2_users, "org2");
    m12 = make_machine("org1-m2", org1_users, org2_users, "org2");
    m21 = make_machine("org2-m1", org2_users, org1_users, "org1");
    m22 = make_machine("org2-m2", org2_users, org1_users, "org1");
  }

  EntityId ctx_for(EntityId root) {
    EntityId ctx = graph.add_context_object("pctx");
    graph.context(ctx) = FileSystem::make_process_context(root, root);
    return ctx;
  }
};

void run_experiment() {
  bench::print_header(
      "E3: shared name spaces in limited scopes (§7)",
      "/users is coherent within an organization, incoherent across; "
      "/services is\ncoherent everywhere; the /org2 prefix mapping bridges "
      "the boundary.");

  ScopesWorld w;
  CoherenceAnalyzer analyzer(w.graph);
  EntityId c11 = w.ctx_for(w.m11);
  EntityId c12 = w.ctx_for(w.m12);
  EntityId c21 = w.ctx_for(w.m21);

  std::vector<CompoundName> user_probes;
  for (const auto& p : probes_from_dir(w.graph, w.org1_users)) {
    user_probes.push_back(CompoundName::path("/users").append(p));
  }
  std::vector<CompoundName> service_probes;
  for (const auto& p : probes_from_dir(w.graph, w.services)) {
    service_probes.push_back(CompoundName::path("/services").append(p));
  }

  Table t({"name space", "pair", "strict coherence", "probes"});
  auto add = [&](const std::string& space, const std::string& pair,
                 EntityId a, EntityId b,
                 const std::vector<CompoundName>& probes) {
    DegreeReport r = analyzer.degree(a, b, probes);
    t.add_row({space, pair, bench::frac(r.strict.fraction()),
               std::to_string(r.strict.trials())});
  };
  add("/users (org scope)", "org1-m1 <-> org1-m2", c11, c12, user_probes);
  add("/users (org scope)", "org1-m1 <-> org2-m1", c11, c21, user_probes);
  add("/services (global scope)", "org1-m1 <-> org2-m1", c11, c21,
      service_probes);
  t.print(std::cout);

  // Prefix mapping across the boundary.
  Context on_org2 = FileSystem::make_process_context(w.m21, w.m21);
  Context on_org1 = FileSystem::make_process_context(w.m11, w.m11);
  FractionCounter mapped_ok;
  for (const auto& p : probes_from_dir(w.graph, w.org2_users)) {
    CompoundName local = CompoundName::path("/users").append(p);
    Resolution meant = w.fs.resolve_path(on_org2, local.to_path());
    if (!meant.ok()) continue;
    auto mapped = local.rebase(CompoundName::path("/users"),
                               CompoundName::path("/org2/users"));
    mapped_ok.add(mapped.is_ok() &&
                  w.fs.resolve_path(on_org1, mapped.value().to_path())
                      .same_entity(meant));
  }
  Table t2({"§7 prefix mapping", "value"});
  t2.add_row({"org2 /users name -> /org2/users on org1: restored",
              bench::frac(mapped_ok.fraction())});
  t2.add_row({"names mapped", std::to_string(mapped_ok.trials())});
  t2.print(std::cout);

  // Embedded names across the scope boundary: the prefix trick cannot be
  // applied by humans to names *inside* files; R(file) fixes them.
  Document doc = make_document(w.fs, w.org2_users, Name("report"), DocSpec{});
  NAMECOH_CHECK(doc.refs > 0, "document generation");
  DocumentAssembler assembler(w.graph);
  // org1 user opens it as /org2/users/report/book.tex.
  Resolution opened =
      w.fs.resolve_path(on_org1, "/org2/users/report/book.tex");
  NAMECOH_CHECK(opened.ok(), "cross-scope open failed");
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning via_file_rule =
      assembler.assemble(opened.entity, opened.trail.back(), algol);
  AssembleOptions by_activity;
  by_activity.rule = EmbedRule::kActivityContext;
  by_activity.reader_context = &on_org1;
  DocumentMeaning via_activity_rule =
      assembler.assemble(opened.entity, opened.trail.back(), by_activity);
  Table t3({"embedded names across the scope boundary", "fully resolved"});
  t3.add_row({"R(activity) (reader's context on org1)",
              bench::frac(via_activity_rule.fully_resolved() ? 1 : 0)});
  t3.add_row({"R(file) Algol scope (§6 solution)",
              bench::frac(via_file_rule.fully_resolved() ? 1 : 0)});
  t3.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ScopedResolution(benchmark::State& state) {
  ScopesWorld w;
  Context ctx = FileSystem::make_process_context(w.m11, w.m11);
  std::vector<CompoundName> probes;
  for (const auto& p : probes_from_dir(w.graph, w.services)) {
    probes.push_back(CompoundName::path("/services").append(p));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve(w.graph, ctx, probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedResolution);

void BM_PrefixRebase(benchmark::State& state) {
  CompoundName from = CompoundName::path("/users");
  CompoundName to = CompoundName::path("/org2/users");
  CompoundName name = CompoundName::path("/users/ann/projects/x/report.txt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(name.rebase(from, to));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixRebase);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
