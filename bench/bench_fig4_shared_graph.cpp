// Experiment F4 (Fig. 4 + §5.2, the shared naming graph: Andrew, OSF DCE).
//
// Claims reproduced:
//   * exactly the /vice-prefixed names are global across client subsystems;
//   * replicated commands (/bin, /lib analogues) are weakly coherent but
//     not strictly coherent;
//   * local names are incoherent across clients (and the failure mode for
//     common local names is the silent kDifferent);
//   * DCE cells: cell-relative ("/.:") names are coherent within a cell
//     and incoherent across cells — one local cell per machine is the §5.2
//     limitation.
#include <unordered_set>

#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "schemes/shared_graph.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct AndrewWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  SharedGraphScheme scheme{fs};
  std::vector<SiteId> sites;
  std::vector<CompoundName> all_probes, vice_probes, local_probes,
      replicated_probes;

  explicit AndrewWorld(std::size_t n_sites = 4) {
    for (std::size_t i = 0; i < n_sites; ++i) {
      sites.push_back(scheme.add_site("c" + std::to_string(i)));
    }
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 2;
    spec.files_per_dir = 3;
    spec.common_fraction = 0.5;
    for (std::size_t i = 0; i < n_sites; ++i) {
      spec.site_tag = "s" + std::to_string(i);
      populate_tree(fs, scheme.site_tree(sites[i]), spec, 77);
    }
    // Shared-tree content (user homes, project trees).
    TreeSpec shared_spec;
    shared_spec.depth = 2;
    shared_spec.dirs_per_dir = 2;
    shared_spec.files_per_dir = 3;
    shared_spec.common_fraction = 1.0;
    populate_tree(fs, scheme.shared_tree(), shared_spec, 5);
    // Replicated commands at the same local paths on every site.
    std::unordered_set<CompoundName> replicated_set;
    for (const char* cmd : {"bin/cc", "bin/ld", "bin/sh", "lib/libc.a"}) {
      NAMECOH_CHECK(scheme.replicate_everywhere(cmd, cmd).is_ok(), "repl");
      replicated_set.insert(
          CompoundName::path(std::string("/") + cmd));
    }
    scheme.finalize();

    all_probes = absolutize(probes_from_dir(graph, scheme.site_tree(sites[0])));
    CompoundName vice = CompoundName::path("/vice");
    for (const auto& p : all_probes) {
      if (p.has_prefix(vice)) {
        vice_probes.push_back(p);
      } else if (replicated_set.contains(p)) {
        replicated_probes.push_back(p);
      } else {
        local_probes.push_back(p);
      }
    }
  }
};

void run_experiment() {
  bench::print_header(
      "F4: shared naming graph among clients (Fig. 4, Andrew / OSF DCE)",
      "Global names are exactly the /vice-prefixed ones; replicated "
      "commands are weakly\ncoherent; local names are incoherent across "
      "client subsystems.");

  AndrewWorld w;
  CoherenceAnalyzer analyzer(w.graph);
  std::vector<EntityId> contexts;
  for (SiteId s : w.sites) contexts.push_back(w.scheme.make_site_context(s));

  Table t({"probe subset", "pairwise strict", "pairwise weak", "global",
           "probes"});
  auto add = [&](const std::string& label,
                 const std::vector<CompoundName>& probes) {
    DegreeReport r = analyzer.pairwise_degree(contexts, probes);
    FractionCounter g = analyzer.global_fraction(contexts, probes,
                                                 CoherenceMode::kStrict);
    t.add_row({label, bench::frac(r.strict.fraction()),
               bench::frac(r.weak.fraction()), bench::frac(g.fraction()),
               std::to_string(probes.size())});
  };
  add("/vice names (shared graph)", w.vice_probes);
  add("replicated commands (/bin,/lib)", w.replicated_probes);
  add("local names", w.local_probes);
  add("all names", w.all_probes);
  t.print(std::cout);

  // DCE cells: two orgs, three machines.
  NamingGraph graph2;
  FileSystem fs2(graph2);
  SharedGraphConfig config;
  config.shared_name = Name("...");
  config.cell_name = Name(".:");
  SharedGraphScheme dce(fs2, config);
  SiteId a1 = dce.add_site("orgA-1");
  SiteId a2 = dce.add_site("orgA-2");
  SiteId b1 = dce.add_site("orgB-1");
  NAMECOH_CHECK(dce.assign_cell(a1, Name("orgA")).is_ok(), "cell");
  NAMECOH_CHECK(dce.assign_cell(a2, Name("orgA")).is_ok(), "cell");
  NAMECOH_CHECK(dce.assign_cell(b1, Name("orgB")).is_ok(), "cell");
  TreeSpec cell_spec;
  cell_spec.depth = 1;
  cell_spec.dirs_per_dir = 2;
  cell_spec.files_per_dir = 3;
  cell_spec.common_fraction = 1.0;
  Context shared_root_ctx = FileSystem::make_process_context(
      dce.shared_tree(), dce.shared_tree());
  populate_tree(fs2, fs2.resolve_path(shared_root_ctx, "/orgA").entity,
                cell_spec, 11);
  populate_tree(fs2, fs2.resolve_path(shared_root_ctx, "/orgB").entity,
                cell_spec, 11);
  dce.finalize();

  CoherenceAnalyzer analyzer2(graph2);
  EntityId ca1 = dce.make_site_context(a1);
  EntityId ca2 = dce.make_site_context(a2);
  EntityId cb1 = dce.make_site_context(b1);
  // Cell-relative probes "/.:/…" built from orgA's cell content.
  EntityId orgA_dir = fs2.resolve_path(shared_root_ctx, "/orgA").entity;
  std::vector<CompoundName> cell_probes;
  for (const auto& p : probes_from_dir(graph2, orgA_dir)) {
    std::vector<Name> parts{Name("/"), Name(".:")};
    for (const Name& c : p.components()) parts.push_back(c);
    cell_probes.emplace_back(std::move(parts));
  }
  DegreeReport same_cell = analyzer2.degree(ca1, ca2, cell_probes);
  DegreeReport cross_cell = analyzer2.degree(ca1, cb1, cell_probes);
  Table t2({"DCE pair", "cell-relative (/.:) strict coherence", "probes"});
  t2.add_row({"same cell (orgA-1, orgA-2)",
              bench::frac(same_cell.strict.fraction()),
              std::to_string(same_cell.strict.trials())});
  t2.add_row({"cross cell (orgA-1, orgB-1)",
              bench::frac(cross_cell.strict.fraction()),
              std::to_string(cross_cell.strict.trials())});
  t2.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_SharedGraphResolveVice(benchmark::State& state) {
  AndrewWorld w;
  Context ctx = FileSystem::make_process_context(
      w.scheme.site_root(w.sites[0]), w.scheme.site_root(w.sites[0]));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve(w.graph, ctx, w.vice_probes[i++ % w.vice_probes.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SharedGraphResolveVice);

void BM_WeakCoherenceCheck(benchmark::State& state) {
  // Design-choice ablation (DESIGN.md #4): cost of the weak-equality check
  // (replica groups) on the probe path.
  AndrewWorld w;
  CoherenceAnalyzer analyzer(w.graph);
  EntityId a = w.scheme.make_site_context(w.sites[0]);
  EntityId b = w.scheme.make_site_context(w.sites[1]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.probe(
        a, b, w.replicated_probes[i++ % w.replicated_probes.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WeakCoherenceCheck);

void BM_ReplicateEverywhere(benchmark::State& state) {
  // Cost of installing a replicated command across N sites.
  for (auto _ : state) {
    state.PauseTiming();
    NamingGraph graph;
    FileSystem fs(graph);
    SharedGraphScheme scheme(fs);
    for (int i = 0; i < 8; ++i) scheme.add_site("c" + std::to_string(i));
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        scheme.replicate_everywhere("bin/tool", "payload"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ReplicateEverywhere);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
