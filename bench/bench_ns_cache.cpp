// Experiment X1 (extension; DESIGN.md "optional/extension features").
//
// The paper's coherence notion is *spatial* (different activities, same
// instant). Real distributed name services (DNS, the §5.2 DCE CDS, modern
// ZooKeeper/etcd consumers) add caches, which introduce *temporal*
// incoherence: a cached binding that outlives a rebind makes a client
// disagree with the authority. This experiment quantifies the classic
// trade-off on our messaging substrate:
//
//   * cost: messages and simulated latency per resolution — local vs
//     referral vs cache-hit;
//   * correctness: fraction of resolutions agreeing with the authority, as
//     a function of cache TTL vs rebind interval.
#include <fstream>

#include "bench_common.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace namecoh {
namespace {

struct NsWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  AuthorityMap homes;
  NameService service{graph, net, transport, homes};
  MachineId m1, m2;
  EntityId root, shared;
  std::vector<CompoundName> local_names, remote_names;

  NsWorld() {
    NetworkId lan = net.add_network("lan");
    m1 = net.add_machine(lan, "m1");
    m2 = net.add_machine(lan, "m2");
    root = fs.make_root("m1-root");
    shared = fs.make_root("shared");
    for (int i = 0; i < 16; ++i) {
      NAMECOH_CHECK(fs.create_file_at(root,
                                      "local/f" + std::to_string(i), "x")
                        .is_ok(), "");
      NAMECOH_CHECK(fs.create_file_at(shared,
                                      "proj/f" + std::to_string(i), "y")
                        .is_ok(), "");
      local_names.push_back(
          CompoundName::relative("local/f" + std::to_string(i)));
      remote_names.push_back(
          CompoundName::relative("shared/proj/f" + std::to_string(i)));
    }
    NAMECOH_CHECK(fs.attach(root, Name("shared"), shared).is_ok(), "");
    homes.set_home_subtree(graph, shared, m2);
    homes.set_home_subtree(graph, root, m1);
    service.add_server(m1);
    service.add_server(m2);
  }
};

void run_experiment() {
  bench::print_header(
      "X1 (extension): distributed resolution & cache temporal incoherence",
      "Referrals double the message cost; caching removes it entirely but "
      "trades\nagreement with the authority for TTL-bounded staleness.");

  // Part 1: cost per resolution kind.
  {
    NsWorld w;
    ResolverClientConfig cached_cfg;
    cached_cfg.cache_ttl = 1u << 30;  // effectively infinite
    Table t({"resolution kind", "messages per resolve",
             "sim ticks per resolve"});
    auto measure = [&](const std::vector<CompoundName>& names,
                       ResolverClientConfig cfg, bool warm,
                       const std::string& label) {
      ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                            w.m1, "c", cfg);
      if (warm) {
        for (const auto& n : names) (void)client.resolve(w.root, n);
      }
      std::uint64_t msgs_before = client.snapshot()["messages_sent"];
      SimTime t0 = w.sim.now();
      for (const auto& n : names) {
        NAMECOH_CHECK(client.resolve(w.root, n).is_ok(), "resolve");
      }
      double n = static_cast<double>(names.size());
      t.add_row(
          {label,
           bench::frac(static_cast<double>(client.snapshot()["messages_sent"] -
                                           msgs_before) / n, 2),
           bench::frac(static_cast<double>(w.sim.now() - t0) / n, 1)});
    };
    measure(w.local_names, {}, false, "local (authoritative on this machine)");
    measure(w.remote_names, {}, false, "remote (one referral)");
    measure(w.remote_names, cached_cfg, true, "remote, cache warm");
    t.print(std::cout);
  }

  // Part 2: staleness — agreement with the authority vs TTL, with and
  // without epoch-based invalidation. The workload rebinds a random local
  // file every `rebind_every` ticks; every 4th step the client also probes
  // an uncached name in the same directory (think: the steady trickle of
  // misses a real client generates), which is what carries fresh rebind
  // epochs back. TTL-only clients keep serving the superseded binding for
  // the full TTL; invalidating clients drop it at the next authority
  // contact.
  Table t2({"cache TTL (ticks)", "invalidation", "agreement",
            "cache hit rate", "stale-epoch drops"});
  for (SimDuration ttl :
       {SimDuration{200}, SimDuration{2000}, SimDuration{20000}}) {
    for (bool invalidation : {false, true}) {
      NsWorld w;
      const SimDuration rebind_every = 2000;
      ResolverClientConfig cfg;
      cfg.cache_ttl = ttl;
      cfg.epoch_invalidation = invalidation;
      ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                            w.m1, "c", cfg);
      Context root_ctx = FileSystem::make_process_context(w.root, w.root);
      EntityId local_dir = w.fs.resolve_path(root_ctx, "/local").entity;
      CompoundName probe = CompoundName::relative("local/missing");
      Rng rng(5);
      FractionCounter agree;
      SimTime next_rebind = rebind_every;
      for (int step = 0; step < 400; ++step) {
        // Advance time; rebind a random local file on schedule.
        w.sim.run_until(w.sim.now() + 97);
        if (w.sim.now() >= next_rebind) {
          next_rebind += rebind_every;
          std::size_t idx = static_cast<std::size_t>(
              rng.next_below(w.local_names.size()));
          Name leaf = w.local_names[idx].back();
          (void)w.fs.unlink(local_dir, leaf);
          (void)w.fs.create_file(local_dir, leaf, "v" + std::to_string(step));
        }
        if (step % 4 == 0) (void)client.resolve(w.root, probe);
        const CompoundName& name = rng.pick(w.local_names);
        auto via_client = client.resolve(w.root, name);
        Resolution truth = resolve_from(w.graph, w.root, name);
        agree.add(via_client.is_ok() && truth.ok() &&
                  via_client.value() == truth.entity);
      }
      double lookups = static_cast<double>(client.snapshot()["cache_hits"] +
                                           client.snapshot()["cache_misses"]);
      t2.add_row({std::to_string(ttl), invalidation ? "epoch" : "TTL only",
                  bench::frac(agree.fraction()),
                  bench::frac(static_cast<double>(client.snapshot()["cache_hits"]) /
                              lookups),
                  std::to_string(client.snapshot()["stale_epoch_drops"])});
    }
  }
  t2.print(std::cout);
  std::cout << "(TTL-only: cached lies survive the full TTL, so agreement "
               "decays as TTL\ngrows; epoch invalidation drops superseded "
               "entries at the next authority\ncontact, holding agreement "
               "high at a small hit-rate cost)\n"
            << std::endl;

  // Part 3: bounded LRU + negative cache under churn. 24 real names and 8
  // ghosts round-robin through a small cache; the LRU bound must hold at
  // every step and repeated failures should be absorbed by the negative
  // entries instead of the network.
  Table t3({"capacity", "max cache size", "evictions", "negative hits",
            "cache hit rate"});
  for (std::size_t capacity : {std::size_t{4}, std::size_t{8},
                               std::size_t{16}}) {
    NsWorld w;
    ResolverClientConfig cfg;
    cfg.cache_ttl = 1u << 30;
    cfg.negative_cache_ttl = 500;
    cfg.cache_capacity = capacity;
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "c", cfg);
    std::vector<CompoundName> mixed;
    for (int i = 0; i < 24; ++i) {
      std::string path = "local/churn" + std::to_string(i);
      NAMECOH_CHECK(w.fs.create_file_at(w.root, path, "x").is_ok(), "");
      mixed.push_back(CompoundName::relative(path));
    }
    for (int i = 0; i < 8; ++i) {
      mixed.push_back(
          CompoundName::relative("local/ghost" + std::to_string(i)));
    }
    Rng rng(11);
    std::size_t max_size = 0;
    for (int step = 0; step < 800; ++step) {
      w.sim.run_until(w.sim.now() + 13);
      (void)client.resolve(w.root, rng.pick(mixed));
      max_size = std::max(max_size, client.cache_size());
      NAMECOH_CHECK(client.cache_size() <= capacity,
                    "LRU bound violated under churn");
    }
    double lookups = static_cast<double>(client.snapshot()["cache_hits"] +
                                         client.snapshot()["cache_misses"]);
    t3.add_row({std::to_string(capacity), std::to_string(max_size),
                std::to_string(client.snapshot()["evictions"]),
                std::to_string(client.snapshot()["negative_hits"]),
                bench::frac((static_cast<double>(client.snapshot()["cache_hits"]) +
                             static_cast<double>(
                                 client.snapshot()["negative_hits"])) /
                            (lookups + static_cast<double>(
                                           client.snapshot()["negative_hits"])))});
  }
  t3.print(std::cout);
  std::cout << "(the cache never exceeds its configured capacity; negative "
               "entries absorb\nrepeated failures until their shorter TTL "
               "lapses)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_RemoteResolveUncached(benchmark::State& state) {
  NsWorld w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "c");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(
        w.root, w.remote_names[i++ % w.remote_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteResolveUncached);

void BM_RemoteResolveCached(benchmark::State& state) {
  NsWorld w;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 1u << 30;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "c", cfg);
  for (const auto& n : w.remote_names) (void)client.resolve(w.root, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(
        w.root, w.remote_names[i++ % w.remote_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteResolveCached);

void BM_ServerWalk(benchmark::State& state) {
  // In-memory equivalent of the server-side walk, for comparison.
  NsWorld w;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(
        w.graph, w.root, w.local_names[i++ % w.local_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerWalk);

// --- Observability export ----------------------------------------------------

// Runs a short lossy resolution scenario with tracing enabled and writes
// the requested artifacts: a Perfetto-loadable chrome-trace JSON
// (--trace-export=FILE) and/or the unified metrics registry as JSON
// (--metrics-out=FILE). Exercised by scripts/export_trace.sh and
// scripts/run_benchmarks.sh.
int run_observability_export(const std::string& trace_path,
                             const std::string& metrics_path) {
  NsWorld w;
  Tracer& tracer = w.transport.tracer();
  tracer.set_enabled(true);
  // Total loss for the first 50 ticks: the opening lookup drops, times
  // out, and retries — so the exported trace shows the full drop →
  // backoff → re-send → deliver chain, not just happy-path sends.
  w.transport.set_drop_probability(1.0);
  w.sim.schedule_at(w.sim.now() + 50,
                    [&] { w.transport.set_drop_probability(0.0); });
  ResolverClientConfig cfg;
  cfg.cache_ttl = 10000;
  cfg.retry.retries = 2;
  cfg.retry.request_timeout = 100;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "trace", cfg);
  for (const auto& name : w.local_names) (void)client.resolve(w.root, name);
  for (const auto& name : w.remote_names) (void)client.resolve(w.root, name);
  // Second pass hits the cache; the last span records a clean failure.
  for (const auto& name : w.remote_names) (void)client.resolve(w.root, name);
  (void)client.resolve(w.root, CompoundName::relative("local/missing"));
  if (!trace_path.empty()) {
    Status status = write_chrome_trace(tracer, trace_path);
    if (!status.is_ok()) {
      std::cerr << status.to_string() << "\n";
      return 1;
    }
    std::cout << "wrote chrome trace: " << trace_path << " ("
              << tracer.spans().size() << " spans, " << tracer.size()
              << " events, " << tracer.dropped() << " dropped)\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << w.transport.metrics().to_json() << "\n";
    if (!out) {
      std::cerr << "cannot write metrics file: " << metrics_path << "\n";
      return 1;
    }
    std::cout << "wrote metrics: " << metrics_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace namecoh

// Custom main: like NAMECOH_BENCH_MAIN, plus the observability-export
// flags, which run the traced scenario and exit instead of benchmarking.
int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::vector<char*> remaining;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-export=", 15) == 0) {
      trace_path = argv[i] + 15;
      continue;
    }
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_path = argv[i] + 14;
      continue;
    }
    remaining.push_back(argv[i]);
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    return namecoh::run_observability_export(trace_path, metrics_path);
  }
  std::vector<char*> patched_args;
  const bool json_only =
      namecoh::bench::consume_json_flag(argc, argv, patched_args);
  char** args = json_only ? patched_args.data() : argv;
  if (!json_only) namecoh::run_experiment();
  benchmark::Initialize(&argc, args);
  if (benchmark::ReportUnrecognizedArguments(argc, args)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
