// Experiment X1 (extension; DESIGN.md "optional/extension features").
//
// The paper's coherence notion is *spatial* (different activities, same
// instant). Real distributed name services (DNS, the §5.2 DCE CDS, modern
// ZooKeeper/etcd consumers) add caches, which introduce *temporal*
// incoherence: a cached binding that outlives a rebind makes a client
// disagree with the authority. This experiment quantifies the classic
// trade-off on our messaging substrate:
//
//   * cost: messages and simulated latency per resolution — local vs
//     referral vs cache-hit;
//   * correctness: fraction of resolutions agreeing with the authority, as
//     a function of cache TTL vs rebind interval.
#include "bench_common.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace namecoh {
namespace {

struct NsWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  HomeMap homes;
  NameService service{graph, net, transport, homes};
  MachineId m1, m2;
  EntityId root, shared;
  std::vector<CompoundName> local_names, remote_names;

  NsWorld() {
    NetworkId lan = net.add_network("lan");
    m1 = net.add_machine(lan, "m1");
    m2 = net.add_machine(lan, "m2");
    root = fs.make_root("m1-root");
    shared = fs.make_root("shared");
    for (int i = 0; i < 16; ++i) {
      NAMECOH_CHECK(fs.create_file_at(root,
                                      "local/f" + std::to_string(i), "x")
                        .is_ok(), "");
      NAMECOH_CHECK(fs.create_file_at(shared,
                                      "proj/f" + std::to_string(i), "y")
                        .is_ok(), "");
      local_names.push_back(
          CompoundName::relative("local/f" + std::to_string(i)));
      remote_names.push_back(
          CompoundName::relative("shared/proj/f" + std::to_string(i)));
    }
    NAMECOH_CHECK(fs.attach(root, Name("shared"), shared).is_ok(), "");
    homes.set_home_subtree(graph, shared, m2);
    homes.set_home_subtree(graph, root, m1);
    service.add_server(m1);
    service.add_server(m2);
  }
};

void run_experiment() {
  bench::print_header(
      "X1 (extension): distributed resolution & cache temporal incoherence",
      "Referrals double the message cost; caching removes it entirely but "
      "trades\nagreement with the authority for TTL-bounded staleness.");

  // Part 1: cost per resolution kind.
  {
    NsWorld w;
    ResolverClientConfig cached_cfg;
    cached_cfg.cache_ttl = 1u << 30;  // effectively infinite
    Table t({"resolution kind", "messages per resolve",
             "sim ticks per resolve"});
    auto measure = [&](const std::vector<CompoundName>& names,
                       ResolverClientConfig cfg, bool warm,
                       const std::string& label) {
      ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                            w.m1, "c", cfg);
      if (warm) {
        for (const auto& n : names) (void)client.resolve(w.root, n);
      }
      std::uint64_t msgs_before = client.stats().messages_sent;
      SimTime t0 = w.sim.now();
      for (const auto& n : names) {
        NAMECOH_CHECK(client.resolve(w.root, n).is_ok(), "resolve");
      }
      double n = static_cast<double>(names.size());
      t.add_row(
          {label,
           bench::frac(static_cast<double>(client.stats().messages_sent -
                                           msgs_before) / n, 2),
           bench::frac(static_cast<double>(w.sim.now() - t0) / n, 1)});
    };
    measure(w.local_names, {}, false, "local (authoritative on this machine)");
    measure(w.remote_names, {}, false, "remote (one referral)");
    measure(w.remote_names, cached_cfg, true, "remote, cache warm");
    t.print(std::cout);
  }

  // Part 2: staleness — agreement with the authority vs TTL/rebind ratio.
  Table t2({"cache TTL (ticks)", "rebind interval (ticks)",
            "agreement with authority"});
  for (SimDuration ttl : {SimDuration{0}, SimDuration{200}, SimDuration{2000},
                          SimDuration{20000}}) {
    NsWorld w;
    const SimDuration rebind_every = 2000;
    ResolverClientConfig cfg;
    cfg.cache_ttl = ttl;
    ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service,
                          w.m1, "c", cfg);
    Context root_ctx = FileSystem::make_process_context(w.root, w.root);
    EntityId local_dir = w.fs.resolve_path(root_ctx, "/local").entity;
    Rng rng(5);
    FractionCounter agree;
    SimTime next_rebind = rebind_every;
    for (int step = 0; step < 400; ++step) {
      // Advance time; rebind a random local file on schedule.
      w.sim.run_until(w.sim.now() + 97);
      if (w.sim.now() >= next_rebind) {
        next_rebind += rebind_every;
        std::size_t idx = static_cast<std::size_t>(
            rng.next_below(w.local_names.size()));
        Name leaf = w.local_names[idx].back();
        (void)w.fs.unlink(local_dir, leaf);
        (void)w.fs.create_file(local_dir, leaf, "v" + std::to_string(step));
      }
      const CompoundName& name = rng.pick(w.local_names);
      auto via_client = client.resolve(w.root, name);
      Resolution truth = resolve_from(w.graph, w.root, name);
      agree.add(via_client.is_ok() && truth.ok() &&
                via_client.value() == truth.entity);
    }
    t2.add_row({std::to_string(ttl), std::to_string(rebind_every),
                bench::frac(agree.fraction())});
  }
  t2.print(std::cout);
  std::cout << "(TTL << rebind interval: agreement ~1; TTL >> rebind "
               "interval: cached lies dominate)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_RemoteResolveUncached(benchmark::State& state) {
  NsWorld w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "c");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(
        w.root, w.remote_names[i++ % w.remote_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteResolveUncached);

void BM_RemoteResolveCached(benchmark::State& state) {
  NsWorld w;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 1u << 30;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "c", cfg);
  for (const auto& n : w.remote_names) (void)client.resolve(w.root, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(
        w.root, w.remote_names[i++ % w.remote_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteResolveCached);

void BM_ServerWalk(benchmark::State& state) {
  // In-memory equivalent of the server-side walk, for comparison.
  NsWorld w;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve_from(
        w.graph, w.root, w.local_names[i++ % w.local_names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerWalk);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
