// Experiment X10 (extension): dynamic membership — the §6 renumbering
// stress at fabric scale. (The binary follows the bench_x7/x8 sequence
// numbering; EXPERIMENTS.md's X9 is the online rebalancing measured by
// bench_x8_rebalance.)
//
// The paper's §6 argues that *where* a name is closed over decides what a
// reconfiguration breaks: identifiers fully qualified down to a machine
// address die with the address; identifiers qualified only relative to an
// enclosing scope survive anything that happens outside that scope. PR 10
// makes the machines themselves dynamic (docs/MEMBERSHIP.md) — they leave,
// rejoin, crash and renumber while a closed-loop load resolves — and this
// experiment measures the same name set through three closure rules:
//
//   * fully qualified — a stored (naddr, maddr, laddr) pid for a subtree's
//     home server, resolved straight through the transport;
//   * partially qualified — a relative compound name closed over its
//     subtree root, resolved through the naming fabric;
//   * Algol-scoped — an embedded name resolved from its closest-ancestor
//     scope (R(file), §6 Example 2), then through the fabric;
//
// crossed with the three cache-coherence policies (TTL-only, epoch-pull,
// lease-push; docs/COHERENCE.md). The fabric churns through three phases:
// a rolling datacenter restart (graceful leave -> live handoff -> rejoin
// -> handback), a rolling renumber of every shard machine with a flash
// crowd landing on a renamed subtree, and a long-lived partition that
// heals mid-run. Client routes heal against the MembershipDirectory
// (incarnation checks + rename tombstones), so name-closed lookups keep
// completing; nothing heals a raw address, under any cache policy.
//
// The claim recorded in EXPERIMENTS.md: zero permanent resolution
// failures across every phase and policy; after the renumber pass the
// fully-qualified pids demonstrably break (survival < 1) while the
// partially-qualified and Algol-scoped closures stay at 1.0 — and the FQ
// row is identical across cache policies, because no coherence protocol
// rescues a location-dependent identifier.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "core/graph_ops.hpp"
#include "embed/embedded.hpp"
#include "ns/membership.hpp"
#include "ns/name_service.hpp"
#include "workload/parallel.hpp"
#include "workload/scenario.hpp"

namespace namecoh {
namespace {

/// Per-request service time charged by every server (ticks); matches
/// bench_x7/x8 so the phases queue realistically.
constexpr SimDuration kServiceTime = 50;
constexpr std::size_t kSubtrees = 8;
constexpr std::size_t kShards = 4;
constexpr SimDuration kTtl = 4000;

struct X9Scale {
  std::size_t fanout;
  std::size_t depth;
  std::size_t queries_per_tree;
  std::size_t flash_block;  ///< flash-crowd queries into the renamed subtree
  std::size_t activities;
  std::size_t phase_resolutions;  ///< load driven through each churn phase
  SimDuration restart_downtime;
  SimDuration restart_gap;
  SimDuration rename_interval;
  SimDuration partition_length;
  SimDuration request_timeout;
  MembershipOptions membership;
};

X9Scale scale_params() {
  X9Scale s;
  if (bench::scale_flag() == "full") {
    // Per subtree: 1 + 18 + 324 + 5,832 + 104,976 = 111,151 contexts —
    // the whole fabric carries ~890k contexts through the churn.
    s.fanout = 18;
    s.depth = 4;
    s.queries_per_tree = 256;
    s.flash_block = 256;
    s.activities = 2000;
    s.phase_resolutions = 20000;
    s.restart_downtime = 5000;
    s.restart_gap = 2000;
    s.rename_interval = 4000;
    s.partition_length = 30000;
    s.request_timeout = 25000;
    s.membership.handoff.copy_batch = 4096;
    s.membership.handoff.copy_interval = 5;
    s.membership.handoff.settle_delay = 200;
    s.membership.handoff.forward_window = 5000;
    s.membership.rename_window = 60000;
    return s;
  }
  NAMECOH_CHECK(bench::scale_flag() == "small",
                "unknown --scale (want small or full)");
  // CI shape: 1 + 6 + 36 + 216 = 259 contexts per subtree.
  s.fanout = 6;
  s.depth = 3;
  s.queries_per_tree = 32;
  s.flash_block = 32;
  s.activities = 64;
  s.phase_resolutions = 2000;
  s.restart_downtime = 3000;
  s.restart_gap = 1000;
  s.rename_interval = 2000;
  s.partition_length = 30000;
  s.request_timeout = 20000;
  s.membership.handoff.copy_batch = 64;
  s.membership.handoff.copy_interval = 5;
  s.membership.handoff.settle_delay = 50;
  s.membership.handoff.forward_window = 2000;
  s.membership.rename_window = 40000;
  return s;
}

/// The graph half, built once and shared read-only across every policy:
/// a root with kSubtrees delegable subtrees, each carrying a `lib/api`
/// marker at its root — the Algol scope anchor an embedded name closes
/// over (only the subtree root binds "lib", so the closest-ancestor walk
/// from any interior directory lands there).
struct X9Fabric {
  NamingGraph graph;
  EntityId root;
  std::vector<EntityId> subtree_roots;
  std::vector<EntityId> lib_objects;  ///< t_i's lib/api data object
  std::vector<EntityId> deep_dirs;    ///< a leaf-level dir per subtree
  std::size_t contexts = 0;

  explicit X9Fabric(const X9Scale& s) {
    root = graph.add_context_object("x9-root");
    contexts = 1;
    for (std::size_t i = 0; i < kSubtrees; ++i) {
      EntityId t = graph.add_context_object("t" + std::to_string(i));
      auto bound = Name::make("t" + std::to_string(i));
      NAMECOH_CHECK(bound.is_ok(), "bad subtree name");
      NAMECOH_CHECK(graph.bind(root, std::move(bound).value(), t).is_ok(),
                    "subtree bind failed");
      TreeBuildResult tree = build_context_tree(graph, t, s.fanout, s.depth);
      contexts += 1 + tree.contexts_created;
      subtree_roots.push_back(t);
      deep_dirs.push_back(tree.levels.back().front());
      // build_context_tree makes bare directories; the Algol scope walk
      // needs a ".." chain (R(file) walks up from the containing dir), so
      // thread one along the probe path down to deep_dirs[i].
      for (std::size_t level = 1; level < tree.levels.size(); ++level) {
        NAMECOH_CHECK(graph
                          .bind(tree.levels[level].front(), Name::parent(),
                                tree.levels[level - 1].front())
                          .is_ok(),
                      "parent link bind failed");
      }

      EntityId lib = graph.add_context_object("lib" + std::to_string(i));
      EntityId api = graph.add_data_object("");
      NAMECOH_CHECK(graph.bind(t, Name("lib"), lib).is_ok(), "lib bind");
      NAMECOH_CHECK(graph.bind(lib, Name("api"), api).is_ok(), "api bind");
      contexts += 1;
      lib_objects.push_back(api);
    }
  }
};

ResolverClientConfig config_for(CachePolicy policy, const X9Scale& s) {
  ResolverClientConfig cfg;
  cfg.cache_ttl = kTtl;
  cfg.shard_routing = true;
  cfg.epoch_invalidation = policy != CachePolicy::kTtlOnly;
  cfg.lease_coherence = policy == CachePolicy::kLeasePush;
  // Churn drops in-flight messages (a renamed machine's address re-resolves
  // at delivery); retries, not the first attempt, carry those lookups. The
  // timeout sits above the worst closed-loop queue wait and below the
  // partition length, so a cut request retries its way past the heal.
  cfg.retry.retries = 3;
  cfg.retry.request_timeout = s.request_timeout;
  cfg.retry.max_timeout = s.request_timeout * 4;
  return cfg;
}

/// Queries interleaved across subtrees (Zipf hits them fabric-wide) plus a
/// flash block into t0 — the subtree whose machine renames mid-phase.
std::vector<ParallelQuery> make_queries(const X9Fabric& fabric,
                                        const X9Scale& s,
                                        std::size_t* flash_first) {
  std::vector<ParallelQuery> queries;
  queries.reserve(kSubtrees * s.queries_per_tree + s.flash_block);
  auto path_for = [&](std::size_t salt) {
    std::string path;
    for (std::size_t d = 0; d < s.depth; ++d) {
      if (d > 0) path += '/';
      path += 'c';
      path += std::to_string((salt + d * 7) % s.fanout);
      salt /= s.fanout;
    }
    return path;
  };
  for (std::size_t r = 0; r < s.queries_per_tree; ++r) {
    for (std::size_t i = 0; i < kSubtrees; ++i) {
      queries.push_back(ParallelQuery{
          fabric.subtree_roots[i], CompoundName::relative(path_for(r))});
    }
  }
  *flash_first = queries.size();
  for (std::size_t r = 0; r < s.flash_block; ++r) {
    queries.push_back(ParallelQuery{
        fabric.subtree_roots[0], CompoundName::relative(path_for(r * 3 + 1))});
  }
  return queries;
}

struct Phase {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

/// One closed-loop load segment; churn scripts scheduled by the caller
/// interleave with it on the same simulator.
Phase run_phase(Cluster& cluster, const std::vector<ParallelQuery>& queries,
                const X9Scale& s, std::size_t flash_first, bool flash,
                std::uint64_t seed) {
  ParallelSpec spec;
  spec.activities = s.activities;
  spec.total_resolutions = s.phase_resolutions;
  spec.zipf_s = 0.9;
  spec.seed = seed;
  if (flash) {
    spec.flash_begin = 0;
    spec.flash_end = ~SimTime{0};
    spec.flash_fraction = 0.8;
    spec.flash_first = flash_first;
    spec.flash_count = queries.size() - flash_first;
  }
  ParallelOutcome out = run_parallel(cluster.sim(), cluster.client(), queries,
                                     spec);
  return Phase{out.completed, out.failed};
}

/// §6 closure-rule survival after the renumber pass.
struct Survival {
  FractionCounter fq;     ///< stored fully-qualified pids, via transport
  FractionCounter pq;     ///< names closed over their subtree root
  FractionCounter algol;  ///< embedded names closed over their R(file) scope
};

struct PolicyRun {
  Phase restart, renumber, partition, sweep;
  Survival survival;
  std::uint64_t routes_healed = 0;
  std::uint64_t dead_route_skips = 0;
  std::uint64_t handoffs_live = 0;
  std::uint64_t handoffs_forced = 0;
  std::uint64_t renames = 0;
  std::uint64_t forwarded = 0;
};

PolicyRun run_policy(const X9Fabric& fabric, const X9Scale& s,
                     CachePolicy policy) {
  auto cluster = ScenarioBuilder(fabric.graph)
                     .shards(kShards)
                     .service_time(kServiceTime)
                     .delegate_children_by_hash(fabric.root)
                     .delegate(fabric.root, 0)
                     .with_membership(s.membership)
                     .client_config(config_for(policy, s))
                     .client_label("x9")
                     .build();
  Simulator& sim = cluster->sim();
  MembershipDirectory& members = *cluster->membership();

  std::size_t flash_first = 0;
  const std::vector<ParallelQuery> queries =
      make_queries(fabric, s, &flash_first);

  // The stored references the survival table scores, captured pre-churn:
  // one fully-qualified pid per shard server (held by a probe process on
  // the client machine), and per subtree one fabric name plus one
  // Algol-scoped embedded name with their expected denotations.
  EndpointId probe =
      cluster->net().add_endpoint(cluster->client_machine(), "probe");
  struct FqRef {
    Pid pid;
    EndpointId target;
  };
  std::vector<FqRef> fq_refs;
  for (MachineId m : cluster->machines()) {
    auto server = cluster->service().server_on(m);
    NAMECOH_CHECK(server.is_ok(), "shard server missing");
    auto loc = cluster->net().location_of(server.value());
    NAMECOH_CHECK(loc.is_ok(), "shard server unlocated");
    fq_refs.push_back(FqRef{Pid::fully_qualified(loc.value()),
                            server.value()});
  }
  const CompoundName pq_name = CompoundName::relative("lib/api");
  EmbeddedNameResolver scopes(fabric.graph);

  PolicyRun run;

  // Phase 1 — rolling datacenter restart: every shard machine gracefully
  // leaves (live handoff), dwells down, rejoins (live handback), one at a
  // time, while the base load resolves. Zero lost lookups is the bar.
  RollingRestart restart(sim, members, cluster->machines(),
                         RollingRestartSpec{/*start=*/1000,
                                            s.restart_downtime,
                                            s.restart_gap});
  restart.start();
  run.restart = run_phase(*cluster, queries, s, flash_first, /*flash=*/false,
                          /*seed=*/11);
  sim.run_while([&] { return !restart.done(); });

  // Phase 2 — rolling renumber (§6): every shard machine renames, one per
  // interval, with the flash crowd concentrated on t0 — whose machine is
  // renamed out from under it mid-phase.
  RollingRenumber renumber(sim, members, cluster->machines(),
                           RollingRenumberSpec{sim.now() + 500,
                                               s.rename_interval,
                                               /*rounds=*/1});
  renumber.start();
  run.renumber = run_phase(*cluster, queries, s, flash_first, /*flash=*/true,
                           /*seed=*/13);
  sim.run_while([&] { return !renumber.done(); });

  // The survival table: the same references, scored after the fleet-wide
  // renumbering. Nothing re-captures — this is what *stored* closures are
  // still worth.
  for (const FqRef& ref : fq_refs) {
    auto got = cluster->transport().resolve_pid(probe, ref.pid);
    run.survival.fq.add(got.is_ok() && got.value() == ref.target);
  }
  for (std::size_t i = 0; i < kSubtrees; ++i) {
    auto pq = cluster->client().resolve(fabric.subtree_roots[i], pq_name);
    run.survival.pq.add(pq.is_ok() && pq.value() == fabric.lib_objects[i]);
    auto scope = scopes.find_scope(fabric.deep_dirs[i], pq_name);
    bool algol_ok = scope.is_ok();
    if (algol_ok) {
      auto resolved = cluster->client().resolve(scope.value(), pq_name);
      algol_ok = resolved.is_ok() && resolved.value() == fabric.lib_objects[i];
    }
    run.survival.algol.add(algol_ok);
  }

  // Phase 3 — long-lived partition: the client is cut off from one shard
  // machine for partition_length ticks mid-load; resolution through the
  // cut resumes on heal (retries outlast the window), nothing is torn
  // down, and no lookup is permanently lost.
  schedule_partition_window(*cluster->faults(), cluster->client_machine(),
                            cluster->machine(1), sim.now() + 1000,
                            sim.now() + 1000 + s.partition_length);
  run.partition = run_phase(*cluster, queries, s, flash_first,
                            /*flash=*/false, /*seed=*/17);

  // Final sweep: quiet fabric, every subtree probed once more.
  run.sweep = run_phase(*cluster, queries, s, flash_first, /*flash=*/false,
                        /*seed=*/19);

  const MetricsRegistry& metrics = cluster->metrics();
  run.routes_healed = metrics.counter_value("ns.member.routes_healed");
  run.dead_route_skips = metrics.counter_value("ns.member.dead_route_skips");
  run.handoffs_live = metrics.counter_value("ns.membership.handoffs_live");
  run.handoffs_forced = metrics.counter_value("ns.membership.handoffs_forced");
  run.renames = metrics.counter_value("ns.membership.renames");
  run.forwarded = metrics.counter_value("ns.server.forwarded");
  return run;
}

void run_experiment() {
  const X9Scale s = scale_params();
  bench::print_header(
      "X10 (extension): dynamic membership — renumbering survival by "
      "closure rule — " + bench::scale_flag() + " scale",
      "Shard machines restart, renumber and partition under a closed-loop\n"
      "load (docs/MEMBERSHIP.md). The same name set is then scored through\n"
      "three closure rules x three cache-coherence policies: raw addresses\n"
      "die with the renumbering; names closed over an enclosing scope\n"
      "survive it (the paper's §6 split, at fabric scale).");

  X9Fabric fabric(s);
  std::cout << "fabric: " << fabric.contexts << " contexts in " << kSubtrees
            << " subtrees on " << kShards << " shards, " << s.activities
            << " activities x " << s.phase_resolutions
            << " resolutions per phase\n\n";

  const CachePolicy policies[] = {CachePolicy::kTtlOnly,
                                  CachePolicy::kEpochPull,
                                  CachePolicy::kLeasePush};
  Table t({"policy", "FQ survival", "PQ survival", "Algol survival",
           "routes healed", "dead skips", "forwarded", "failed (all phases)"});
  std::vector<PolicyRun> runs;
  for (CachePolicy policy : policies) {
    PolicyRun run = run_policy(fabric, s, policy);
    const std::uint64_t failed = run.restart.failed + run.renumber.failed +
                                 run.partition.failed + run.sweep.failed;
    t.add_row({std::string(cache_policy_name(policy)),
               bench::frac(run.survival.fq.fraction()),
               bench::frac(run.survival.pq.fraction()),
               bench::frac(run.survival.algol.fraction()),
               std::to_string(run.routes_healed),
               std::to_string(run.dead_route_skips),
               std::to_string(run.forwarded), std::to_string(failed)});
    runs.push_back(run);
  }
  t.print(std::cout);

  // The acceptance bars. Every phase of every policy completes with zero
  // permanent resolution failures; the renumber pass demonstrably breaks
  // the fully-qualified closures while the scope-closed rules hold at 1.0;
  // and the FQ row is policy-independent — coherence protocols manage
  // *binding* staleness, not address staleness.
  for (const PolicyRun& run : runs) {
    NAMECOH_CHECK(run.restart.failed == 0,
                  "lookups lost during the rolling restart");
    NAMECOH_CHECK(run.renumber.failed == 0,
                  "lookups lost during the rolling renumber");
    NAMECOH_CHECK(run.partition.failed == 0,
                  "lookups lost across the partition window");
    NAMECOH_CHECK(run.sweep.failed == 0, "final sweep lost lookups");
    NAMECOH_CHECK(run.survival.fq.fraction() < 1.0,
                  "fully-qualified pids survived a fleet-wide renumbering");
    NAMECOH_CHECK(run.survival.pq.fraction() == 1.0,
                  "partially-qualified names broke under renumbering");
    NAMECOH_CHECK(run.survival.algol.fraction() == 1.0,
                  "Algol-scoped names broke under renumbering");
    NAMECOH_CHECK(run.renames >= kShards, "renumber pass did not run");
    NAMECOH_CHECK(run.handoffs_live > 0,
                  "rolling restart never handed a subtree off live");
    NAMECOH_CHECK(run.routes_healed > 0,
                  "no client route ever healed against the directory");
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    NAMECOH_CHECK(runs[i].survival.fq.fraction() ==
                      runs[0].survival.fq.fraction(),
                  "cache policy changed FQ survival — it must not");
  }
  std::cout << "(FQ survival " +
                   bench::frac(runs[0].survival.fq.fraction()) +
                   " under every cache policy; scope-closed names at 1.0 "
                   "with " +
                   std::to_string(runs[0].routes_healed +
                                  runs[1].routes_healed +
                                  runs[2].routes_healed) +
                   " routes healed in flight)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

/// Minimal membership world for the hot-path microbenches.
struct BenchWorld {
  NamingGraph graph;
  EntityId root;
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  AuthorityMap homes;
  NameService service{graph, net, transport, homes};
  MembershipDirectory members{graph, net, homes, service, sim};
  std::vector<MachineId> machines;

  BenchWorld() {
    root = graph.add_context_object("root");
    NetworkId lan = net.add_network("lan");
    for (std::size_t i = 0; i < 16; ++i) {
      MachineId m = net.add_machine(lan, "m" + std::to_string(i));
      machines.push_back(m);
      (void)homes.add_shard({m});
      NAMECOH_CHECK(
          members.announce(m, static_cast<ShardId>(i)).is_ok(), "announce");
    }
  }
};

void BM_IncarnationQuery(benchmark::State& state) {
  // The route-healing fast path: one directory lookup per send attempt.
  BenchWorld w;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.members.incarnation(w.machines[i++ % w.machines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncarnationQuery);

void BM_RenameTombstoneLookup(benchmark::State& state) {
  // Healing a machine-less route: scan the open rename tombstones for the
  // old address. 16 machines renamed once each = 16 live tombstones.
  BenchWorld w;
  std::vector<Location> old_addresses;
  for (MachineId m : w.machines) {
    auto server = w.service.server_on(m);
    auto loc = w.net.location_of(server.value());
    old_addresses.push_back(loc.value());
    NAMECOH_CHECK(w.members.rename(m).is_ok(), "rename");
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.members.renamed_machine_at(
        old_addresses[i++ % old_addresses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RenameTombstoneLookup);

void BM_RenameEvent(benchmark::State& state) {
  // One full renumbering event: renumber_machine + incarnation bump +
  // tombstone arm.
  BenchWorld w;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.members.rename(w.machines[i++ % w.machines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RenameEvent);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
