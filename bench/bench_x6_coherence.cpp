// Experiment X6 (extension): the cache-coherence spectrum — TTL vs
// epoch-pull vs lease-push, healthy and partitioned.
//
// The paper's §5 frames naming coherence as a spectrum of how much two
// parties' views may drift. The resolver cache adds a *temporal* axis to
// that spectrum: how long may a client keep acting on a binding the
// authority has since rebound? This experiment measures that window
// empirically for the three cache policies the client implements
// (docs/COHERENCE.md) and checks each observation against the analyzer's
// closed-form bound (coherence/staleness_bound):
//
//   * ttl-only: the stale entry serves until its TTL runs out;
//   * epoch-pull: the window closes at the next contact with the authority
//     (the revisit raises the epoch high-water mark, killing the entry);
//   * lease-push: the authority's kInvalidate callback closes the window in
//     one push transit — the Gray–Cheriton result.
//
// With the authority → client path partitioned, the push and the revisit
// answers are both lost: every policy degrades to the TTL bound, and the
// lease client records an explicit lease_degrade instead of trusting a
// promise nobody can keep. The claim recorded in EXPERIMENTS.md: the lease
// window is strictly smaller than both alternatives when healthy, at
// comparable wire overhead, and never worse than TTL-only when partitioned.
#include <cstdint>
#include <string>

#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "sim/faults.hpp"

namespace namecoh {
namespace {

// All ticks. The entry is primed at ~110 (one local referral + one LAN
// round trip), rebound at 1000, and probed every 25 ticks until 9000.
constexpr SimDuration kTtl = 4000;
constexpr SimDuration kLeaseTerm = 2000;
constexpr SimDuration kRevisitEvery = 1000;
constexpr SimDuration kPushOneWay = 50;  // same-network one-way latency
// Off the revisit grid: a rebind landing exactly on a revisit tick would
// close the epoch-pull window before a single stale probe could land.
constexpr SimTime kRebindAt = 1100;
constexpr SimTime kHealAt = 6000;
constexpr SimTime kEnd = 9000;
constexpr SimDuration kProbeEvery = 25;
// Observed windows lag the closed-form bound by at most one probe interval
// plus one full referral-chase round trip.
constexpr std::uint64_t kSlack = kProbeEvery + 110;

struct X6World {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  FaultInjector faults{sim};
  AuthorityMap homes;
  NameService service{graph, net, transport, homes};
  MachineId m1, m2;
  EntityId root, shared, proj, readme;

  X6World() {
    transport.attach_faults(&faults);
    NetworkId lan = net.add_network("lan");
    m1 = net.add_machine(lan, "m1");
    m2 = net.add_machine(lan, "m2");
    root = fs.make_root("m1-root");
    shared = fs.make_root("shared");
    NAMECOH_CHECK(fs.create_file_at(shared, "proj/readme", "v0").is_ok(), "");
    NAMECOH_CHECK(fs.attach(root, Name("shared"), shared).is_ok(), "");
    homes.set_home_subtree(graph, shared, m2);
    homes.set_home_subtree(graph, root, m1);
    service.add_server(m1);
    service.add_server(m2);
    service.set_lease_policy(kLeaseTerm);
    Context ctx = FileSystem::make_process_context(root, root);
    proj = fs.resolve_path(ctx, "/shared/proj").entity;
    readme = fs.resolve_path(ctx, "/shared/proj/readme").entity;
    NAMECOH_CHECK(proj.valid() && readme.valid(), "shared tree");
  }

  EntityId rebind_readme() {
    NAMECOH_CHECK(fs.unlink(proj, Name("readme")).is_ok(), "unlink");
    auto created = fs.create_file(proj, Name("readme"), "v1");
    NAMECOH_CHECK(created.is_ok(), "create");
    return created.value();
  }
};

ResolverClientConfig config_for(CachePolicy policy) {
  ResolverClientConfig cfg;
  cfg.cache_ttl = kTtl;
  cfg.retry.request_timeout = 300;
  cfg.retry.retries = 0;
  cfg.epoch_invalidation = policy != CachePolicy::kTtlOnly;
  cfg.lease_coherence = policy == CachePolicy::kLeasePush;
  return cfg;
}

struct RunOutcome {
  std::int64_t stale_last = -1;   // last stale serve, ticks after the rebind
  std::int64_t fresh_first = -1;  // first fresh serve, ticks after the rebind
  std::uint64_t failed_probes = 0;
  std::uint64_t messages = 0;
  std::uint64_t invalidates = 0;
  std::uint64_t degrades = 0;
};

/// One full scenario: prime the cache, rebind at kRebindAt (optionally
/// into a one-way authority → client partition healed at kHealAt), probe
/// every kProbeEvery ticks, and record when the stale binding was last —
/// and the rebound one first — served.
RunOutcome run_policy(CachePolicy policy, bool partitioned) {
  X6World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "x6", config_for(policy));
  const CompoundName target = CompoundName::relative("shared/proj/readme");
  auto primed = client.resolve(w.root, target);
  NAMECOH_CHECK(primed.is_ok(), "priming resolution failed");
  const EntityId old_entity = primed.value();

  w.sim.schedule_at(kRebindAt, [&] {
    if (partitioned) w.faults.partition_one_way(w.m2.value(), w.m1.value());
    (void)w.rebind_readme();
    w.service.publish_update(w.proj);
  });
  if (partitioned) {
    w.sim.schedule_at(kHealAt, [&] {
      w.faults.heal_one_way(w.m2.value(), w.m1.value());
    });
  }

  RunOutcome out;
  int revisit = 0;
  for (SimTime t = kProbeEvery; t <= kEnd; t += kProbeEvery) {
    if (w.sim.now() < t) w.sim.run_until(t);
    if (policy == CachePolicy::kEpochPull && t % kRevisitEvery == 0) {
      // The epoch-pull revisit: any contact with the authority refreshes
      // the high-water mark. A never-bound sibling keeps the contact from
      // being satisfied by the cache.
      (void)client.resolve(
          w.root, CompoundName::relative("shared/proj/absent" +
                                         std::to_string(revisit++)));
    }
    auto r = client.resolve(w.root, target);
    const SimTime served_at = w.sim.now();
    if (!r.is_ok()) {
      ++out.failed_probes;
      continue;
    }
    if (served_at < kRebindAt) continue;
    const auto offset = static_cast<std::int64_t>(served_at - kRebindAt);
    if (r.value() == old_entity) {
      out.stale_last = offset;
    } else if (out.fresh_first < 0) {
      out.fresh_first = offset;
    }
  }
  StatsSnapshot stats = client.snapshot();
  out.messages = stats["messages_sent"];
  out.invalidates = stats["invalidates_received"];
  out.degrades = stats["lease_degrades"];
  return out;
}

void run_experiment() {
  bench::print_header(
      "X6 (extension): cache-coherence spectrum — TTL vs epoch vs lease",
      "The lease's push invalidation closes the staleness window in one "
      "transit;\nepoch-pull closes it at the next authority contact; "
      "TTL-only rides out the\nfull TTL. Partitioned, every policy degrades "
      "to the TTL bound (§5 spectrum,\ndocs/COHERENCE.md).");

  const CachePolicy policies[] = {CachePolicy::kTtlOnly,
                                  CachePolicy::kEpochPull,
                                  CachePolicy::kLeasePush};
  Table t({"policy", "partition", "predicted bound", "stale window (last)",
           "fresh after", "client msgs", "failed probes"});
  RunOutcome healthy[3];
  RunOutcome parted[3];
  for (int mode = 0; mode < 2; ++mode) {
    const bool partitioned = mode == 1;
    for (int i = 0; i < 3; ++i) {
      const CachePolicy policy = policies[i];
      CacheCoherenceParams params;
      params.ttl = kTtl;
      params.revisit_interval = kRevisitEvery;
      params.push_latency = kPushOneWay;
      params.partitioned = partitioned;
      const std::uint64_t bound = staleness_bound(policy, params);
      RunOutcome out = run_policy(policy, partitioned);
      (partitioned ? parted : healthy)[i] = out;
      const std::string scenario = std::string(cache_policy_name(policy)) +
                                   (partitioned ? "/partitioned" : "/healthy");
      NAMECOH_CHECK(out.stale_last >= 0 && out.fresh_first >= 0,
                    scenario + ": never observed both sides of the rebind");
      NAMECOH_CHECK(static_cast<std::uint64_t>(out.stale_last) <=
                        bound + kSlack,
                    scenario + ": staleness exceeded the analyzer's bound");
      t.add_row({std::string(cache_policy_name(policy)),
                 partitioned ? "yes" : "no", std::to_string(bound),
                 std::to_string(out.stale_last),
                 std::to_string(out.fresh_first),
                 std::to_string(out.messages),
                 std::to_string(out.failed_probes)});
    }
  }
  t.print(std::cout);

  // The ordering claims behind the table. Healthy: strictly finer windows
  // left to right on the spectrum, at wire overhead within one refetch
  // budget of each other for ttl vs lease.
  NAMECOH_CHECK(healthy[2].stale_last < healthy[1].stale_last &&
                    healthy[1].stale_last < healthy[0].stale_last,
                "expected lease < epoch < ttl staleness when healthy");
  NAMECOH_CHECK(healthy[2].invalidates >= 1,
                "lease run saw no invalidate push");
  NAMECOH_CHECK(healthy[2].messages <= healthy[0].messages + 16,
                "lease wire overhead not comparable to ttl-only");
  // Partitioned: nobody beats — or busts — the TTL bound, and the lease
  // client degraded explicitly rather than hanging or serving past it.
  for (const RunOutcome& out : parted) {
    NAMECOH_CHECK(static_cast<std::uint64_t>(out.stale_last) <= kTtl,
                  "partitioned staleness exceeded the TTL bound");
  }
  NAMECOH_CHECK(parted[2].degrades >= 1,
                "partitioned lease run never degraded to TTL");
  NAMECOH_CHECK(parted[2].invalidates == 0,
                "partition failed to suppress the push");
  std::cout << "(healthy: the lease window is one push transit — two orders "
               "below TTL-only\n— for " +
                   std::to_string(healthy[2].messages) + " vs " +
                   std::to_string(healthy[0].messages) +
                   " client messages; partitioned: all three ride\nout the "
                   "TTL, the lease client counting an explicit degrade)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_CacheHitPlain(benchmark::State& state) {
  // Steady-state cache hit with leases off: the baseline the lease-mode
  // hit path is measured against.
  X6World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench", config_for(CachePolicy::kTtlOnly));
  const CompoundName target = CompoundName::relative("shared/proj/readme");
  (void)client.resolve(w.root, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(w.root, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHitPlain);

void BM_CacheHitLeased(benchmark::State& state) {
  // The same hit through the lease-mode path: one extra term check
  // (maybe_renew) per hit. The simulated clock never advances here, so the
  // term stays comfortable and no renewal traffic is generated.
  X6World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench", config_for(CachePolicy::kLeasePush));
  const CompoundName target = CompoundName::relative("shared/proj/readme");
  (void)client.resolve(w.root, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(w.root, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHitLeased);

void BM_InvalidateRoundTrip(benchmark::State& state) {
  // One full coherence cycle: rebind, push the callback, client refetches.
  X6World w;
  ResolverClient client(w.graph, w.net, w.transport, w.sim, w.service, w.m1,
                        "bench", config_for(CachePolicy::kLeasePush));
  const CompoundName target = CompoundName::relative("shared/proj/readme");
  (void)client.resolve(w.root, target);
  for (auto _ : state) {
    (void)w.rebind_readme();
    w.service.publish_update(w.proj);
    w.sim.run();
    benchmark::DoNotOptimize(client.resolve(w.root, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InvalidateRoundTrip);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
