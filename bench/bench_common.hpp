// Shared scaffolding for the experiment binaries.
//
// Every bench binary does two things, in order:
//   1. run its experiment and print the table(s) that regenerate one of the
//      paper's figures/claims (EXPERIMENTS.md records the expected shape);
//   2. run google-benchmark microbenchmarks of the underlying operations.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace namecoh::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

inline std::string frac(double value, int decimals = 3) {
  return format_fraction(value, decimals);
}

/// Standard main body: experiment first, then microbenchmarks.
#define NAMECOH_BENCH_MAIN(experiment_fn)                       \
  int main(int argc, char** argv) {                             \
    experiment_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                       \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                 \
    }                                                           \
    ::benchmark::RunSpecifiedBenchmarks();                      \
    ::benchmark::Shutdown();                                    \
    return 0;                                                   \
  }

}  // namespace namecoh::bench
