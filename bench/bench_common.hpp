// Shared scaffolding for the experiment binaries.
//
// Every bench binary does two things, in order:
//   1. run its experiment and print the table(s) that regenerate one of the
//      paper's figures/claims (EXPERIMENTS.md records the expected shape);
//   2. run google-benchmark microbenchmarks of the underlying operations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace namecoh::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

inline std::string frac(double value, int decimals = 3) {
  return format_fraction(value, decimals);
}

/// Worker-thread override shared by the bench binaries: `--threads N` (or
/// `--threads=N`) sets the par-policy worker count the binary should use;
/// 0 (the default) means "pick for the hardware". Parsed and stripped
/// before google-benchmark sees the argument list.
inline std::size_t& thread_flag() {
  static std::size_t threads = 0;
  return threads;
}

inline void consume_thread_flag(int& argc, char** argv) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      thread_flag() = static_cast<std::size_t>(std::stoul(argv[++i]));
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      thread_flag() =
          static_cast<std::size_t>(std::stoul(std::string(arg.substr(10))));
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
}

/// Experiment-size override: `--scale small|full` (or `--scale=X`).
/// "small" (the default) keeps the experiment runnable in seconds on a
/// 1-core CI container; "full" runs the headline configuration — for
/// bench_x7_shard, the ≥1M-context / ≥10M-binding fabric. Parsed and
/// stripped before google-benchmark sees the argument list.
inline std::string& scale_flag() {
  static std::string scale = "small";
  return scale;
}

inline void consume_scale_flag(int& argc, char** argv) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) {
      scale_flag() = argv[++i];
      continue;
    }
    if (arg.rfind("--scale=", 0) == 0) {
      scale_flag() = std::string(arg.substr(8));
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
}

/// Machine-readable mode: `--json` suppresses the experiment tables and
/// runs only the microbenchmarks with JSON output on stdout, so CI can
/// redirect straight into a BENCH_*.json artifact
/// (scripts/run_benchmarks.sh). Returns true if the flag was present, and
/// rewrites argv to request benchmark's JSON formatter.
inline bool consume_json_flag(int& argc, char** argv,
                              std::vector<char*>& patched) {
  static char format_flag[] = "--benchmark_format=json";
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    patched.push_back(argv[i]);
  }
  if (!json) return false;
  patched.push_back(format_flag);
  patched.push_back(nullptr);
  argc = static_cast<int>(patched.size()) - 1;
  return true;
}

/// Standard main body: experiment first, then microbenchmarks (unless
/// --json asked for machine-readable microbenchmarks only).
#define NAMECOH_BENCH_MAIN(experiment_fn)                            \
  int main(int argc, char** argv) {                                  \
    ::namecoh::bench::consume_thread_flag(argc, argv);               \
    ::namecoh::bench::consume_scale_flag(argc, argv);                \
    std::vector<char*> patched_args;                                 \
    const bool json_only =                                           \
        ::namecoh::bench::consume_json_flag(argc, argv, patched_args); \
    char** args = json_only ? patched_args.data() : argv;            \
    if (!json_only) experiment_fn();                                 \
    ::benchmark::Initialize(&argc, args);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, args)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    return 0;                                                        \
  }

}  // namespace namecoh::bench
