// Experiment U2 (§6 Example 1 mechanics): cost of the messaging substrate —
// pid remapping at boundaries, wire encode/decode, end-to-end delivery by
// locality. Prints a remap-overhead table (the R(sender) rule's price per
// message), then microbenchmarks.
#include "bench_common.hpp"
#include "net/transport.hpp"

namespace namecoh {
namespace {

struct NetWorld {
  Simulator sim;
  Internetwork net;
  MachineId m1, m2, m3;
  EndpointId a, b, c, d;

  NetWorld() {
    NetworkId n1 = net.add_network("n1");
    NetworkId n2 = net.add_network("n2");
    m1 = net.add_machine(n1, "m1");
    m2 = net.add_machine(n1, "m2");
    m3 = net.add_machine(n2, "m3");
    a = net.add_endpoint(m1, "a");
    b = net.add_endpoint(m1, "b");
    c = net.add_endpoint(m2, "c");
    d = net.add_endpoint(m3, "d");
  }

  Pid pid_for(EndpointId target, EndpointId holder) {
    return relativize(net.location_of(target).value(),
                      net.location_of(holder).value());
  }
};

Message make_message(const NetWorld& w, std::size_t pids) {
  Message msg;
  msg.type = 1;
  Location b_loc{1, 1, 2};
  for (std::size_t i = 0; i < pids; ++i) {
    msg.payload.add_pid(Pid{0, 0, static_cast<Addr>(1 + i % 3)});
  }
  (void)w;
  (void)b_loc;
  msg.payload.add_string("request body ............................");
  return msg;
}

void run_experiment() {
  bench::print_header(
      "U2: messaging-layer mechanics (§6 Example 1 implementation)",
      "The R(sender) remap costs a rebase per embedded pid per delivery; "
      "the table shows\ndelivered-message counts and remap work for the "
      "same workload with the remap on/off.");

  Table t({"remap_embedded_pids", "messages", "pids remapped",
           "bytes sent", "sim ticks elapsed"});
  for (bool remap : {true, false}) {
    NetWorld w;
    TransportConfig config;
    config.remap_embedded_pids = remap;
    Transport tp(w.sim, w.net, config);
    int delivered = 0;
    for (EndpointId ep : {w.a, w.b, w.c, w.d}) {
      tp.set_handler(ep, [&](EndpointId, const Message&) { ++delivered; });
    }
    const int kMessages = 1000;
    for (int i = 0; i < kMessages; ++i) {
      EndpointId from = (i % 2 == 0) ? w.a : w.c;
      EndpointId to = (i % 3 == 0) ? w.d : (i % 3 == 1) ? w.c : w.b;
      Message msg = make_message(w, 4);
      NAMECOH_CHECK(tp.send(from, w.pid_for(to, from), std::move(msg)).is_ok(),
                    "send");
    }
    w.sim.run();
    t.add_row({remap ? "on (R(sender))" : "off (verbatim)",
               std::to_string(delivered),
               std::to_string(tp.snapshot()["pids_remapped"]),
               std::to_string(tp.snapshot()["bytes_sent"]),
               std::to_string(w.sim.now())});
  }
  t.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_PayloadEncode(benchmark::State& state) {
  NetWorld w;
  Message msg = make_message(w, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.payload.encode());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadEncode)->Arg(0)->Arg(4)->Arg(32);

void BM_PayloadDecode(benchmark::State& state) {
  NetWorld w;
  auto bytes = make_message(w, static_cast<std::size_t>(state.range(0)))
                   .payload.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Payload::decode(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadDecode)->Arg(0)->Arg(4)->Arg(32);

void BM_EndToEndDelivery(benchmark::State& state) {
  // One full send+deliver cycle per iteration, by locality.
  NetWorld w;
  Transport tp(w.sim, w.net);
  EndpointId to = state.range(0) == 0 ? w.b : state.range(0) == 1 ? w.c : w.d;
  for (auto _ : state) {
    Message msg = make_message(w, 2);
    NAMECOH_CHECK(tp.send(w.a, w.pid_for(to, w.a), std::move(msg)).is_ok(),
                  "send");
    w.sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(state.range(0) == 0   ? "intra-machine"
                 : state.range(0) == 1 ? "intra-network"
                                       : "inter-network");
}
BENCHMARK(BM_EndToEndDelivery)->Arg(0)->Arg(1)->Arg(2);

void BM_RemapPerPid(benchmark::State& state) {
  Location sender{1, 1, 1}, receiver{2, 5, 3};
  Pid pid{0, 0, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rebase(pid, sender, receiver));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemapPerPid);

void BM_EventSchedulingThroughput(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.schedule_in(1, [] {});
    sim.run(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventSchedulingThroughput);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
