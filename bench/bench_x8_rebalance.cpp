// Experiment X9 (extension): online rebalancing — migrating a hot subtree
// between authority shards while a closed-loop flash crowd hammers it.
// (The binary keeps the bench_x8_* sequence number; EXPERIMENTS.md's X8 is
// the sharded fabric measured by bench_x7_shard.)
//
// PR 8's fabric made placement static: whatever shard a subtree's first
// delegation chose, it kept, and a load shift just melted one machine. This
// experiment closes the loop (docs/REBALANCING.md): eight delegated
// subtrees on four shards, a flash crowd concentrating 80% of the lookups
// on one subtree, the RebalancePlanner reading the per-machine FIFO wait
// signals to pick the dominating shard and its hottest subtree, and the
// MigrationDriver bulk-migrating that subtree — snapshot copy, catch-up,
// atomic cutover, bounded forwarding window — with the workload never
// pausing.
//
// The claim recorded in EXPERIMENTS.md: at --scale full the driver moves a
// >= 100k-context subtree under ~2000-activity Zipf + flash-crowd load with
// zero failed lookups, and post-cutover throughput lands within 10% of a
// statically well-placed run (same placement installed before any traffic)
// — migration costs a transient, not a steady state.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/graph_ops.hpp"
#include "ns/name_service.hpp"
#include "ns/rebalance.hpp"
#include "ns/shard_ring.hpp"
#include "workload/parallel.hpp"
#include "workload/scenario.hpp"

namespace namecoh {
namespace {

/// Per-request service time charged by every server (ticks); same as
/// bench_x7_shard, so a shard that takes the flash crowd alone queues hard.
constexpr SimDuration kServiceTime = 50;
constexpr std::size_t kSubtrees = 8;
constexpr std::size_t kShards = 4;

struct X8Scale {
  std::size_t fanout;
  std::size_t depth;             ///< context levels under each subtree root
  std::size_t queries_per_tree;  ///< base queries generated per subtree
  std::size_t flash_block;       ///< dedicated flash-crowd queries into t0
  std::size_t activities;
  std::size_t seg1_resolutions;  ///< flash + migration segment
  std::size_t seg2_resolutions;  ///< post-cutover measurement segment
  SimDuration planner_poll;      ///< planner consult cadence
  MigrationOptions migration;
};

X8Scale scale_params() {
  X8Scale s;
  if (bench::scale_flag() == "full") {
    // Per subtree: 1 + 18 + 324 + 5,832 + 104,976 = 111,151 contexts —
    // the >= 100k-context subtree the acceptance bar asks to move.
    s.fanout = 18;
    s.depth = 4;
    s.queries_per_tree = 256;
    s.flash_block = 256;
    s.activities = 2000;
    s.seg1_resolutions = 20000;
    s.seg2_resolutions = 10000;
    s.planner_poll = 2000;
    s.migration.copy_batch = 4096;
    s.migration.copy_interval = 5;
    s.migration.settle_delay = 200;
    s.migration.forward_window = 50000;
    return s;
  }
  NAMECOH_CHECK(bench::scale_flag() == "small",
                "unknown --scale (want small or full)");
  // CI shape: 1 + 6 + 36 + 216 = 259 contexts per subtree.
  s.fanout = 6;
  s.depth = 3;
  s.queries_per_tree = 32;
  s.flash_block = 32;
  s.activities = 64;
  s.seg1_resolutions = 2000;
  s.seg2_resolutions = 1000;
  s.planner_poll = 1000;
  s.migration.copy_batch = 64;
  s.migration.copy_interval = 5;
  s.migration.settle_delay = 100;
  s.migration.forward_window = 20000;
  return s;
}

/// The graph half, built once and shared read-only: a root with kSubtrees
/// delegable subtrees t0..t7.
struct X8Fabric {
  NamingGraph graph;
  EntityId root;
  std::vector<EntityId> subtree_roots;
  std::size_t contexts = 0;

  explicit X8Fabric(const X8Scale& s) {
    root = graph.add_context_object("x8-root");
    contexts = 1;
    for (std::size_t i = 0; i < kSubtrees; ++i) {
      EntityId t = graph.add_context_object("t" + std::to_string(i));
      auto name = Name::make("t" + std::to_string(i));
      NAMECOH_CHECK(name.is_ok(), "bad subtree name");
      NAMECOH_CHECK(graph.bind(root, std::move(name).value(), t).is_ok(),
                    "subtree bind failed");
      TreeBuildResult tree = build_context_tree(graph, t, s.fanout, s.depth);
      contexts += 1 + tree.contexts_created;
      subtree_roots.push_back(t);
    }
  }
};

/// Queries, hottest-first for the Zipf pick, interleaved across subtrees so
/// the base load spreads over the whole fabric; a dedicated flash block of
/// t0-only queries sits at the end (cold under Zipf, targeted by the flash
/// crowd). Every query starts at its subtree root — an activity working
/// inside its own region, the shape that keeps lookups intra-shard until a
/// migration moves the region out from under it.
std::vector<ParallelQuery> make_queries(const X8Fabric& fabric,
                                        const X8Scale& s,
                                        std::size_t* flash_first) {
  std::vector<ParallelQuery> queries;
  queries.reserve(kSubtrees * s.queries_per_tree + s.flash_block);
  auto path_for = [&](std::size_t salt) {
    std::string path;
    for (std::size_t d = 0; d < s.depth; ++d) {
      if (d > 0) path += '/';
      path += 'c';
      path += std::to_string((salt + d * 7) % s.fanout);
      salt /= s.fanout;
    }
    return path;
  };
  for (std::size_t r = 0; r < s.queries_per_tree; ++r) {
    for (std::size_t i = 0; i < kSubtrees; ++i) {
      queries.push_back(ParallelQuery{
          fabric.subtree_roots[i], CompoundName::relative(path_for(r))});
    }
  }
  *flash_first = queries.size();
  for (std::size_t r = 0; r < s.flash_block; ++r) {
    queries.push_back(ParallelQuery{fabric.subtree_roots[0],
                                    CompoundName::relative(path_for(r * 3 + 1))});
  }
  return queries;
}

struct Segment {
  double throughput = 0.0;  ///< resolutions per 1k ticks
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t failed = 0;
};

struct X8Run {
  Segment seg1;  ///< flash + migration (live run only)
  Segment seg2;  ///< steady state after cutover (or from the start)
  MigrationReport report;
  RebalancePlan plan;
  std::uint64_t forwarded = 0;
  ShardId static_target = AuthorityMap::kNoShard;  ///< input for baseline
};

Segment run_segment(Simulator& sim, ResolverClient& client,
                    const std::vector<ParallelQuery>& queries,
                    const X8Scale& s, std::size_t flash_first,
                    std::size_t resolutions, std::uint64_t seed) {
  Histogram latency({50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600,
                     51200, 102400, 204800, 409600, 819200, 1638400});
  ParallelSpec spec;
  spec.activities = s.activities;
  spec.total_resolutions = resolutions;
  spec.zipf_s = 0.9;
  spec.seed = seed;
  spec.latency = &latency;
  // The flash crowd never lets up: 80% of issues target the t0 block for
  // the whole segment. What changes between segments is *where* t0 lives.
  spec.flash_begin = 0;
  spec.flash_end = ~SimTime{0};
  spec.flash_fraction = 0.8;
  spec.flash_first = flash_first;
  spec.flash_count = queries.size() - flash_first;
  ParallelOutcome out = run_parallel(sim, client, queries, spec);
  Segment seg;
  seg.throughput = out.elapsed() > 0
                       ? 1000.0 * static_cast<double>(out.completed) /
                             static_cast<double>(out.elapsed())
                       : 0.0;
  seg.p50 = latency.quantile(0.5);
  seg.p99 = latency.quantile(0.99);
  seg.failed = out.failed;
  return seg;
}

/// One full stack over the shared fabric. With `static_target` unset this
/// is the live run: flash segment, periodic planner consults, driver
/// migration, then the post-cutover segment. With it set, t0 is placed on
/// that shard before any traffic and only the measurement segment runs —
/// the statically well-placed run the live one is judged against.
X8Run run_fabric(const X8Fabric& fabric, const X8Scale& s,
                 ShardId static_target) {
  const bool live = static_target == AuthorityMap::kNoShard;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;
  cfg.shard_routing = true;
  cfg.retry.retries = 0;
  cfg.retry.request_timeout =
      static_cast<SimDuration>(s.activities) * kServiceTime * 4 + 100000;
  cfg.retry.max_timeout = cfg.retry.request_timeout;

  // Two subtrees per shard — except the baseline, which pre-places t0
  // where the live run's migration put it.
  ScenarioBuilder builder(fabric.graph);
  builder.shards(kShards)
      .service_time(kServiceTime)
      .track_loads(fabric.subtree_roots)
      .client_config(cfg)
      .client_label("x8");
  for (std::size_t i = 0; i < kSubtrees; ++i) {
    ShardId shard = static_cast<ShardId>(i / 2);
    if (!live && i == 0) shard = static_target;
    builder.delegate(fabric.subtree_roots[i], shard);
  }
  builder.delegate(fabric.root, 0);
  auto cluster = builder.build();
  Simulator& sim = cluster->sim();
  Transport& transport = cluster->transport();
  AuthorityMap& homes = cluster->homes();
  NameService& service = cluster->service();
  ResolverClient& client = cluster->client();

  std::size_t flash_first = 0;
  const std::vector<ParallelQuery> queries =
      make_queries(fabric, s, &flash_first);

  X8Run run;
  MigrationDriver driver(fabric.graph, homes, service, sim);
  std::function<void()> consult = [&] {
    if (driver.phase() != MigrationPhase::kIdle) return;
    RebalancePlanner planner(homes, transport.metrics());
    RebalancePlan plan = planner.propose(fabric.subtree_roots);
    if (!plan.rebalance) {
      sim.schedule_in(s.planner_poll, [&] { consult(); });
      return;
    }
    run.plan = plan;
    NAMECOH_CHECK(driver.start(plan.subtree, plan.to, s.migration).is_ok(),
                  "migration start refused");
  };
  if (live) {
    // Poll the planner on the live load signals and act the moment a
    // proposal appears — nothing in this bench hard-codes "move t0 to
    // s_k" or when to do it; the FIFO wait signals decide both.
    sim.schedule_in(s.planner_poll, [&] { consult(); });
    run.seg1 = run_segment(sim, client, queries, s, flash_first,
                           s.seg1_resolutions, /*seed=*/11);
    run.report = driver.run_to_completion();
    NAMECOH_CHECK(run.report.phase == MigrationPhase::kDone,
                  "migration did not complete: phase=" +
                      std::string(migration_phase_name(run.report.phase)) +
                      " error=" + run.report.error);
    run.static_target = run.report.to;
  }
  run.seg2 = run_segment(sim, client, queries, s, flash_first,
                         s.seg2_resolutions, /*seed=*/13);
  run.forwarded = transport.metrics().counter_value("ns.server.forwarded");
  return run;
}

void run_experiment() {
  const X8Scale s = scale_params();
  const bool full = bench::scale_flag() == "full";
  bench::print_header(
      "X9 (extension): online rebalancing under a flash crowd — " +
          bench::scale_flag() + " scale",
      "Eight delegated subtrees on four shards; a flash crowd sends 80% of\n"
      "lookups into one subtree. The planner reads the FIFO wait signals,\n"
      "picks the dominating shard's hottest subtree, and the driver\n"
      "migrates it live: copy, catch-up, cutover, forwarding window\n"
      "(docs/REBALANCING.md). Traffic never pauses.");

  X8Fabric fabric(s);
  std::cout << "fabric: " << fabric.contexts << " contexts in " << kSubtrees
            << " subtrees on " << kShards << " shards, " << s.activities
            << " activities, flash 80% -> t0, planner polled every "
            << s.planner_poll << " ticks\n\n";

  X8Run live = run_fabric(fabric, s, AuthorityMap::kNoShard);
  std::cout << "plan: " << live.plan.reason << "\n";
  std::cout << "migration: " << live.report.contexts << " contexts copied ("
            << live.report.snapshots_pushed << " snapshots, "
            << live.report.catchup_rounds << " catch-up rounds), cutover at "
            << "tick " << live.report.cutover_at << ", "
            << live.forwarded << " stale lookups forwarded\n\n";

  X8Run baseline = run_fabric(fabric, s, live.static_target);

  Table t({"segment", "throughput (res/ktick)", "p50 settle", "p99 settle",
           "failed"});
  t.add_row({"flash + live migration", bench::frac(live.seg1.throughput, 2),
             bench::frac(live.seg1.p50, 0), bench::frac(live.seg1.p99, 0),
             std::to_string(live.seg1.failed)});
  t.add_row({"post-cutover", bench::frac(live.seg2.throughput, 2),
             bench::frac(live.seg2.p50, 0), bench::frac(live.seg2.p99, 0),
             std::to_string(live.seg2.failed)});
  t.add_row({"statically well-placed", bench::frac(baseline.seg2.throughput, 2),
             bench::frac(baseline.seg2.p50, 0),
             bench::frac(baseline.seg2.p99, 0),
             std::to_string(baseline.seg2.failed)});
  t.print(std::cout);

  // The acceptance bar. Zero failed lookups across every segment — the
  // migration was invisible to correctness; at full scale the moved
  // subtree clears 100k contexts; and steady state after the cutover is
  // within 10% of never having been misplaced at all.
  NAMECOH_CHECK(live.seg1.failed == 0 && live.seg2.failed == 0 &&
                    baseline.seg2.failed == 0,
                "lookups failed during rebalancing");
  NAMECOH_CHECK(live.plan.from == 0 && live.plan.subtree.value() ==
                                           fabric.subtree_roots[0].value(),
                "planner did not pick the flash-crowded subtree");
  if (full) {
    NAMECOH_CHECK(live.report.moved >= 100000,
                  "full scale must migrate a >= 100k-context subtree");
  }
  NAMECOH_CHECK(live.seg2.throughput >= 0.9 * baseline.seg2.throughput,
                "post-cutover throughput more than 10% below the "
                "statically well-placed run");
  NAMECOH_CHECK(live.seg2.p99 <= 2.0 * std::max(baseline.seg2.p99, 1.0),
                "post-cutover p99 did not settle near the well-placed run");
  std::cout << "(post-cutover throughput at " +
                   bench::frac(100.0 * live.seg2.throughput /
                                   baseline.seg2.throughput,
                               1) +
                   "% of the statically well-placed run; " +
                   std::to_string(live.report.moved) +
                   " contexts changed shards mid-traffic)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_MigrateSubtree(benchmark::State& state) {
  // The cutover write alone: reassigning a 585-context subtree's dense
  // shard slots, ping-ponged so every iteration does the same work.
  NamingGraph graph;
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 8, 3);
  Internetwork net;
  NetworkId lan = net.add_network("lan");
  MachineId m1 = net.add_machine(lan, "m1");
  MachineId m2 = net.add_machine(lan, "m2");
  AuthorityMap homes;
  (void)homes.add_shard({m1});
  (void)homes.add_shard({m2});
  EntityId sub = tree.levels[1][0];
  NAMECOH_CHECK(homes.install_delegation(graph, sub, 1).is_ok(),
                "bench delegation failed");
  NAMECOH_CHECK(homes.install_delegation(graph, root, 0).is_ok(),
                "bench root delegation failed");
  ShardId to = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(homes.migrate_subtree(graph, sub, to));
    to = 1 - to;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MigrateSubtree);

void BM_PlannerPropose(benchmark::State& state) {
  // One planner consult: read 4 shards' load counters, rank 8 candidates.
  NamingGraph graph;
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 8, 1);
  Internetwork net;
  NetworkId lan = net.add_network("lan");
  AuthorityMap homes;
  MetricsRegistry metrics;
  for (std::size_t i = 0; i < 4; ++i) {
    MachineId m = net.add_machine(lan, "m" + std::to_string(i));
    (void)homes.add_shard({m});
    const std::string prefix = "ns.server.m" + std::to_string(m.value());
    metrics.counter(prefix + ".served").inc(100);
    metrics.counter(prefix + ".wait_ticks").inc(i == 0 ? 50000 : 100);
  }
  NAMECOH_CHECK(homes.install_delegation(graph, root, 0).is_ok(),
                "bench delegation failed");
  for (std::size_t i = 0; i < tree.levels[1].size(); ++i) {
    metrics
        .counter("ns.server.subtree." +
                 std::to_string(tree.levels[1][i].value()) + ".hits")
        .inc(10 + i);
  }
  RebalancePlanner planner(homes, metrics);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.propose(tree.levels[1]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PlannerPropose);

void BM_PlanRingChange(benchmark::State& state) {
  // Diffing 64 children's ownership against a grown ring.
  NamingGraph graph;
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 64, 1);
  Internetwork net;
  NetworkId lan = net.add_network("lan");
  AuthorityMap homes;
  ShardRing ring;
  for (std::size_t i = 0; i < 4; ++i) {
    MachineId m = net.add_machine(lan, "m" + std::to_string(i));
    (void)homes.add_shard({m});
    ring.add_shard(static_cast<ShardId>(i));
  }
  NAMECOH_CHECK(homes.delegate_children_by_hash(graph, root, ring).is_ok(),
                "bench hash delegation failed");
  MachineId extra = net.add_machine(lan, "m4");
  (void)homes.add_shard({extra});
  ring.add_shard(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_ring_change(graph, homes, root, ring));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * tree.levels[1].size()));
}
BENCHMARK(BM_PlanRingChange);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
