// Experiment F6 (Fig. 6 + §6 Example 2, embedded names with Algol scope).
//
// Claims reproduced, per operation on a structured-document subtree:
//   * R(file) (Algol scope): meaning invariant under attach-elsewhere,
//     relocation and combination; copies resolve fully within themselves;
//   * R(activity): meaning survives only while the reader's context matches
//     the layout the names were written against — relocation and
//     multi-site reading break it.
#include "bench_common.hpp"
#include "embed/embedded.hpp"
#include "workload/doc_gen.hpp"

namespace namecoh {
namespace {

struct DocWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  DocumentAssembler assembler{graph};
  EntityId site1, site2;
  Document doc;

  DocWorld() {
    site1 = fs.make_root("site1");
    site2 = fs.make_root("site2");
    DocSpec spec;
    spec.chapters = 4;
    spec.sections_per_chapter = 4;
    spec.shared_refs_per_section = 2;
    doc = make_document(fs, site1, Name("book"), spec);
  }

  DocumentMeaning assemble_algol(EntityId root_file, EntityId dir) {
    AssembleOptions options;
    options.rule = EmbedRule::kAlgolScope;
    return assembler.assemble(root_file, dir, options);
  }

  DocumentMeaning assemble_activity(EntityId root_file,
                                    const Context& reader) {
    AssembleOptions options;
    options.rule = EmbedRule::kActivityContext;
    options.reader_context = &reader;
    return assembler.assemble(root_file, doc.subtree, options);
  }
};

void run_experiment() {
  bench::print_header(
      "F6: embedded names, R(file) Algol scope vs R(activity) (Fig. 6)",
      "The subtree can be attached elsewhere, relocated, and combined "
      "without changing\nthe meaning of embedded names — only under "
      "R(file).");

  Table t({"operation", "rule", "fully resolved", "meaning preserved"});

  {  // Baseline + attach at a second site simultaneously.
    DocWorld w;
    DocumentMeaning base = w.assemble_algol(w.doc.root_file, w.doc.subtree);
    NAMECOH_CHECK(
        w.fs.attach(w.site2, Name("imported"), w.doc.subtree).is_ok(), "");
    Context via2 = FileSystem::make_process_context(w.site2, w.site2);
    Resolution opened = w.fs.resolve_path(via2, "/imported/book.tex");
    DocumentMeaning from2 =
        w.assemble_algol(opened.entity, opened.trail.back());
    t.add_row({"attach at 2nd site", "R(file)",
               bench::frac(from2.fully_resolved() ? 1 : 0),
               bench::frac(from2.same_meaning(base) ? 1 : 0)});

    Context reader2 = FileSystem::make_process_context(w.site2, w.site2);
    DocumentMeaning act2 = w.assemble_activity(w.doc.root_file, reader2);
    t.add_row({"attach at 2nd site", "R(activity)",
               bench::frac(act2.fully_resolved() ? 1 : 0),
               bench::frac(act2.same_meaning(base) ? 1 : 0)});
  }

  {  // Relocation.
    DocWorld w;
    Context reader_at_site1 =
        FileSystem::make_process_context(w.site1, w.doc.subtree);
    DocumentMeaning base_algol =
        w.assemble_algol(w.doc.root_file, w.doc.subtree);
    DocumentMeaning base_act =
        w.assemble_activity(w.doc.root_file, reader_at_site1);
    auto archive = w.fs.mkdir(w.site1, Name("archive"));
    NAMECOH_CHECK(archive.is_ok(), "");
    NAMECOH_CHECK(w.fs.move_entry(w.site1, Name("book"), archive.value(),
                                  Name("book")).is_ok(), "");
    DocumentMeaning moved_algol =
        w.assemble_algol(w.doc.root_file, w.doc.subtree);
    t.add_row({"relocate subtree", "R(file)",
               bench::frac(moved_algol.fully_resolved() ? 1 : 0),
               bench::frac(moved_algol.same_meaning(base_algol) ? 1 : 0)});
    // A fresh reader at the old location (the paths the names were written
    // against) no longer finds the parts.
    Context stale_reader = FileSystem::make_process_context(w.site1, w.site1);
    DocumentMeaning moved_act =
        w.assemble_activity(w.doc.root_file, stale_reader);
    t.add_row({"relocate subtree", "R(activity)",
               bench::frac(moved_act.fully_resolved() ? 1 : 0),
               bench::frac(moved_act.same_meaning(base_act) ? 1 : 0)});
  }

  {  // Copy.
    DocWorld w;
    auto copy = w.fs.copy_subtree(w.doc.subtree, w.site2, Name("book"));
    NAMECOH_CHECK(copy.is_ok(), "");
    Context via2 = FileSystem::make_process_context(w.site2, w.site2);
    Resolution opened = w.fs.resolve_path(via2, "/book/book.tex");
    DocumentMeaning copied =
        w.assemble_algol(opened.entity, opened.trail.back());
    // "Preserved" for a copy means: fully resolved, same shape, and
    // entirely inside the copy (no reference leaks to the original).
    DocumentMeaning base = w.assemble_algol(w.doc.root_file, w.doc.subtree);
    bool self_contained = copied.fully_resolved() &&
                          copied.refs.size() == base.refs.size();
    for (const ResolvedRef& ref : copied.refs) {
      for (const ResolvedRef& orig : base.refs) {
        if (ref.target == orig.target) self_contained = false;
      }
    }
    t.add_row({"copy subtree", "R(file)",
               bench::frac(copied.fully_resolved() ? 1 : 0),
               bench::frac(self_contained ? 1 : 0)});
  }

  {  // Combine two documents with identical internal names.
    DocWorld w;
    DocSpec spec;
    Document other = make_document(w.fs, w.site1, Name("book2"), spec);
    DocumentMeaning m1 = w.assemble_algol(w.doc.root_file, w.doc.subtree);
    DocumentMeaning m2 = w.assemble_algol(other.root_file, other.subtree);
    bool no_conflicts = m1.fully_resolved() && m2.fully_resolved();
    for (const ResolvedRef& a : m1.refs) {
      for (const ResolvedRef& b : m2.refs) {
        if (a.target == b.target) no_conflicts = false;
      }
    }
    t.add_row({"combine two subtrees", "R(file)",
               bench::frac((m1.fully_resolved() && m2.fully_resolved()) ? 1
                                                                        : 0),
               bench::frac(no_conflicts ? 1 : 0)});
  }

  t.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_AlgolScopeSearch(benchmark::State& state) {
  // Cost of the upward scope search at depth `range(0)`.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  NAMECOH_CHECK(fs.create_file_at(root, "target", "x").is_ok(), "");
  std::string path;
  for (int i = 0; i < state.range(0); ++i) {
    path += (i ? "/d" : "d") + std::to_string(i);
  }
  EntityId deep = state.range(0) == 0
                      ? root
                      : fs.mkdir_p(root, path).value();
  EmbeddedNameResolver resolver(graph);
  CompoundName name = CompoundName::relative("target");
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve_algol(deep, name));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AlgolScopeSearch)->Arg(0)->Arg(2)->Arg(8)->Arg(32);

void BM_DocumentAssembly(benchmark::State& state) {
  DocWorld w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.assemble_algol(w.doc.root_file, w.doc.subtree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.doc.refs));
}
BENCHMARK(BM_DocumentAssembly);

void BM_SubtreeCopy(benchmark::State& state) {
  DocWorld w;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.fs.copy_subtree(
        w.doc.subtree, w.site2, Name("copy" + std::to_string(i++))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubtreeCopy);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
