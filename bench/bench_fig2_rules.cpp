// Experiment F2 (Fig. 2 + §4 "Coherence and Resolution Rules").
//
// Claim reproduced: for names exchanged between activities, R(receiver) is
// coherent only for global names while R(sender) is coherent for ALL
// exchanged names; for names obtained from objects, R(activity) is coherent
// only for global names while R(object) is coherent for ALL embedded names.
//
// Setup: two machines, each with its own naming tree (mixed common/unique
// names) plus one genuinely shared subtree attached under the same name on
// both (the "global names" subset). A sender process on m1 sends every name
// it can see to a receiver on m2; separately, files on m1 carry embedded
// names read by an activity on m2. Coherence between the meaning intended
// (sender's / object's) and the meaning obtained (receiver's) is measured
// per rule.
#include "bench_common.hpp"
#include "coherence/coherence.hpp"
#include "os/process_manager.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

struct Fig2World {
  NamingGraph graph;
  FileSystem fs{graph};
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  ProcessManager pm{graph, fs, net, transport};
  ProcessId sender, receiver;
  EntityId r1, r2, shared;
  std::vector<CompoundName> probes;  // names the sender exchanges

  Fig2World() {
    NetworkId n = net.add_network("lan");
    MachineId m1 = net.add_machine(n, "m1");
    MachineId m2 = net.add_machine(n, "m2");
    r1 = fs.make_root("m1");
    r2 = fs.make_root("m2");
    shared = fs.make_root("shared");
    TreeSpec spec;
    spec.depth = 2;
    spec.dirs_per_dir = 3;
    spec.files_per_dir = 4;
    spec.common_fraction = 0.5;
    spec.site_tag = "s1";
    populate_tree(fs, r1, spec, 2024);
    spec.site_tag = "s2";
    populate_tree(fs, r2, spec, 2024);
    TreeSpec shared_spec;
    shared_spec.depth = 1;
    shared_spec.dirs_per_dir = 2;
    shared_spec.files_per_dir = 3;
    shared_spec.common_fraction = 1.0;
    populate_tree(fs, shared, shared_spec, 7);
    NAMECOH_CHECK(fs.attach(r1, Name("shared"), shared).is_ok(), "attach");
    NAMECOH_CHECK(fs.attach(r2, Name("shared"), shared).is_ok(), "attach");
    sender = pm.spawn(m1, "sender", r1, r1);
    receiver = pm.spawn(m2, "receiver", r2, r2);
    probes = absolutize(probes_from_dir(graph, r1));
  }
};

void run_experiment() {
  bench::print_header(
      "F2: coherence vs resolution rule (Fig. 2)",
      "Exchanged names: R(receiver) coherent only for global names; "
      "R(sender) coherent for all.\n"
      "Embedded names:  R(activity) coherent only for global names; "
      "R(object) coherent for all.");

  Fig2World w;

  // --- Part 1: names exchanged in messages --------------------------------
  for (const auto& p : w.probes) {
    Status s = w.pm.send_name_to(w.sender, w.receiver, p.to_path());
    NAMECOH_CHECK(s.is_ok(), "send failed");
  }
  w.pm.settle();

  FractionCounter receiver_rule, sender_rule, global_subset;
  CompoundName shared_prefix = CompoundName::path("/shared");
  FractionCounter receiver_on_global, receiver_on_local;
  for (const ReceivedName& rn : w.pm.received_names()) {
    Resolution meant = w.pm.resolve_internal(w.sender, rn.path);
    if (!meant.ok()) continue;
    Resolution as_recv = w.pm.resolve_received(rn, ByReceiverRule{});
    Resolution as_send = w.pm.resolve_received(rn, BySenderRule{});
    bool recv_ok = meant.same_entity(as_recv);
    receiver_rule.add(recv_ok);
    sender_rule.add(meant.same_entity(as_send));
    bool is_global = CompoundName::path(rn.path).has_prefix(shared_prefix);
    global_subset.add(is_global);
    (is_global ? receiver_on_global : receiver_on_local).add(recv_ok);
  }

  Table t1({"name source", "rule", "probe subset", "coherent fraction"});
  t1.add_row({"exchanged", "R(receiver)", "all names",
              bench::frac(receiver_rule.fraction())});
  t1.add_row({"exchanged", "R(receiver)", "global (/shared) only",
              bench::frac(receiver_on_global.fraction())});
  t1.add_row({"exchanged", "R(receiver)", "non-global only",
              bench::frac(receiver_on_local.fraction())});
  t1.add_row({"exchanged", "R(sender)", "all names",
              bench::frac(sender_rule.fraction())});
  t1.print(std::cout);
  std::cout << "(global names are " << bench::frac(global_subset.fraction())
            << " of the probe set)\n\n";

  // --- Part 2: names embedded in objects ----------------------------------
  // Embed every probe (as a graph-relative name) in a file on m1, assign
  // the file's object context, and read it from the receiver's side.
  ClosureTable& table = w.pm.closures();
  EntityId m1_ctx = w.graph.add_context_object("obj-scope:m1");
  w.graph.context(m1_ctx) = FileSystem::make_process_context(w.r1, w.r1);

  FractionCounter activity_rule, object_rule;
  EntityId receiver_act = w.pm.info(w.receiver).activity;
  for (const auto& p : w.probes) {
    EntityId file = w.graph.add_data_object("carrier");
    w.graph.add_embedded_name(file, p);
    table.set_object_context(file, m1_ctx);
    Circumstance c = Circumstance::from_object(receiver_act, file);
    Resolution meant = resolve_from(w.graph, m1_ctx, p);
    if (!meant.ok()) continue;
    Resolution by_activity =
        resolve_with_rule(w.graph, table, ByActivityRule{}, c, p);
    Resolution by_object =
        resolve_with_rule(w.graph, table, ByObjectRule{}, c, p);
    activity_rule.add(meant.same_entity(by_activity));
    object_rule.add(meant.same_entity(by_object));
  }

  Table t2({"name source", "rule", "probe subset", "coherent fraction"});
  t2.add_row({"embedded", "R(activity)", "all names",
              bench::frac(activity_rule.fraction())});
  t2.add_row({"embedded", "R(object)", "all names",
              bench::frac(object_rule.fraction())});
  t2.print(std::cout);
  std::cout << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ResolveWithRule(benchmark::State& state) {
  Fig2World w;
  auto rule = make_rule(static_cast<RuleKind>(state.range(0)));
  Circumstance c = Circumstance::from_message(
      w.pm.info(w.receiver).activity, w.pm.info(w.sender).activity);
  std::size_t i = 0;
  for (auto _ : state) {
    const CompoundName& p = w.probes[i++ % w.probes.size()];
    Resolution res = resolve_with_rule(w.graph, w.pm.closures(), *rule, c, p);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveWithRule)
    ->Arg(static_cast<int>(RuleKind::kByReceiver))
    ->Arg(static_cast<int>(RuleKind::kBySender));

void BM_SendNameEndToEnd(benchmark::State& state) {
  Fig2World w;
  std::size_t i = 0;
  for (auto _ : state) {
    Status s = w.pm.send_name_to(w.sender, w.receiver,
                                 w.probes[i++ % w.probes.size()].to_path());
    benchmark::DoNotOptimize(s);
    w.pm.settle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SendNameEndToEnd);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
