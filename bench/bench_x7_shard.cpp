// Experiment X8 (extension): the sharded delegation fabric at
// million-entity scale. (The binary keeps the bench_x7_* sequence number;
// EXPERIMENTS.md's X7 is the execution-policy seam measured by
// bench_core_resolution.)
//
// The paper's §5.1 lets a context's authority delegate subtrees to other
// machines; PR 8 turns that single mechanism into a fabric: many authority
// shards, subtree delegation records in the AuthorityMap, and referral
// glue (protocol v5) so a client learns the delegate shard's replica set
// in the referral itself instead of paying another round trip
// (docs/SHARDING.md).
//
// This experiment builds one naming graph — at --scale full, a fanout-16
// depth-5 context tree (1,118,481 contexts) whose 1,048,576 leaves each
// carry nine extra bindings into a shared data-object pool, 10,555,664
// bindings total — and resolves a Zipf-skewed closed-loop workload from
// thousands of simulated activities (workload/run_parallel, the PR 5 async
// engine) against the same tree delegated across 1, 4, 16 and 64 shards.
// Every server charges a fixed per-request service time, so the single
// shard is a queueing bottleneck and the fabric's win is visible as
// throughput scaling and a collapsing p99: the work divides across shard
// machines while the per-lookup hop count stays flat (glue keeps referral
// chases at one extra hop, never a re-walk through the delegating
// authority).
//
// The claim recorded in EXPERIMENTS.md: throughput grows monotonically
// with the shard count (64 shards beat 1 by an order of magnitude at full
// scale), p99 settle latency shrinks alongside, and the ns.shard.*
// counters show glue doing the routing — delegations chased once, then
// shard routes reused.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/graph_ops.hpp"
#include "ns/name_service.hpp"
#include "ns/shard_ring.hpp"
#include "workload/parallel.hpp"
#include "workload/scenario.hpp"

namespace namecoh {
namespace {

// Per-request service time charged by every server (ticks). This is what
// makes shard count matter: with one shard, every lookup funnels through
// one machine's FIFO.
constexpr SimDuration kServiceTime = 50;

struct X7Scale {
  std::size_t fanout;
  std::size_t depth;
  std::size_t data_pool;          ///< shared data objects bound under leaves
  std::size_t extra_per_leaf;     ///< data bindings per leaf context
  std::size_t queries;            ///< distinct queries (hottest-first)
  std::size_t activities;         ///< closed-loop multiprogramming level
  std::size_t resolutions;        ///< total lookups per shard count
};

X7Scale scale_params() {
  if (bench::scale_flag() == "full") {
    // 1 + 16 + 256 + 4096 + 65536 + 1048576 = 1,118,481 contexts;
    // 1,118,480 tree bindings + 9 × 1,048,576 leaf data bindings
    // = 10,555,664 bindings.
    return X7Scale{16, 5, 4096, 9, 8192, 2000, 20000};
  }
  NAMECOH_CHECK(bench::scale_flag() == "small",
                "unknown --scale (want small or full)");
  // CI shape: same topology, two orders smaller. 4,681 contexts,
  // 4,680 + 9 × 4,096 = 41,544 bindings.
  return X7Scale{8, 4, 512, 9, 512, 64, 2000};
}

/// The graph half of the experiment, built once and shared (read-only)
/// across every shard count.
struct X7Fabric {
  NamingGraph graph;
  EntityId root;
  TreeBuildResult tree;
  std::size_t bindings = 0;
  std::vector<EntityId> delegation_roots;  ///< the level-2 subtree roots

  explicit X7Fabric(const X7Scale& s) {
    root = graph.add_context_object("x7-root");
    tree = build_context_tree(graph, root, s.fanout, s.depth);
    bindings = tree.bindings_created;

    // Nine extra bindings per leaf into a shared data-object pool: the
    // "millions of names, few distinct objects" shape of a real
    // distributed file system, and what pushes the binding count past
    // 10M at full scale without 10M entities.
    std::vector<EntityId> pool;
    pool.reserve(s.data_pool);
    for (std::size_t i = 0; i < s.data_pool; ++i) {
      pool.push_back(graph.add_data_object(""));
    }
    std::vector<Name> data_names;
    data_names.reserve(s.extra_per_leaf);
    for (std::size_t k = 0; k < s.extra_per_leaf; ++k) {
      auto name = Name::make("d" + std::to_string(k));
      NAMECOH_CHECK(name.is_ok(), "bad data-binding name");
      data_names.push_back(std::move(name).value());
    }
    const std::vector<EntityId>& leaves = tree.levels.back();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      for (std::size_t k = 0; k < s.extra_per_leaf; ++k) {
        NAMECOH_CHECK(
            graph
                .bind(leaves[i], data_names[k],
                      pool[(i * s.extra_per_leaf + k) % pool.size()])
                .is_ok(),
            "leaf data binding failed");
        ++bindings;
      }
    }
    delegation_roots = tree.levels[2];
  }
};

struct ShardRun {
  std::size_t shards = 0;
  double throughput = 0.0;  ///< resolutions per 1k ticks
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t chased = 0;
  std::uint64_t glue_hits = 0;
  std::uint64_t cross_hops = 0;
  std::uint64_t failed = 0;
};

/// Resolve the workload against the fabric delegated across `shards`
/// authority shards. Fresh cluster per run (ScenarioBuilder wires the
/// simulator/network/authority stack); the naming graph is shared
/// read-only.
ShardRun run_shards(const X7Fabric& fabric, const X7Scale& s,
                    std::size_t shards) {
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;  // every lookup pays the wire: servers are the story
  cfg.shard_routing = true;
  cfg.retry.retries = 0;
  // Closed-loop queueing at one shard can back a request up behind the
  // whole activity population; the timeout must sit above that, not above
  // a network round trip.
  cfg.retry.request_timeout =
      static_cast<SimDuration>(s.activities) * kServiceTime * 4 + 100000;
  cfg.retry.max_timeout = cfg.retry.request_timeout;

  // Delegate the level-2 subtree roots round-robin while unowned — each
  // claims its whole subtree — then hand the remainder (root, levels 0-1)
  // to shard 0. Order matters: install_delegation never descends into an
  // already-owned region.
  ScenarioBuilder builder(fabric.graph);
  builder.shards(shards)
      .service_time(kServiceTime)
      .client_config(cfg)
      .client_label("x7");
  for (std::size_t i = 0; i < fabric.delegation_roots.size(); ++i) {
    builder.delegate(fabric.delegation_roots[i],
                     static_cast<ShardId>(i % shards));
  }
  builder.delegate(fabric.root, 0);
  auto cluster = builder.build();
  Simulator& sim = cluster->sim();
  ResolverClient& client = cluster->client();

  // Queries, hottest-first for the Zipf pick. Cycling over the delegation
  // roots spreads consecutive ranks across shards, so the hot set is a
  // fabric-wide load, not one shard's: rank r descends a rank-dependent
  // leaf path under subtree (r mod roots), ending at the leaf context
  // (even ranks) or one of its data bindings (odd ranks). Most lookups
  // start at the delegated subtree root — an activity working inside its
  // own region — but every eighth starts at the fabric root with the full
  // path, paying the referral chase across the delegation boundary that
  // the glue records exist to keep at one hop.
  std::vector<ParallelQuery> queries;
  queries.reserve(s.queries);
  const std::size_t leaf_levels = s.depth - 2;  // atoms below a level-2 root
  for (std::size_t r = 0; r < s.queries; ++r) {
    const std::size_t subtree = r % fabric.delegation_roots.size();
    const bool from_root = r % 8 == 3;
    std::string path;
    if (from_root) {
      path = "c" + std::to_string(subtree / s.fanout) + "/c" +
             std::to_string(subtree % s.fanout) + "/";
    }
    std::size_t salt = r / fabric.delegation_roots.size();
    for (std::size_t d = 0; d < leaf_levels; ++d) {
      if (d > 0) path += '/';
      path += 'c';
      path += std::to_string((salt + d * 7) % s.fanout);
      salt /= s.fanout;
    }
    if (r % 2 == 1) path += "/d" + std::to_string(r % s.extra_per_leaf);
    queries.push_back(
        ParallelQuery{from_root ? fabric.root : fabric.delegation_roots[subtree],
                      CompoundName::relative(path)});
  }

  Histogram latency({50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600,
                     51200, 102400, 204800, 409600, 819200, 1638400});
  ParallelSpec spec;
  spec.activities = s.activities;
  spec.total_resolutions = s.resolutions;
  spec.think_time = 0;
  spec.zipf_s = 0.9;
  spec.seed = 7 + shards;
  spec.latency = &latency;
  ParallelOutcome out = run_parallel(sim, client, queries, spec);

  const MetricsRegistry& metrics = cluster->metrics();
  ShardRun run;
  run.shards = shards;
  run.throughput = out.elapsed() > 0
                       ? 1000.0 * static_cast<double>(out.completed) /
                             static_cast<double>(out.elapsed())
                       : 0.0;
  run.p50 = latency.quantile(0.5);
  run.p99 = latency.quantile(0.99);
  run.chased = metrics.counter_value("ns.shard.delegations_chased");
  run.glue_hits = metrics.counter_value("ns.shard.glue_hits");
  run.cross_hops = metrics.counter_value("ns.shard.cross_shard_hops");
  run.failed = out.failed;
  return run;
}

void run_experiment() {
  const X7Scale s = scale_params();
  const bool full = bench::scale_flag() == "full";
  bench::print_header(
      "X8 (extension): sharded delegation fabric — " + bench::scale_flag() +
          " scale",
      "One naming graph, delegated across 1 -> 64 authority shards. Each\n"
      "server charges " +
          std::to_string(kServiceTime) +
          " ticks per request, so the single shard is a queueing\n"
          "bottleneck; the fabric divides the work while v5 referral glue "
          "keeps the\nhop count flat (docs/SHARDING.md).");

  X7Fabric fabric(s);
  const std::size_t contexts = fabric.tree.contexts_created + 1;  // + root
  std::cout << "fabric: " << contexts << " contexts, " << fabric.bindings
            << " bindings, " << fabric.delegation_roots.size()
            << " delegable subtrees, " << s.activities << " activities x "
            << s.resolutions << " resolutions (zipf s=0.9)\n\n";
  if (full) {
    NAMECOH_CHECK(contexts >= 1000000, "full scale must build >= 1M contexts");
    NAMECOH_CHECK(fabric.bindings >= 10000000,
                  "full scale must build >= 10M bindings");
  }

  Table t({"shards", "throughput (res/ktick)", "p50 settle", "p99 settle",
           "delegations chased", "glue hits", "cross-shard hops", "failed"});
  std::vector<ShardRun> runs;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                             std::size_t{64}}) {
    ShardRun run = run_shards(fabric, s, shards);
    NAMECOH_CHECK(run.failed == 0, "lookups failed against the fabric");
    t.add_row({std::to_string(run.shards), bench::frac(run.throughput, 2),
               bench::frac(run.p50, 0), bench::frac(run.p99, 0),
               std::to_string(run.chased), std::to_string(run.glue_hits),
               std::to_string(run.cross_hops), std::to_string(run.failed)});
    runs.push_back(run);
  }
  t.print(std::cout);

  // The scaling claims behind the table: more shards, more throughput,
  // smaller tail; and glue actually carried the routing (shard routes get
  // reused far more often than delegations are chased).
  NAMECOH_CHECK(runs.back().throughput > runs.front().throughput,
                "64 shards did not out-resolve 1 shard");
  for (std::size_t i = 1; i < runs.size(); ++i) {
    NAMECOH_CHECK(runs[i].throughput >= runs[i - 1].throughput,
                  "throughput regressed while adding shards");
  }
  NAMECOH_CHECK(runs.back().p99 < runs.front().p99,
                "p99 did not shrink with the shard count");
  NAMECOH_CHECK(runs.back().chased > 0,
                "from-root lookups never chased a delegation");
  NAMECOH_CHECK(runs.back().glue_hits >= runs.back().chased,
                "chased delegations were not glue-routed");
  NAMECOH_CHECK(runs.back().cross_hops > 0,
                "no cross-shard hop was ever taken at 64 shards");
  std::cout << "(throughput x" +
                   bench::frac(runs.back().throughput /
                                   runs.front().throughput,
                               1) +
                   " and p99 /" +
                   bench::frac(runs.front().p99 /
                                   std::max(runs.back().p99, 1.0),
                               1) +
                   " from 1 -> 64 shards; the graph itself never changed)\n"
            << std::endl;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_DelegationInstall(benchmark::State& state) {
  // Installing a subtree delegation: one BFS claim over the subtree.
  NamingGraph graph;
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 8, 3);
  Internetwork net;
  NetworkId lan = net.add_network("lan");
  MachineId m1 = net.add_machine(lan, "m1");
  MachineId m2 = net.add_machine(lan, "m2");
  for (auto _ : state) {
    AuthorityMap homes;
    (void)homes.add_shard({m1});
    (void)homes.add_shard({m2});
    for (std::size_t i = 0; i < tree.levels[1].size(); ++i) {
      benchmark::DoNotOptimize(homes.install_delegation(
          graph, tree.levels[1][i], static_cast<ShardId>(i % 2)));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * tree.levels[1].size()));
}
BENCHMARK(BM_DelegationInstall);

void BM_ShardRingLookup(benchmark::State& state) {
  // Consistent-hash placement: one mix + binary search over 64 x 64 points.
  ShardRing ring;
  for (ShardId s = 0; s < 64; ++s) ring.add_shard(s);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.shard_for(EntityId(id++ & 0xfffff)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardRingLookup);

void BM_GlueTailParse(benchmark::State& state) {
  // Decoding a v5 reply tail: 3 replicas + 2 glue records, the shape a
  // referral from a 3-replica shard with two delegate children produces.
  Payload payload;
  payload.add_u64(3);
  for (int i = 0; i < 3; ++i) {
    payload.add_pid(Pid{1, static_cast<Addr>(i + 1), 7});
    payload.add_u64(static_cast<std::uint64_t>(i));
  }
  for (std::uint64_t g = 0; g < 2; ++g) {
    payload.add_u64(g + 100);  // delegated context
    payload.add_u64(g);        // owning shard
    payload.add_u64(2);
    for (int i = 0; i < 2; ++i) {
      payload.add_pid(Pid{2, static_cast<Addr>(i + 1), 7});
      payload.add_u64(static_cast<std::uint64_t>(10 + i));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_reply_tail(payload, 0, /*expect_lease=*/
                                              false, /*expect_glue=*/true));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GlueTailParse);

void BM_ShardedResolve(benchmark::State& state) {
  // One full shard-routed lookup: referral with glue on the first
  // iteration, direct shard hop (learned route) on every later one. Cache
  // off, service time zero — this measures the routing machinery.
  NamingGraph graph;
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 4, 3);
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  NetworkId lan = net.add_network("lan");
  MachineId m1 = net.add_machine(lan, "m1");
  MachineId m2 = net.add_machine(lan, "m2");
  AuthorityMap homes;
  (void)homes.add_shard({m1});
  (void)homes.add_shard({m2});
  NAMECOH_CHECK(homes.install_delegation(graph, tree.levels[1][0], 1).is_ok(),
                "bench delegation failed");
  NAMECOH_CHECK(homes.install_delegation(graph, root, 0).is_ok(),
                "bench root delegation failed");
  NameService service{graph, net, transport, homes};
  service.add_server(m1);
  service.add_server(m2);
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;
  cfg.shard_routing = true;
  ResolverClient client(graph, net, transport, sim, service, m1, "bench", cfg);
  const CompoundName target = CompoundName::relative("c0/c1/c2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(root, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedResolve);

}  // namespace
}  // namespace namecoh

NAMECOH_BENCH_MAIN(namecoh::run_experiment)
