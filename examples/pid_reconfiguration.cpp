// Partially qualified pids under reconfiguration (§6 Example 1).
//
// A small distributed service keeps client→server connections as stored
// pids. The machine is renamed mid-run (as in a network renumbering); the
// demo shows which stored pids keep working, and that pids exchanged in
// messages stay valid thanks to the R(sender) remap at the transport.
//
// Run: ./pid_reconfiguration
#include <iostream>

#include "net/transport.hpp"

using namespace namecoh;

namespace {

void check(Transport& tp, Internetwork& net, EndpointId holder,
           const Pid& pid, EndpointId want, const char* label) {
  auto got = tp.resolve_pid(holder, pid);
  std::cout << "  " << label << " " << pid << ": ";
  if (!got.is_ok()) {
    std::cout << "DANGLING (" << got.status().message() << ")\n";
  } else if (got.value() == want) {
    std::cout << "still denotes " << net.endpoint_label(want) << "  [OK]\n";
  } else {
    std::cout << "silently denotes " << net.endpoint_label(got.value())
              << "  [WRONG PROCESS]\n";
  }
}

}  // namespace

int main() {
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);

  NetworkId lan = net.add_network("lan");
  NetworkId wan = net.add_network("wan");
  MachineId db_host = net.add_machine(lan, "db-host");
  MachineId app_host = net.add_machine(lan, "app-host");
  MachineId remote = net.add_machine(wan, "remote");
  EndpointId db = net.add_endpoint(db_host, "db");
  EndpointId app = net.add_endpoint(app_host, "app");
  EndpointId cache = net.add_endpoint(db_host, "cache");
  EndpointId monitor = net.add_endpoint(remote, "monitor");

  // Stored references to the db server, at each level of qualification.
  Pid from_cache = relativize(net.location_of(db).value(),
                              net.location_of(cache).value());
  Pid from_app = relativize(net.location_of(db).value(),
                            net.location_of(app).value());
  Pid from_monitor = relativize(net.location_of(db).value(),
                                net.location_of(monitor).value());
  std::cout << "Stored pids for the db server:\n";
  std::cout << "  cache (same machine)  holds " << from_cache << "\n";
  std::cout << "  app   (same network)  holds " << from_app << "\n";
  std::cout << "  monitor (other net)   holds " << from_monitor
            << "  <- fully qualified\n\n";

  std::cout << "== renumbering db-host (machine gets a new address) ==\n";
  (void)net.renumber_machine(db_host);
  check(tp, net, cache, from_cache, db, "cache's");
  check(tp, net, app, from_app, db, "app's  ");
  check(tp, net, monitor, from_monitor, db, "monitor's");
  std::cout << "\n(0,0,l) survives: \"pids of local processes within the "
               "renamed machine remain\nvalid and therefore the subsystem "
               "maintains its internal connections\" (§6).\n\n";

  std::cout << "== repairing via message exchange with R(sender) remap ==\n";
  // cache (which still has a valid pid) sends the db's pid to everyone.
  for (EndpointId receiver : {app, monitor}) {
    tp.set_handler(receiver, [&](EndpointId self, const Message& m) {
      Pid fresh = m.payload.pid_at(0);
      auto resolved = tp.resolve_pid(self, fresh);
      std::cout << "  " << net.endpoint_label(self) << " received " << fresh
                << " -> "
                << (resolved.is_ok() && resolved.value() == db
                        ? "denotes db again  [repaired]"
                        : "still broken")
                << "\n";
    });
    Message msg;
    msg.type = 1;
    msg.payload.add_pid(from_cache);
    Location cache_loc = net.location_of(cache).value();
    Location recv_loc = net.location_of(receiver).value();
    (void)tp.send(cache, relativize(recv_loc, cache_loc), std::move(msg));
  }
  sim.run();

  std::cout << "\nThe transport rebased the embedded pid from the sender's "
               "context to each\nreceiver's — the paper's R(sender) rule "
               "\"implemented by mapping the embedded pid\".\n";
  return 0;
}
