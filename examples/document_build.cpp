// Structured documents with embedded names (Fig. 6, §6 Example 2).
//
// Builds a LaTeX-style book whose files include each other by embedded
// names, then relocates the subtree and assembles it again under both
// rules: R(activity) (the Unix default — breaks) and R(file) (Algol scope —
// meaning invariant).
//
// Run: ./document_build
#include <iostream>

#include "embed/embedded.hpp"
#include "fs/file_system.hpp"
#include "workload/doc_gen.hpp"

using namespace namecoh;

namespace {

void report(const char* label, const DocumentMeaning& meaning) {
  std::cout << "  " << label << ": "
            << (meaning.fully_resolved() ? "fully resolved" : "BROKEN")
            << "  (" << meaning.refs.size() << " refs, "
            << meaning.unresolved << " unresolved, " << meaning.text.size()
            << " bytes of assembled text)\n";
}

}  // namespace

int main() {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId home = fs.make_root("home");

  DocSpec spec;
  spec.chapters = 3;
  spec.sections_per_chapter = 2;
  Document book = make_document(fs, home, Name("thesis"), spec);
  std::cout << "Built 'thesis': " << book.files << " files, " << book.refs
            << " embedded references\n"
            << "(chapters include sections; everything references "
               "assets/style.sty at the subtree root)\n\n";

  DocumentAssembler assembler(graph);
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  Context reader = FileSystem::make_process_context(home, book.subtree);
  AssembleOptions activity;
  activity.rule = EmbedRule::kActivityContext;
  activity.reader_context = &reader;

  std::cout << "Assembly in place:\n";
  DocumentMeaning base_algol =
      assembler.assemble(book.root_file, book.subtree, algol);
  report("R(file)    ", base_algol);
  DocumentMeaning base_activity =
      assembler.assemble(book.root_file, book.subtree, activity);
  report("R(activity)", base_activity);

  // Relocate the thesis into an archive directory.
  EntityId archive = fs.mkdir(home, Name("archive")).value();
  (void)fs.move_entry(home, Name("thesis"), archive, Name("thesis-2026"));
  std::cout << "\nmv /thesis /archive/thesis-2026\n\n";

  std::cout << "Assembly after relocation:\n";
  DocumentMeaning moved_algol =
      assembler.assemble(book.root_file, book.subtree, algol);
  report("R(file)    ", moved_algol);
  std::cout << "    meaning preserved: "
            << (moved_algol.same_meaning(base_algol) ? "yes" : "no") << "\n";
  // A fresh reader at the old location — the realistic R(a) failure.
  Context stale = FileSystem::make_process_context(home, home);
  AssembleOptions stale_activity;
  stale_activity.rule = EmbedRule::kActivityContext;
  stale_activity.reader_context = &stale;
  DocumentMeaning moved_activity =
      assembler.assemble(book.root_file, book.subtree, stale_activity);
  report("R(activity)", moved_activity);

  // Copy it to a colleague's machine: the copy is self-contained.
  EntityId colleague = fs.make_root("colleague");
  (void)fs.copy_subtree(book.subtree, colleague, Name("thesis-copy"));
  Context on_colleague = FileSystem::make_process_context(colleague, colleague);
  Resolution opened = fs.resolve_path(on_colleague, "/thesis-copy/book.tex");
  DocumentMeaning copied =
      assembler.assemble(opened.entity, opened.trail.back(), algol);
  std::cout << "\nCopy on another machine:\n";
  report("R(file)    ", copied);
  std::cout << "\nUnder R(file), the structured object means the same thing "
               "wherever it is\nattached, moved, or copied — Fig. 6's "
               "property.\n";
  return 0;
}
