// Quickstart: the naming model in 80 lines.
//
// Builds a tiny naming graph, resolves compound names in two process
// contexts, and uses the coherence analyzer to show where the same name
// means different things — the paper's core concepts end to end.
//
// Run: ./quickstart
#include <iostream>

#include "coherence/coherence.hpp"
#include "fs/file_system.hpp"

using namespace namecoh;

int main() {
  // 1. A naming graph: entities + contexts (§2).
  NamingGraph graph;
  FileSystem fs(graph);

  // Two machines, each with its own naming tree.
  EntityId mercury = fs.make_root("mercury");
  EntityId venus = fs.make_root("venus");
  (void)fs.create_file_at(mercury, "etc/passwd", "users of mercury").value();
  (void)fs.create_file_at(venus, "etc/passwd", "users of venus").value();

  // One shared subtree, attached on both machines under the same name.
  EntityId shared = fs.make_root("shared");
  (void)fs.create_file_at(shared, "tools/cc", "the one true compiler").value();
  (void)fs.attach(mercury, Name("shared"), shared);
  (void)fs.attach(venus, Name("shared"), shared);

  // 2. Process contexts: "/" and "." bindings (§5.1).
  Context on_mercury = FileSystem::make_process_context(mercury, mercury);
  Context on_venus = FileSystem::make_process_context(venus, venus);

  // 3. Resolution: a name is resolved in a context.
  Resolution here = fs.resolve_path(on_mercury, "/etc/passwd");
  Resolution there = fs.resolve_path(on_venus, "/etc/passwd");
  std::cout << "/etc/passwd on mercury -> \"" << graph.data(here.entity)
            << "\"\n";
  std::cout << "/etc/passwd on venus   -> \"" << graph.data(there.entity)
            << "\"\n";
  std::cout << "same entity? " << (here.same_entity(there) ? "yes" : "NO")
            << "  <- incoherence: same name, different meaning\n\n";

  // 4. The coherence analyzer quantifies this over whole probe sets (§4).
  EntityId ctx_m = graph.add_context_object("pctx:mercury");
  graph.context(ctx_m) = on_mercury;
  EntityId ctx_v = graph.add_context_object("pctx:venus");
  graph.context(ctx_v) = on_venus;
  CoherenceAnalyzer analyzer(graph);

  for (const char* path : {"/etc/passwd", "/shared/tools/cc"}) {
    ProbeVerdict verdict =
        analyzer.probe(ctx_m, ctx_v, CompoundName::path(path));
    std::cout << path << ": " << probe_verdict_name(verdict) << "\n";
  }

  // 5. Degree of coherence over everything mercury can name.
  auto probes = absolutize(probes_from_dir(graph, mercury));
  DegreeReport report = analyzer.degree(ctx_m, ctx_v, probes);
  std::cout << "\ndegree of coherence mercury<->venus over " << probes.size()
            << " names: " << report.strict.fraction() << "\n";
  std::cout << "only the shared name space is coherent — which is the "
               "paper's point:\ncoherence comes from *arranging contexts*, "
               "not from global names.\n";
  return 0;
}
