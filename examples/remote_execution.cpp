// Remote execution with per-process views (§6 II).
//
// A parent process on machine "client" launches a child on machine
// "server", passing a file name as a parameter — over the real messaging
// layer. The demo runs all three context policies and shows the trade-off
// the paper describes, plus the per-process view that dissolves it.
//
// Run: ./remote_execution
#include <iostream>

#include "os/process_manager.hpp"
#include "workload/tree_gen.hpp"

using namespace namecoh;

int main() {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport transport(sim, net);
  ProcessManager pm(graph, fs, net, transport);

  NetworkId lan = net.add_network("lan");
  MachineId client = net.add_machine(lan, "client");
  MachineId server = net.add_machine(lan, "server");
  EntityId client_root = fs.make_root("client");
  EntityId server_root = fs.make_root("server");
  populate_unix_skeleton(fs, client_root, "client");
  populate_unix_skeleton(fs, server_root, "server");
  (void)fs.create_file_at(client_root, "job/input.dat", "simulation input").value();

  ProcessId parent = pm.spawn(client, "parent", client_root, client_root);
  const std::string param = "/job/input.dat";

  for (RemoteExecPolicy policy :
       {RemoteExecPolicy::kInvokerRoot, RemoteExecPolicy::kExecutorRoot,
        RemoteExecPolicy::kPrivateAttach}) {
    std::cout << "--- policy: " << remote_exec_policy_name(policy)
              << " ---\n";
    auto child = pm.remote_exec(parent, server, "worker", policy,
                                server_root, Name("srv"));
    if (!child.is_ok()) {
      std::cout << "spawn failed: " << child.status() << "\n";
      continue;
    }

    // Pass the parameter over the wire (a *name* in a message).
    (void)pm.send_name_to(parent, child.value(), param);
    pm.settle();
    const ReceivedName& received = pm.received_names().back();

    // The child resolves the parameter in its own context — R(receiver),
    // which is what a real exec does with argv.
    Resolution got = pm.resolve_internal(child.value(), received.path);
    Resolution meant = pm.resolve_internal(parent, param);
    std::cout << "  parameter \"" << param << "\": "
              << (got.ok() ? (got.same_entity(meant)
                                  ? "resolves to the parent's file  [OK]"
                                  : "resolves to the WRONG file")
                           : "does not resolve  [" +
                                 std::string(
                                     status_code_name(got.status.code())) +
                                 "]")
              << "\n";

    // Can the child still use the server's own tools?
    bool local = false;
    for (const char* path : {"/bin/sh", "/srv/bin/sh"}) {
      Resolution res = pm.resolve_internal(child.value(), path);
      if (res.ok() && graph.data(res.entity).find("server") !=
                          std::string::npos) {
        local = true;
        std::cout << "  server-local /bin/sh reachable as " << path << "\n";
      }
    }
    if (!local) std::cout << "  server-local files NOT reachable\n";
    (void)pm.kill(child.value());
    pm.clear_inboxes();
    std::cout << "\n";
  }

  std::cout << "private-attach gives parameter coherence AND local access — "
               "\"in spite of not\nhaving global names\" (§6 II).\n";
  return 0;
}
