// Newcastle Connection demo (Fig. 3, §5.1).
//
// Glues three machine trees under a super-root, shows that '/…' names are
// incoherent across machines, reaches remote files with the '..'-above-root
// notation, and repairs references with the mapping rule.
//
// Run: ./newcastle_federation
#include <iostream>

#include "coherence/coherence.hpp"
#include "schemes/newcastle.hpp"
#include "workload/tree_gen.hpp"

using namespace namecoh;

int main() {
  NamingGraph graph;
  FileSystem fs(graph);
  NewcastleScheme scheme(fs);

  SiteId unix1 = scheme.add_site("unix1");
  SiteId unix2 = scheme.add_site("unix2");
  SiteId unix3 = scheme.add_site("unix3");
  for (auto [site, tag] :
       {std::pair{unix1, "u1"}, {unix2, "u2"}, {unix3, "u3"}}) {
    populate_unix_skeleton(fs, scheme.site_tree(site), tag);
  }
  scheme.finalize();
  std::cout << "Built the Fig. 3 system: three UNIX machines joined under a "
               "super-root.\n\n";

  // A process on each machine binds "/" to its own machine's root.
  Context on1 = FileSystem::make_process_context(scheme.site_root(unix1),
                                                 scheme.site_root(unix1));
  Context on2 = FileSystem::make_process_context(scheme.site_root(unix2),
                                                 scheme.site_root(unix2));

  // Same name, different file: incoherence across the machine boundary.
  Resolution p1 = fs.resolve_path(on1, "/etc/passwd");
  Resolution p2 = fs.resolve_path(on2, "/etc/passwd");
  std::cout << "/etc/passwd on unix1: \"" << graph.data(p1.entity) << "\"\n";
  std::cout << "/etc/passwd on unix2: \"" << graph.data(p2.entity) << "\"\n";
  std::cout << "-> same name, different entity (no common reference).\n\n";

  // The Newcastle remedy: '..' above the root.
  Resolution remote = fs.resolve_path(on2, "/../unix1/etc/passwd");
  std::cout << "/../unix1/etc/passwd on unix2: \""
            << graph.data(remote.entity) << "\"\n";
  std::cout << "-> the super-root makes every machine's files reachable.\n\n";

  // The mapping rule, mechanically.
  std::string original = "/home/u1/project/main.c";
  auto mapped = scheme.map_path(unix1, unix3, original);
  Resolution direct = fs.resolve_path(on1, original);
  Context on3 = FileSystem::make_process_context(scheme.site_root(unix3),
                                                 scheme.site_root(unix3));
  Resolution via_map = fs.resolve_path(on3, mapped.value());
  std::cout << "unix1 name  " << original << "\n";
  std::cout << "unix3 needs " << mapped.value() << "\n";
  std::cout << "same entity? " << (direct.same_entity(via_map) ? "yes" : "NO")
            << "\n\n";

  // Quantify the degree of coherence (the F3 experiment in miniature).
  CoherenceAnalyzer analyzer(graph);
  auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(unix1)));
  DegreeReport cross = analyzer.degree(scheme.make_site_context(unix1),
                                       scheme.make_site_context(unix2),
                                       probes);
  DegreeReport local = analyzer.degree(scheme.make_site_context(unix1),
                                       scheme.make_site_context(unix1),
                                       probes);
  std::cout << "coherence unix1<->unix1: " << local.strict.fraction() << "\n";
  std::cout << "coherence unix1<->unix2: " << cross.strict.fraction()
            << "   (\"incoherence across machine boundaries\", §5.1)\n";
  return 0;
}
