// Coherence doctor: diagnose a federation's naming incoherence and derive
// repair rules automatically (the RepairAdvisor over a Fig. 5 topology).
//
// Run: ./coherence_doctor
#include <iostream>

#include "coherence/repair.hpp"
#include "schemes/crosslink.hpp"
#include "util/table.hpp"
#include "workload/tree_gen.hpp"

using namespace namecoh;

int main() {
  // Two organizations, one cross-link.
  NamingGraph graph;
  FileSystem fs(graph);
  CrossLinkScheme federation(fs);
  SiteId acme = federation.add_site("acme");
  SiteId globex = federation.add_site("globex");
  populate_unix_skeleton(fs, federation.site_tree(acme), "acme");
  populate_unix_skeleton(fs, federation.site_tree(globex), "globex");
  (void)fs.create_file_at(federation.site_tree(acme),
                          "users/ann/report.txt", "Q3 numbers").value();
  federation.finalize();
  (void)federation.add_cross_link(globex, Name("acme"), acme);
  std::cout << "Federation: acme <-> globex, cross-link /acme on globex.\n\n";

  // Diagnose: how incoherent are acme's names when used at globex?
  CoherenceAnalyzer analyzer(graph);
  RepairAdvisor advisor(graph);
  EntityId at_acme = federation.make_site_context(acme);
  EntityId at_globex = federation.make_site_context(globex);
  auto probes = absolutize(probes_from_dir(graph, federation.site_tree(acme)));

  DegreeReport degree = analyzer.degree(at_acme, at_globex, probes);
  std::cout << "Diagnosis over " << probes.size() << " acme names used at "
            << "globex:\n";
  Table d({"verdict", "count"});
  for (const auto& [verdict, count] : degree.verdicts.counts()) {
    d.add_row({verdict, std::to_string(count)});
  }
  d.print(std::cout);
  std::cout << "strict coherence: " << degree.strict.fraction() << "\n";

  // Show the dangerous ones by name: silent conflicts (same name, wrong
  // entity) are the cases users won't notice until data is wrong.
  auto conflicts = analyzer.probes_with_verdict(at_acme, at_globex, probes,
                                                ProbeVerdict::kDifferent);
  std::cout << "silent conflicts (showing up to 3 of " << conflicts.size()
            << "):\n";
  for (std::size_t i = 0; i < conflicts.size() && i < 3; ++i) {
    std::cout << "  " << conflicts[i] << "  <- resolves on BOTH systems, "
              << "to different files\n";
  }
  std::cout << "\n";

  // Prescribe: derive mapping rules.
  RepairOptions options;
  options.allow_dot_names = false;
  RepairReport report = advisor.suggest(at_acme, at_globex, probes, options);
  std::cout << "Prescription (" << report.suggestions.size()
            << " rule(s) found, " << report.repairable << "/"
            << report.incoherent << " probes repairable):\n";
  for (const MappingSuggestion& s : report.suggestions) {
    std::cout << "  rewrite  " << s.from_prefix.to_path() << "  ->  "
              << s.to_prefix.to_path() << "   (repairs " << s.repaired
              << " names, coverage " << s.coverage() << ")\n";
  }

  // Apply the best rule to a concrete name, end to end.
  if (!report.suggestions.empty()) {
    const MappingSuggestion& rule = report.suggestions.front();
    CompoundName name = CompoundName::path("/users/ann/report.txt");
    auto mapped = RepairAdvisor::apply(rule, name);
    Context globex_ctx = FileSystem::make_process_context(
        federation.site_root(globex), federation.site_root(globex));
    Context acme_ctx = FileSystem::make_process_context(
        federation.site_root(acme), federation.site_root(acme));
    Resolution meant = fs.resolve_path(acme_ctx, name.to_path());
    Resolution got = fs.resolve_path(globex_ctx, mapped.value().to_path());
    std::cout << "\nVerification: " << name << " (at acme)  ==  "
              << mapped.value() << " (at globex)?  "
              << (meant.same_entity(got) ? "yes — \"" +
                                               graph.data(got.entity) + "\""
                                         : "NO")
              << "\n";
  }
  std::cout << "\nThis is §7's human mapping rule, derived mechanically "
               "from probe evidence.\n";
  return 0;
}
