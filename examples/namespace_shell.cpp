// namespace_shell: a tiny shell over the naming library.
//
// Demonstrates the public API surface end to end: building topology,
// navigating with process contexts, mounting, per-process attachments, and
// coherence checks — as shell commands.
//
//   ls [path]        list a directory
//   cd <path>        change the working directory
//   pwd              print the cwd's shortest name from root
//   cat <path>       print file contents
//   mkdir <path>     create directories (mkdir -p)
//   write <path> <text…>  create/overwrite a file
//   ln <path> <name> bind an existing entity under a new name in cwd
//   attach <name> @<n>  attach machine n's tree under <name> in cwd
//   chroot @<n>      switch the shell to machine n's root
//   probe <path> @<a> @<b>  coherence verdict for a name on two machines
//   quit
//
// Run: ./namespace_shell            (runs the built-in demo script)
//      ./namespace_shell -          (reads commands from stdin)
#include <iostream>
#include <sstream>

#include "coherence/coherence.hpp"
#include "core/graph_ops.hpp"
#include "fs/file_system.hpp"
#include "util/strings.hpp"
#include "workload/tree_gen.hpp"

using namespace namecoh;

namespace {

struct Shell {
  NamingGraph graph;
  FileSystem fs{graph};
  CoherenceAnalyzer analyzer{graph};
  std::vector<EntityId> machine_roots;
  EntityId root, cwd;

  Shell() {
    for (int i = 0; i < 3; ++i) {
      EntityId r = fs.make_root("machine" + std::to_string(i));
      populate_unix_skeleton(fs, r, "m" + std::to_string(i));
      machine_roots.push_back(r);
    }
    root = cwd = machine_roots[0];
  }

  Context ctx() const { return FileSystem::make_process_context(root, cwd); }

  Result<EntityId> machine_arg(const std::string& arg) const {
    if (arg.size() < 2 || arg[0] != '@') {
      return invalid_argument_error("expected @<machine-number>");
    }
    std::size_t n = static_cast<std::size_t>(std::stoul(arg.substr(1)));
    if (n >= machine_roots.size()) {
      return invalid_argument_error("no such machine");
    }
    return machine_roots[n];
  }

  void run_command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') return;
    std::cout << "$ " << line << "\n";

    auto resolve_arg = [&](const std::string& path) {
      return fs.resolve_path(ctx(), path);
    };

    if (cmd == "ls") {
      std::string path = ".";
      in >> path;
      Resolution res = resolve_arg(path);
      if (!res.ok()) {
        std::cout << "ls: " << res.status << "\n";
        return;
      }
      for (const auto& [name, target] : fs.list(res.entity)) {
        std::cout << "  " << name
                  << (graph.is_context_object(target) ? "/" : "") << "\n";
      }
    } else if (cmd == "cd") {
      std::string path;
      in >> path;
      Resolution res = resolve_arg(path);
      if (res.ok() && graph.is_context_object(res.entity)) {
        cwd = res.entity;
      } else {
        std::cout << "cd: not a directory\n";
      }
    } else if (cmd == "pwd") {
      if (cwd == root) {
        std::cout << "/\n";
      } else {
        auto name = shortest_name(graph, root, cwd);
        std::cout << (name.is_ok() ? "/" + name.value().to_path()
                                   : std::string("(unreachable from root)"))
                  << "\n";
      }
    } else if (cmd == "cat") {
      std::string path;
      in >> path;
      Resolution res = resolve_arg(path);
      if (res.ok() && graph.is_data_object(res.entity)) {
        std::cout << graph.data(res.entity) << "\n";
      } else {
        std::cout << "cat: " << res.status << "\n";
      }
    } else if (cmd == "mkdir") {
      std::string path;
      in >> path;
      auto made = fs.mkdir_p(cwd, path);
      if (!made.is_ok()) std::cout << "mkdir: " << made.status() << "\n";
    } else if (cmd == "write") {
      std::string path, word, text;
      in >> path;
      while (in >> word) {
        if (!text.empty()) text += ' ';
        text += word;
      }
      auto made = fs.create_file_at(cwd, path, text);
      if (!made.is_ok()) std::cout << "write: " << made.status() << "\n";
    } else if (cmd == "ln") {
      std::string path, name;
      in >> path >> name;
      Resolution res = resolve_arg(path);
      if (!res.ok()) {
        std::cout << "ln: " << res.status << "\n";
        return;
      }
      Status linked = fs.link(cwd, Name(name), res.entity);
      if (!linked.is_ok()) std::cout << "ln: " << linked << "\n";
    } else if (cmd == "attach") {
      std::string name, machine;
      in >> name >> machine;
      auto target = machine_arg(machine);
      if (!target.is_ok()) {
        std::cout << "attach: " << target.status() << "\n";
        return;
      }
      Status attached = fs.attach(cwd, Name(name), target.value());
      if (!attached.is_ok()) std::cout << "attach: " << attached << "\n";
    } else if (cmd == "chroot") {
      std::string machine;
      in >> machine;
      auto target = machine_arg(machine);
      if (!target.is_ok()) {
        std::cout << "chroot: " << target.status() << "\n";
        return;
      }
      root = cwd = target.value();
    } else if (cmd == "probe") {
      std::string path, ma, mb;
      in >> path >> ma >> mb;
      auto ra = machine_arg(ma);
      auto rb = machine_arg(mb);
      if (!ra.is_ok() || !rb.is_ok()) {
        std::cout << "probe: bad machine\n";
        return;
      }
      EntityId ca = graph.add_context_object("probe-a");
      graph.context(ca) =
          FileSystem::make_process_context(ra.value(), ra.value());
      EntityId cb = graph.add_context_object("probe-b");
      graph.context(cb) =
          FileSystem::make_process_context(rb.value(), rb.value());
      ProbeVerdict verdict =
          analyzer.probe(ca, cb, CompoundName::path(path));
      std::cout << path << " between " << ma << " and " << mb << ": "
                << probe_verdict_name(verdict) << "\n";
    } else if (cmd == "quit") {
      // handled by the caller
    } else {
      std::cout << cmd << ": unknown command\n";
    }
  }
};

constexpr const char* kDemoScript[] = {
    "# --- exploring machine0 ---",
    "ls /",
    "cat /etc/passwd",
    "cd /home/m0",
    "pwd",
    "ls",
    "# --- same name, different machine: incoherence ---",
    "probe /etc/passwd @0 @1",
    "# --- a name everyone shares after attaching ---",
    "cd /",
    "mkdir shared",
    "write shared/notice.txt visible from machine0",
    "attach m1win @1",
    "ls /m1win/etc",
    "cat /m1win/etc/passwd",
    "# --- links give second names to the same entity ---",
    "ln /etc/passwd users-file",
    "probe /users-file @0 @1",
    "# --- switch viewpoint entirely ---",
    "chroot @1",
    "cat /etc/passwd",
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (trim(line) == "quit") break;
      shell.run_command(line);
    }
  } else {
    std::cout << "(running the built-in demo; use '" << argv[0]
              << " -' to drive it from stdin)\n\n";
    for (const char* line : kDemoScript) shell.run_command(line);
  }
  return 0;
}
