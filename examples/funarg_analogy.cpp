// The funarg analogy (§4): the paper's programming-language motivation,
// run on the *operating-system* naming machinery.
//
// "When a function is passed as a parameter, it is desirable to resolve
// the non-local variable names of the function in the context where the
// function was defined, instead of the context of the callee; the funarg
// mechanism was introduced in Lisp for this purpose."
//
// The demo models activation records as context objects in a naming graph:
// blocks are nested directories ("." / ".." are the static chain), a
// function body is a data object whose free variables are embedded names,
// and the two classic semantics are exactly our two resolution rules:
//
//   dynamic scope  = R(activity): free variables resolve in the *caller's*
//                    environment — what naive OS naming does to programs;
//   lexical scope  = R(object) via the Algol search: free variables
//                    resolve where the function was *defined* — the funarg
//                    fix, identical in mechanism to §6's embedded-file-name
//                    rule.
//
// Run: ./funarg_analogy
#include <iostream>

#include "embed/embedded.hpp"
#include "fs/file_system.hpp"

using namespace namecoh;

int main() {
  NamingGraph graph;
  FileSystem fs(graph);

  // Global scope with x = "global-x".
  EntityId global_scope = fs.make_root("global-scope");
  (void)fs.create_file(global_scope, Name("x"), "global-x").value();

  // A block `maker` that defines its own x and, inside it, the function
  // `f` whose body reads the free variable x.
  EntityId maker = fs.mkdir(global_scope, Name("maker")).value();
  (void)fs.create_file(maker, Name("x"), "maker-x").value();
  EntityId f = fs.create_file(maker, Name("f"), "λ(). read x").value();
  graph.add_embedded_name(f, CompoundName::relative("x"));

  // A caller block with yet another x, which receives f as a parameter.
  EntityId caller = fs.mkdir(global_scope, Name("caller")).value();
  (void)fs.create_file(caller, Name("x"), "caller-x").value();

  std::cout << "f is defined in `maker` (x = maker-x) and called from "
               "`caller` (x = caller-x).\n\n";

  // Dynamic scope: resolve f's free variables in the caller's environment.
  Context caller_env = FileSystem::make_process_context(global_scope, caller);
  Resolution dynamic = resolve(graph, caller_env,
                               CompoundName::path("x"));
  std::cout << "dynamic scope  (R(activity), caller's context):  x = "
            << graph.data(dynamic.entity) << "\n";

  // Lexical scope: resolve them where f was defined — the Algol search
  // from f's containing block, i.e. R(object).
  EmbeddedNameResolver resolver(graph);
  Resolution lexical =
      resolver.resolve_algol(maker, graph.embedded_names(f)[0]);
  std::cout << "lexical scope  (R(object), defining context):    x = "
            << graph.data(lexical.entity) << "\n\n";

  // Shadowing works like nested blocks: delete maker's x and the search
  // climbs to the global scope.
  (void)fs.unlink(maker, Name("x"));
  Resolution outer = resolver.resolve_algol(maker, graph.embedded_names(f)[0]);
  std::cout << "after removing maker's x, lexical search climbs:  x = "
            << graph.data(outer.entity) << "\n\n";

  std::cout << "Same machinery, two worlds: the funarg problem and §6's "
               "embedded file names\nare the *same* coherence problem, "
               "solved by the same closure mechanism.\n";
  return 0;
}
