// Union views: Plan 9-style union directories, materialized.
//
// The per-process view systems the paper endorses (§6 II — Plan 9 and the
// extended Waterloo Port) let a process see several directories *merged*
// under one name (Plan 9's `bind -a`). Here a union directory is an
// ordinary context object whose bindings are the merge of an ordered
// member list — earlier members shadow later ones — so the resolver stays
// completely unchanged (the same move as '..'-as-binding).
//
// The merge is materialized: changes to members become visible only after
// refresh(). That is a deliberate modelling choice — it makes the
// "union view staleness" failure observable and testable, the same
// time-axis incoherence the ns cache exhibits.
#pragma once

#include <unordered_map>
#include <vector>

#include "fs/file_system.hpp"

namespace namecoh {

class UnionViews {
 public:
  explicit UnionViews(FileSystem& fs) : fs_(&fs) {}

  /// Create a union directory over `members`, in order of precedence
  /// (members[0] shadows members[1] …). Members must be directories.
  Result<EntityId> create(std::string label, std::vector<EntityId> members);

  /// Re-materialize one union after member changes.
  Status refresh(EntityId union_dir);
  /// Re-materialize every union created by this instance.
  Status refresh_all();

  [[nodiscard]] bool is_union(EntityId dir) const {
    return members_.contains(dir);
  }
  [[nodiscard]] Result<std::vector<EntityId>> members_of(
      EntityId union_dir) const;

  /// Change precedence / membership, then refresh.
  Status set_members(EntityId union_dir, std::vector<EntityId> members);

 private:
  Status materialize(EntityId union_dir);

  FileSystem* fs_;
  std::unordered_map<EntityId, std::vector<EntityId>> members_;
};

}  // namespace namecoh
