// Consistency checking for file-system subtrees.
//
// The fs layer maintains invariants the resolver depends on (every
// directory's "." binds itself; ".." binds a directory; every binding
// target exists). fsck() verifies them over a subtree and reports
// violations instead of asserting, so property tests and long random-op
// sequences can check the state after the fact.
#pragma once

#include <string>
#include <vector>

#include "fs/file_system.hpp"

namespace namecoh {

struct FsckReport {
  std::size_t directories = 0;
  std::size_t files = 0;
  std::size_t bindings = 0;
  std::vector<std::string> issues;

  [[nodiscard]] bool clean() const { return issues.empty(); }
};

/// Check every directory reachable from `root` (through any binding,
/// including dots).
FsckReport fsck(const NamingGraph& graph, EntityId root);

}  // namespace namecoh
