// A hierarchical file system as a naming graph (§2, §5).
//
// Directories are context objects; files are data objects. Every directory
// carries the ordinary bindings "." (itself) and ".." (its parent), and a
// root's ".." points at itself — until a Newcastle-style super-root (§5.1)
// rebinds it, which is all it takes for '..'-above-root to work, because
// ".." is just a binding and the resolver treats it like any other name.
//
// A process sees the file system through a process context holding exactly
// the two bindings the paper describes for Unix (§5.1): "/" (its root
// directory) and "." (its working directory). make_process_context() builds
// one; the os module wraps it in a Process.
//
// The FileSystem does not own the NamingGraph: several subsystems (schemes,
// embedded-name documents) build structure in one shared graph.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/closure.hpp"
#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "util/status.hpp"

namespace namecoh {

class FileSystem {
 public:
  explicit FileSystem(NamingGraph& graph) : graph_(&graph) {}

  [[nodiscard]] NamingGraph& graph() { return *graph_; }
  [[nodiscard]] const NamingGraph& graph() const { return *graph_; }

  // --- Creation --------------------------------------------------------------

  /// Create a root directory: "." and ".." both bind to itself.
  EntityId make_root(std::string label);

  /// Create a subdirectory of `parent`. Fails if the name is taken.
  Result<EntityId> mkdir(EntityId parent, const Name& name);

  /// Create a regular file in `dir`. Fails if the name is taken.
  Result<EntityId> create_file(EntityId dir, const Name& name,
                               std::string data = {});

  /// Bind an existing entity under a new name (hard link). Does not touch
  /// the target's "..": the link is an alias, not a re-parenting.
  Status link(EntityId dir, const Name& name, EntityId target);

  /// Remove a binding. The target entity stays in the graph (entities are
  /// never destroyed; unreachable ones simply have no names).
  Status unlink(EntityId dir, const Name& name);

  // --- Structure inspection ---------------------------------------------------

  [[nodiscard]] bool is_dir(EntityId id) const {
    return graph_->is_context_object(id);
  }
  [[nodiscard]] bool is_file(EntityId id) const {
    return graph_->is_data_object(id);
  }
  /// The directory a directory's ".." binds to.
  [[nodiscard]] Result<EntityId> parent_of(EntityId dir) const;
  /// Directory entries excluding "." and "..".
  [[nodiscard]] std::vector<std::pair<Name, EntityId>> list(
      EntityId dir) const;
  /// Depth-first visit of the subtree under `dir` following tree edges
  /// (bindings other than "." / ".."), cycle-safe. The visitor receives
  /// (path-from-dir, entity).
  void walk(EntityId dir,
            const std::function<void(const CompoundName&, EntityId)>&
                visitor) const;

  // --- Path-based convenience ---------------------------------------------------

  /// Resolve a path string in a process context (bindings "/" and ".").
  [[nodiscard]] Resolution resolve_path(const Context& process_context,
                                        std::string_view path) const;

  /// mkdir -p relative to a directory: creates missing intermediate
  /// directories; returns the final one. `path` must be relative
  /// components like "a/b/c" (no leading '/').
  Result<EntityId> mkdir_p(EntityId dir, std::string_view path);

  /// Create (or overwrite) a file at a relative path, creating directories
  /// as needed.
  Result<EntityId> create_file_at(EntityId dir, std::string_view path,
                                  std::string data = {});

  /// Build the two-binding process context of §5.1.
  [[nodiscard]] static Context make_process_context(EntityId root,
                                                    EntityId cwd);

  // --- Mounting & federation (§5.2, §5.3) ---------------------------------------

  /// Attach a subtree under a name in `dir` *without* touching the
  /// subtree's "..". Used to attach one shared naming graph in many client
  /// trees simultaneously (Andrew's /vice, DCE's /...): each client sees
  /// the same objects.
  Status attach(EntityId dir, const Name& name, EntityId subtree_root);

  /// Mount: attach and re-parent (subtree's ".." is rebound to `dir`).
  /// Used when the subtree logically moves into the tree, e.g. gluing
  /// machine trees under a Newcastle super-root.
  Status mount(EntityId dir, const Name& name, EntityId subtree_root);

  /// Build a Newcastle super-root (§5.1, Fig. 3): a fresh root whose
  /// entries are the given machine trees; each machine root's ".." is
  /// rebound to the super-root so '..' climbs above a machine's root.
  EntityId make_super_root(
      std::string label,
      const std::vector<std::pair<Name, EntityId>>& machine_roots);

  // --- Replication (weak coherence, §5) -------------------------------------------

  /// Create a replica of `original` (a file) bound in `dir`: a distinct
  /// data object with the same contents, placed in the same replica group.
  Result<EntityId> replicate_file(EntityId original, EntityId dir,
                                  const Name& name);

  // --- Subtree operations (§6 Example 2, Fig. 6) -------------------------------------

  /// Deep-copy the subtree rooted at `subtree_root` and bind the copy in
  /// `dest_dir` under `name`. Follows tree edges; sharing and cycles inside
  /// the subtree are preserved (memoized). Embedded names in files are
  /// copied verbatim — whether they still mean the same thing afterwards is
  /// precisely the Fig. 6 experiment.
  Result<EntityId> copy_subtree(EntityId subtree_root, EntityId dest_dir,
                                const Name& name);

  /// Unbind `name` from `src_dir` and bind it in `dest_dir` under
  /// `new_name`, re-parenting a moved directory.
  Status move_entry(EntityId src_dir, const Name& name, EntityId dest_dir,
                    const Name& new_name);

 private:
  Result<EntityId> require_dir(EntityId id, std::string_view op) const;
  EntityId copy_rec(EntityId node,
                    std::unordered_map<EntityId, EntityId>& memo);

  NamingGraph* graph_;
};

}  // namespace namecoh
