#include "fs/fsck.hpp"

#include <deque>
#include <unordered_set>

namespace namecoh {

FsckReport fsck(const NamingGraph& graph, EntityId root) {
  FsckReport report;
  if (!graph.is_context_object(root)) {
    report.issues.push_back("root is not a directory");
    return report;
  }
  std::unordered_set<EntityId> seen{root};
  std::deque<EntityId> frontier{root};
  while (!frontier.empty()) {
    EntityId dir = frontier.front();
    frontier.pop_front();
    ++report.directories;
    const Context& ctx = graph.context(dir);
    const std::string& label = graph.label(dir);

    EntityId self = ctx(Name("."));
    if (!self.valid()) {
      report.issues.push_back("'" + label + "': missing '.' binding");
    } else if (self != dir) {
      report.issues.push_back("'" + label + "': '.' does not bind itself");
    }
    EntityId parent = ctx(Name(".."));
    if (!parent.valid()) {
      report.issues.push_back("'" + label + "': missing '..' binding");
    } else if (!graph.is_context_object(parent)) {
      report.issues.push_back("'" + label +
                              "': '..' binds a non-directory");
    }

    for (const auto& [name, target] : ctx.bindings()) {
      ++report.bindings;
      if (!graph.contains(target)) {
        report.issues.push_back("'" + label + "/" + name.text() +
                                "': dangling binding");
        continue;
      }
      if (name.is_cwd() || name.is_parent()) continue;
      if (graph.is_data_object(target)) {
        ++report.files;
      } else if (graph.is_context_object(target) &&
                 seen.insert(target).second) {
        frontier.push_back(target);
      }
    }
  }
  return report;
}

}  // namespace namecoh
