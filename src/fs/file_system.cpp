#include "fs/file_system.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace namecoh {
namespace {

const Name kDot = Name::cwd();
const Name kDotDot = Name::parent();
const Name kSlash = Name::root();

}  // namespace

Result<EntityId> FileSystem::require_dir(EntityId id,
                                         std::string_view op) const {
  if (!graph_->contains(id)) {
    return invalid_argument_error(std::string(op) + ": unknown entity");
  }
  if (!graph_->is_context_object(id)) {
    return not_a_context_error(std::string(op) + ": '" + graph_->label(id) +
                               "' is not a directory");
  }
  return id;
}

EntityId FileSystem::make_root(std::string label) {
  EntityId root = graph_->add_context_object(std::move(label));
  graph_->context(root).bind(kDot, root);
  graph_->context(root).bind(kDotDot, root);
  return root;
}

Result<EntityId> FileSystem::mkdir(EntityId parent, const Name& name) {
  auto dir = require_dir(parent, "mkdir");
  if (!dir.is_ok()) return dir.status();
  if (graph_->context(parent).contains(name)) {
    return already_exists_error("mkdir: '" + name.text() + "' exists in '" +
                                graph_->label(parent) + "'");
  }
  EntityId child = graph_->add_context_object(name.text());
  graph_->context(child).bind(kDot, child);
  graph_->context(child).bind(kDotDot, parent);
  graph_->context(parent).bind(name, child);
  return child;
}

Result<EntityId> FileSystem::create_file(EntityId dir, const Name& name,
                                         std::string data) {
  auto d = require_dir(dir, "create_file");
  if (!d.is_ok()) return d.status();
  if (graph_->context(dir).contains(name)) {
    return already_exists_error("create_file: '" + name.text() +
                                "' exists in '" + graph_->label(dir) + "'");
  }
  EntityId file = graph_->add_data_object(name.text(), std::move(data));
  graph_->context(dir).bind(name, file);
  return file;
}

Status FileSystem::link(EntityId dir, const Name& name, EntityId target) {
  auto d = require_dir(dir, "link");
  if (!d.is_ok()) return d.status();
  if (!graph_->contains(target)) {
    return invalid_argument_error("link: unknown target");
  }
  if (graph_->context(dir).contains(name)) {
    return already_exists_error("link: '" + name.text() + "' exists in '" +
                                graph_->label(dir) + "'");
  }
  return graph_->bind(dir, name, target);
}

Status FileSystem::unlink(EntityId dir, const Name& name) {
  auto d = require_dir(dir, "unlink");
  if (!d.is_ok()) return d.status();
  if (name.is_cwd() || name.is_parent()) {
    return invalid_argument_error("unlink: refusing to remove '" +
                                  name.text() + "'");
  }
  return graph_->unbind(dir, name);
}

Result<EntityId> FileSystem::parent_of(EntityId dir) const {
  auto d = require_dir(dir, "parent_of");
  if (!d.is_ok()) return d.status();
  return graph_->lookup(dir, kDotDot);
}

std::vector<std::pair<Name, EntityId>> FileSystem::list(EntityId dir) const {
  std::vector<std::pair<Name, EntityId>> out;
  if (!graph_->is_context_object(dir)) return out;
  for (const auto& [name, target] : graph_->context(dir).bindings()) {
    if (name.is_cwd() || name.is_parent()) continue;
    out.emplace_back(name, target);
  }
  // Context iteration is atom order; directory listings promise text order.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void FileSystem::walk(
    EntityId dir,
    const std::function<void(const CompoundName&, EntityId)>& visitor) const {
  if (!graph_->is_context_object(dir)) return;
  std::unordered_set<EntityId> visited;
  visited.insert(dir);
  // Iterative DFS carrying the path from `dir`.
  struct Frame {
    EntityId node;
    std::vector<Name> path;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{dir, {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    for (const auto& [name, target] : list(frame.node)) {
      std::vector<Name> path = frame.path;
      path.push_back(name);
      visitor(CompoundName(path), target);
      if (graph_->is_context_object(target) &&
          visited.insert(target).second) {
        stack.push_back(Frame{target, std::move(path)});
      }
    }
  }
}

Resolution FileSystem::resolve_path(const Context& process_context,
                                    std::string_view path) const {
  auto name = CompoundName::parse_path(path);
  if (!name.is_ok()) {
    Resolution res;
    res.status = name.status();
    return res;
  }
  return resolve(*graph_, process_context, name.value());
}

Result<EntityId> FileSystem::mkdir_p(EntityId dir, std::string_view path) {
  auto d = require_dir(dir, "mkdir_p");
  if (!d.is_ok()) return d.status();
  if (!path.empty() && path.front() == '/') {
    return invalid_argument_error("mkdir_p: path must be relative");
  }
  EntityId current = dir;
  for (const std::string& piece : split(path, '/', /*skip_empty=*/true)) {
    auto name = Name::make(piece);
    if (!name.is_ok()) return name.status();
    auto existing = graph_->context(current).lookup(name.value());
    if (existing.has_value()) {
      if (!graph_->is_context_object(*existing)) {
        return not_a_context_error("mkdir_p: '" + piece +
                                   "' exists and is not a directory");
      }
      current = *existing;
    } else {
      auto made = mkdir(current, name.value());
      if (!made.is_ok()) return made.status();
      current = made.value();
    }
  }
  return current;
}

Result<EntityId> FileSystem::create_file_at(EntityId dir,
                                            std::string_view path,
                                            std::string data) {
  auto slash = path.rfind('/');
  EntityId parent = dir;
  std::string_view base = path;
  if (slash != std::string_view::npos) {
    auto made = mkdir_p(dir, path.substr(0, slash));
    if (!made.is_ok()) return made.status();
    parent = made.value();
    base = path.substr(slash + 1);
  }
  auto name = Name::make(std::string(base));
  if (!name.is_ok()) return name.status();
  auto existing = graph_->context(parent).lookup(name.value());
  if (existing.has_value()) {
    if (!graph_->is_data_object(*existing)) {
      return already_exists_error("create_file_at: '" + std::string(base) +
                                  "' exists and is not a file");
    }
    graph_->set_data(*existing, std::move(data));
    return *existing;
  }
  return create_file(parent, name.value(), std::move(data));
}

Context FileSystem::make_process_context(EntityId root, EntityId cwd) {
  Context ctx;
  ctx.bind(kSlash, root);
  ctx.bind(kDot, cwd);
  return ctx;
}

Status FileSystem::attach(EntityId dir, const Name& name,
                          EntityId subtree_root) {
  auto d = require_dir(dir, "attach");
  if (!d.is_ok()) return d.status();
  auto s = require_dir(subtree_root, "attach(subtree)");
  if (!s.is_ok()) return s.status();
  if (graph_->context(dir).contains(name)) {
    return already_exists_error("attach: '" + name.text() + "' exists in '" +
                                graph_->label(dir) + "'");
  }
  return graph_->bind(dir, name, subtree_root);
}

Status FileSystem::mount(EntityId dir, const Name& name,
                         EntityId subtree_root) {
  Status attached = attach(dir, name, subtree_root);
  if (!attached.is_ok()) return attached;
  graph_->context(subtree_root).bind(kDotDot, dir);
  return Status::ok();
}

EntityId FileSystem::make_super_root(
    std::string label,
    const std::vector<std::pair<Name, EntityId>>& machine_roots) {
  EntityId super = make_root(std::move(label));
  for (const auto& [name, root] : machine_roots) {
    Status mounted = mount(super, name, root);
    NAMECOH_CHECK(mounted.is_ok(),
                  "make_super_root: " + mounted.to_string());
  }
  return super;
}

Result<EntityId> FileSystem::replicate_file(EntityId original, EntityId dir,
                                            const Name& name) {
  if (!graph_->is_data_object(original)) {
    return invalid_argument_error("replicate_file: original is not a file");
  }
  ReplicaGroupId group = graph_->replica_group(original);
  if (!group.valid()) {
    group = graph_->new_replica_group();
    graph_->set_replica_group(original, group);
  }
  auto copy = create_file(dir, name, graph_->data(original));
  if (!copy.is_ok()) return copy.status();
  for (const auto& embedded : graph_->embedded_names(original)) {
    graph_->add_embedded_name(copy.value(), embedded);
  }
  graph_->set_replica_group(copy.value(), group);
  return copy;
}

EntityId FileSystem::copy_rec(EntityId node,
                              std::unordered_map<EntityId, EntityId>& memo) {
  auto it = memo.find(node);
  if (it != memo.end()) return it->second;

  if (graph_->is_data_object(node)) {
    EntityId copy =
        graph_->add_data_object(graph_->label(node), graph_->data(node));
    for (const auto& embedded : graph_->embedded_names(node)) {
      graph_->add_embedded_name(copy, embedded);
    }
    // A copy is a new object, not a replica: replica groups are only
    // created by replicate_file, where the system promises state equality.
    memo[node] = copy;
    return copy;
  }
  if (!graph_->is_context_object(node)) {
    memo[node] = node;  // activities are never copied; keep the reference
    return node;
  }
  EntityId copy = graph_->add_context_object(graph_->label(node));
  memo[node] = copy;  // memoize before recursing: subtrees may be cyclic
  graph_->context(copy).bind(kDot, copy);
  // The recursion adds entities, which may reallocate the graph's record
  // storage and move the Context objects — but a Context's binding array is
  // heap-allocated and survives the move, and the recursion never binds
  // into `node` itself (only into fresh copies), so this view stays valid.
  const std::span<const Binding> bindings = graph_->context(node).bindings();
  // ".." is fixed up by the caller for the subtree root; interior
  // directories get their copied parent via the recursion below.
  for (const auto& [name, target] : bindings) {
    if (name.is_cwd()) continue;
    if (name.is_parent()) continue;  // re-established structurally below
    EntityId target_copy = copy_rec(target, memo);
    graph_->context(copy).bind(name, target_copy);
    if (graph_->is_context_object(target_copy) &&
        memo.count(target) != 0 && target_copy != target) {
      // Point the copied child's ".." at its copied parent when the child
      // was actually copied (not an activity passthrough).
      graph_->context(target_copy).bind(kDotDot, copy);
    }
  }
  return copy;
}

Result<EntityId> FileSystem::copy_subtree(EntityId subtree_root,
                                          EntityId dest_dir,
                                          const Name& name) {
  auto s = require_dir(subtree_root, "copy_subtree");
  if (!s.is_ok()) return s.status();
  auto d = require_dir(dest_dir, "copy_subtree(dest)");
  if (!d.is_ok()) return d.status();
  if (graph_->context(dest_dir).contains(name)) {
    return already_exists_error("copy_subtree: '" + name.text() +
                                "' exists in destination");
  }
  std::unordered_map<EntityId, EntityId> memo;
  EntityId copy = copy_rec(subtree_root, memo);
  graph_->context(copy).bind(kDotDot, dest_dir);
  graph_->context(dest_dir).bind(name, copy);
  graph_->set_label(copy, name.text());
  return copy;
}

Status FileSystem::move_entry(EntityId src_dir, const Name& name,
                              EntityId dest_dir, const Name& new_name) {
  auto s = require_dir(src_dir, "move_entry");
  if (!s.is_ok()) return s.status();
  auto d = require_dir(dest_dir, "move_entry(dest)");
  if (!d.is_ok()) return d.status();
  auto target = graph_->lookup(src_dir, name);
  if (!target.is_ok()) return target.status();
  if (graph_->context(dest_dir).contains(new_name)) {
    return already_exists_error("move_entry: '" + new_name.text() +
                                "' exists in destination");
  }
  Status unbound = graph_->unbind(src_dir, name);
  if (!unbound.is_ok()) return unbound;
  Status bound = graph_->bind(dest_dir, new_name, target.value());
  if (!bound.is_ok()) return bound;
  if (graph_->is_context_object(target.value())) {
    graph_->context(target.value()).bind(kDotDot, dest_dir);
  }
  return Status::ok();
}

}  // namespace namecoh
