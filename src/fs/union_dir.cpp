#include "fs/union_dir.hpp"

namespace namecoh {

Result<EntityId> UnionViews::create(std::string label,
                                    std::vector<EntityId> members) {
  NamingGraph& graph = fs_->graph();
  for (EntityId member : members) {
    if (!graph.is_context_object(member)) {
      return invalid_argument_error("union member is not a directory");
    }
  }
  EntityId dir = fs_->make_root(std::move(label));
  members_[dir] = std::move(members);
  Status status = materialize(dir);
  if (!status.is_ok()) return status;
  return dir;
}

Status UnionViews::materialize(EntityId union_dir) {
  NamingGraph& graph = fs_->graph();
  auto it = members_.find(union_dir);
  if (it == members_.end()) {
    return not_found_error("not a union directory");
  }
  // Wipe everything except the dots, then merge members in order; the
  // first binding of a name wins.
  Context& ctx = graph.context(union_dir);
  std::vector<Name> stale;
  for (const auto& [name, target] : ctx.bindings()) {
    if (!name.is_cwd() && !name.is_parent()) stale.push_back(name);
  }
  for (const Name& name : stale) ctx.unbind(name);
  for (EntityId member : it->second) {
    if (!graph.is_context_object(member)) {
      return invalid_argument_error("union member vanished");
    }
    // A union listed as its own member contributes nothing (its non-dot
    // bindings were just wiped) — and binding into ctx while viewing its
    // own binding array would invalidate the view.
    if (member == union_dir) continue;
    for (const auto& [name, target] : graph.context(member).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (!ctx.contains(name)) ctx.bind(name, target);
    }
  }
  return Status::ok();
}

Status UnionViews::refresh(EntityId union_dir) {
  return materialize(union_dir);
}

Status UnionViews::refresh_all() {
  for (const auto& [dir, _] : members_) {
    Status status = materialize(dir);
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

Result<std::vector<EntityId>> UnionViews::members_of(
    EntityId union_dir) const {
  auto it = members_.find(union_dir);
  if (it == members_.end()) {
    return not_found_error("not a union directory");
  }
  return it->second;
}

Status UnionViews::set_members(EntityId union_dir,
                               std::vector<EntityId> members) {
  auto it = members_.find(union_dir);
  if (it == members_.end()) {
    return not_found_error("not a union directory");
  }
  for (EntityId member : members) {
    if (!fs_->graph().is_context_object(member)) {
      return invalid_argument_error("union member is not a directory");
    }
  }
  it->second = std::move(members);
  return materialize(union_dir);
}

}  // namespace namecoh
