#include "fs/snapshot.hpp"

#include <charconv>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"

namespace namecoh {
namespace {

/// Strict non-throwing integer parse for untrusted snapshot fields.
Result<std::size_t> parse_index(const std::string& text) {
  std::size_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    return invalid_argument_error("bad integer field '" + text + "'");
  }
  return value;
}

std::string to_hex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  if (out.empty()) out = "-";  // keep the column non-empty
  return out;
}

Result<std::string> from_hex(std::string_view hex) {
  if (hex == "-") return std::string{};
  if (hex.size() % 2 != 0) return invalid_argument_error("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return invalid_argument_error("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

Result<std::string> export_subtree(
    const NamingGraph& graph, EntityId root,
    const std::unordered_set<EntityId>& boundary) {
  if (!graph.is_context_object(root)) {
    return not_a_context_error("export_subtree: root is not a directory");
  }
  if (boundary.contains(root)) {
    return invalid_argument_error("export_subtree: root is on the boundary");
  }

  // Pass 1: collect the subtree closure (BFS over non-dot edges, stopping
  // at boundary entities and activities).
  std::unordered_map<EntityId, std::size_t> index;
  std::vector<EntityId> order;
  std::size_t cut = 0;
  std::deque<EntityId> frontier{root};
  index[root] = 0;
  order.push_back(root);
  while (!frontier.empty()) {
    EntityId node = frontier.front();
    frontier.pop_front();
    if (!graph.is_context_object(node)) continue;
    for (const auto& [name, target] : graph.context(node).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (graph.is_activity(target) || boundary.contains(target)) {
        ++cut;
        continue;
      }
      if (index.emplace(target, order.size()).second) {
        order.push_back(target);
        if (graph.is_context_object(target)) frontier.push_back(target);
      }
    }
  }

  // Pass 2: emit records.
  std::ostringstream os;
  os << "namecoh-snapshot v1 " << cut << '\n';
  for (EntityId node : order) {
    std::size_t idx = index.at(node);
    if (graph.is_context_object(node)) {
      os << "D\t" << idx << '\t' << to_hex(graph.label(node)) << '\n';
    } else {
      os << "F\t" << idx << '\t' << to_hex(graph.label(node)) << '\t'
         << to_hex(graph.data(node)) << '\n';
      for (const CompoundName& embedded : graph.embedded_names(node)) {
        os << "N\t" << idx << '\t' << to_hex(embedded.to_path()) << '\n';
      }
    }
  }
  for (EntityId node : order) {
    if (!graph.is_context_object(node)) continue;
    for (const auto& [name, target] : graph.context(node).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      auto it = index.find(target);
      if (it == index.end()) continue;  // cut edge
      os << "E\t" << index.at(node) << '\t' << to_hex(name.text()) << '\t'
         << it->second << '\n';
    }
  }
  os << "R\t0\n";
  return os.str();
}

Result<ImportReport> import_snapshot(FileSystem& fs, EntityId dest_dir,
                                     const Name& name,
                                     const std::string& snapshot) {
  NamingGraph& graph = fs.graph();
  if (!graph.is_context_object(dest_dir)) {
    return not_a_context_error("import_snapshot: destination not a dir");
  }
  if (graph.context(dest_dir).contains(name)) {
    return already_exists_error("import_snapshot: name taken");
  }

  std::vector<std::string> lines = split(snapshot, '\n');
  if (lines.empty() || !starts_with(lines[0], "namecoh-snapshot v1")) {
    return invalid_argument_error("not a namecoh snapshot");
  }
  ImportReport report;
  {
    auto header = split(lines[0], ' ');
    if (header.size() >= 3) {
      auto cut = parse_index(header[2]);
      if (!cut.is_ok()) return cut.status();
      report.external_refs_cut = cut.value();
    }
  }

  std::unordered_map<std::size_t, EntityId> entities;
  struct PendingEdge {
    std::size_t from;
    std::string name;
    std::size_t to;
  };
  std::vector<PendingEdge> edges;
  std::size_t root_index = ~std::size_t{0};

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> f = split(lines[i], '\t');
    const std::string& kind = f[0];
    auto need = [&](std::size_t n) { return f.size() >= n; };
    if (kind == "D") {
      if (!need(3)) return invalid_argument_error("bad D record");
      auto label = from_hex(f[2]);
      if (!label.is_ok()) return label.status();
      auto idx = parse_index(f[1]);
      if (!idx.is_ok()) return idx.status();
      EntityId dir = graph.add_context_object(label.value());
      graph.context(dir).bind(Name("."), dir);
      graph.context(dir).bind(Name(".."), dir);  // fixed up below
      entities[idx.value()] = dir;
    } else if (kind == "F") {
      if (!need(4)) return invalid_argument_error("bad F record");
      auto label = from_hex(f[2]);
      auto data = from_hex(f[3]);
      if (!label.is_ok()) return label.status();
      if (!data.is_ok()) return data.status();
      auto idx = parse_index(f[1]);
      if (!idx.is_ok()) return idx.status();
      entities[idx.value()] =
          graph.add_data_object(label.value(), std::move(data).value());
      ++report.files;
    } else if (kind == "N") {
      if (!need(3)) return invalid_argument_error("bad N record");
      auto idx = parse_index(f[1]);
      if (!idx.is_ok()) return idx.status();
      auto it = entities.find(idx.value());
      if (it == entities.end() || !graph.is_data_object(it->second)) {
        return invalid_argument_error("N record must follow its F record");
      }
      auto path = from_hex(f[2]);
      if (!path.is_ok()) return path.status();
      auto parsed = CompoundName::parse_relative(path.value());
      if (!parsed.is_ok()) return parsed.status();
      graph.add_embedded_name(it->second, std::move(parsed).value());
      ++report.embedded_names;
    } else if (kind == "E") {
      if (!need(4)) return invalid_argument_error("bad E record");
      auto edge_name = from_hex(f[2]);
      if (!edge_name.is_ok()) return edge_name.status();
      auto from_idx = parse_index(f[1]);
      auto to_idx = parse_index(f[3]);
      if (!from_idx.is_ok()) return from_idx.status();
      if (!to_idx.is_ok()) return to_idx.status();
      edges.push_back(PendingEdge{from_idx.value(),
                                  std::move(edge_name).value(),
                                  to_idx.value()});
    } else if (kind == "R") {
      if (!need(2)) return invalid_argument_error("bad R record");
      auto idx = parse_index(f[1]);
      if (!idx.is_ok()) return idx.status();
      root_index = idx.value();
    } else {
      return invalid_argument_error("unknown record kind '" + kind + "'");
    }
  }
  if (!entities.contains(root_index)) {
    return invalid_argument_error("snapshot has no root record");
  }

  for (const PendingEdge& edge : edges) {
    auto from = entities.find(edge.from);
    auto to = entities.find(edge.to);
    if (from == entities.end() || to == entities.end()) {
      return invalid_argument_error("edge references unknown index");
    }
    auto parsed = Name::make(edge.name);
    if (!parsed.is_ok()) return parsed.status();
    Status bound = graph.bind(from->second, parsed.value(), to->second);
    if (!bound.is_ok()) return bound;
    // Re-establish '..' for child directories (last writer wins on DAGs,
    // matching copy_subtree semantics).
    if (graph.is_context_object(to->second)) {
      graph.context(to->second).bind(Name(".."), from->second);
    }
    ++report.edges;
  }

  report.root = entities.at(root_index);
  report.directories = entities.size() - report.files;
  graph.context(report.root).bind(Name(".."), dest_dir);
  Status attached = graph.bind(dest_dir, name, report.root);
  if (!attached.is_ok()) return attached;
  graph.set_label(report.root, name.text());
  return report;
}

}  // namespace namecoh
