// Subtree snapshots: a portable text format for naming-graph subtrees.
//
// §5.3's federations copy and move structured objects between autonomous
// systems that do NOT share a naming graph — a copy crosses an
// administrative boundary as bytes, not as shared entity ids. Snapshot
// export/import models that: export_subtree() serializes everything
// reachable from a directory (structure, file payloads, embedded names,
// internal sharing and cycles); import_snapshot() materializes it in any
// graph, producing fresh entities.
//
// What survives the trip is exactly what Fig. 6 predicts: structure and
// embedded names (so R(file) resolution still works in the copy); what
// cannot survive is entity identity — replica-group membership and links
// to entities *outside* the subtree are dropped, and the importer reports
// how many such external references were cut.
//
// Format (line-oriented, one record per line, '\t'-separated):
//   namecoh-snapshot v1
//   D <index> <label>                  directory
//   F <index> <label> <data-hex>       file
//   E <dir-index> <name> <child-index> edge (tree edge or internal link)
//   N <file-index> <embedded-path>     embedded name
//   R <root-index>                     subtree root marker
#pragma once

#include <string>
#include <unordered_set>

#include "fs/file_system.hpp"

namespace namecoh {

struct ImportReport {
  EntityId root;                    ///< the imported subtree's root
  std::size_t directories = 0;
  std::size_t files = 0;
  std::size_t edges = 0;
  std::size_t embedded_names = 0;
  std::size_t external_refs_cut = 0;  ///< edges to entities outside the
                                      ///< subtree, dropped at export
};

/// Serialize the subtree reachable from `root` through tree edges
/// (bindings other than "."/".."). Edges to activities, and edges to
/// entities listed in `boundary` (e.g. a shared tree attached inside the
/// subtree that must NOT travel with it), are cut; the cut count is stored
/// in the snapshot header and surfaces in ImportReport::external_refs_cut.
/// All strings are hex-encoded in the format, so labels, payloads and
/// names may contain arbitrary bytes.
Result<std::string> export_subtree(
    const NamingGraph& graph, EntityId root,
    const std::unordered_set<EntityId>& boundary = {});

/// Materialize a snapshot under `dest_dir`/`name` in (possibly another)
/// graph.
Result<ImportReport> import_snapshot(FileSystem& fs, EntityId dest_dir,
                                     const Name& name,
                                     const std::string& snapshot);

}  // namespace namecoh
