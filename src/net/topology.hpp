// The internetwork: networks, machines, and process endpoints, with the
// renumbering (reconfiguration) operations of §6 Example 1.
//
// Identity vs address: networks, machines and endpoints have *stable ids*
// (NetworkId, MachineId, EndpointId) that never change, and *addresses*
// (naddr, maddr, laddr) that renumbering changes. A pid names an address
// path, not an identity — which is exactly why fully qualified pids go
// stale when a machine or network is renamed, while pids qualified only
// inside the renamed scope keep working.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "util/ids.hpp"
#include "util/status.hpp"

namespace namecoh {

struct NetworkTag {};
using NetworkId = StrongId<NetworkTag>;
struct MachineTag {};
using MachineId = StrongId<MachineTag>;
struct EndpointTag {};
using EndpointId = StrongId<EndpointTag>;

class Internetwork {
 public:
  Internetwork() = default;
  Internetwork(const Internetwork&) = delete;
  Internetwork& operator=(const Internetwork&) = delete;
  Internetwork(Internetwork&&) = default;
  Internetwork& operator=(Internetwork&&) = default;

  // --- Construction --------------------------------------------------------

  NetworkId add_network(std::string label);
  /// Add a machine to a network; maddr is allocated (unique within the
  /// network, never reused unless reuse is enabled).
  MachineId add_machine(NetworkId network, std::string label);
  /// Add a process endpoint on a machine; laddr allocated likewise.
  EndpointId add_endpoint(MachineId machine, std::string label);
  Status remove_endpoint(EndpointId endpoint);

  /// When enabled, freed/renumbered-away addresses may be handed out again
  /// — modelling the dangerous reuse case where a stale fully qualified pid
  /// silently denotes a *different* process.
  void set_address_reuse(bool enabled) { reuse_addresses_ = enabled; }

  // --- Inspection -----------------------------------------------------------

  [[nodiscard]] std::size_t network_count() const { return networks_.size(); }
  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] std::size_t endpoint_count() const;

  [[nodiscard]] bool has_endpoint(EndpointId endpoint) const;
  /// Current fully qualified location of a live endpoint.
  [[nodiscard]] Result<Location> location_of(EndpointId endpoint) const;
  [[nodiscard]] Result<MachineId> machine_of(EndpointId endpoint) const;
  [[nodiscard]] Result<NetworkId> network_of(MachineId machine) const;
  [[nodiscard]] Result<Addr> naddr_of(NetworkId network) const;
  [[nodiscard]] Result<Addr> maddr_of(MachineId machine) const;

  [[nodiscard]] const std::string& network_label(NetworkId network) const;
  [[nodiscard]] const std::string& machine_label(MachineId machine) const;
  [[nodiscard]] const std::string& endpoint_label(EndpointId endpoint) const;

  /// The endpoint currently listening at a fully qualified location, if any.
  [[nodiscard]] Result<EndpointId> endpoint_at(const Location& loc) const;

  [[nodiscard]] std::vector<EndpointId> endpoints() const;
  [[nodiscard]] std::vector<EndpointId> endpoints_on(MachineId machine) const;
  [[nodiscard]] std::vector<MachineId> machines() const;
  [[nodiscard]] std::vector<MachineId> machines_in(NetworkId network) const;
  [[nodiscard]] std::vector<NetworkId> networks() const;

  // --- Reconfiguration (§6: relocation / renumbering) -----------------------

  /// Give a machine a fresh maddr within its network. All fully qualified
  /// and (0,m,l) pids held elsewhere go stale; (0,0,l) pids held on the
  /// machine itself keep working.
  Status renumber_machine(MachineId machine);
  /// Give a network a fresh naddr. (n,m,l) pids held in other networks go
  /// stale; everything inside the network keeps working.
  Status renumber_network(NetworkId network);
  /// Move a machine to another network with a fresh maddr there.
  Status move_machine(MachineId machine, NetworkId destination);

  /// Total renumber operations performed (for experiment bookkeeping).
  [[nodiscard]] std::uint64_t reconfigurations() const {
    return reconfigurations_;
  }

 private:
  struct NetworkRec {
    std::string label;
    Addr naddr = 0;
    Addr next_maddr = 1;
    std::vector<MachineId> machines;
    std::vector<Addr> free_maddrs;  // only used when reuse enabled
  };
  struct MachineRec {
    std::string label;
    NetworkId network;
    Addr maddr = 0;
    Addr next_laddr = 1;
    std::vector<EndpointId> endpoints;
    std::vector<Addr> free_laddrs;
  };
  struct EndpointRec {
    std::string label;
    MachineId machine;
    Addr laddr = 0;
    bool alive = false;
  };

  Addr allocate_naddr();
  Addr allocate_maddr(NetworkRec& net);
  Addr allocate_laddr(MachineRec& mach);
  void reindex_machine(MachineId machine);
  void deindex_machine(MachineId machine);

  std::vector<NetworkRec> networks_;
  std::vector<MachineRec> machines_;
  std::vector<EndpointRec> endpoints_;
  std::unordered_map<Location, EndpointId> by_location_;
  Addr next_naddr_ = 1;
  std::vector<Addr> free_naddrs_;
  bool reuse_addresses_ = false;
  std::uint64_t reconfigurations_ = 0;
};

}  // namespace namecoh
