#include "net/topology.hpp"

namespace namecoh {
namespace {

template <typename Vec, typename Id>
bool index_ok(const Vec& vec, Id id) {
  return id.valid() && id.value() < vec.size();
}

}  // namespace

Addr Internetwork::allocate_naddr() {
  if (reuse_addresses_ && !free_naddrs_.empty()) {
    Addr a = free_naddrs_.back();
    free_naddrs_.pop_back();
    return a;
  }
  return next_naddr_++;
}

Addr Internetwork::allocate_maddr(NetworkRec& net) {
  if (reuse_addresses_ && !net.free_maddrs.empty()) {
    Addr a = net.free_maddrs.back();
    net.free_maddrs.pop_back();
    return a;
  }
  return net.next_maddr++;
}

Addr Internetwork::allocate_laddr(MachineRec& mach) {
  if (reuse_addresses_ && !mach.free_laddrs.empty()) {
    Addr a = mach.free_laddrs.back();
    mach.free_laddrs.pop_back();
    return a;
  }
  return mach.next_laddr++;
}

NetworkId Internetwork::add_network(std::string label) {
  NetworkRec rec;
  rec.label = std::move(label);
  rec.naddr = allocate_naddr();
  networks_.push_back(std::move(rec));
  return NetworkId(networks_.size() - 1);
}

MachineId Internetwork::add_machine(NetworkId network, std::string label) {
  NAMECOH_CHECK(index_ok(networks_, network), "unknown network");
  MachineRec rec;
  rec.label = std::move(label);
  rec.network = network;
  rec.maddr = allocate_maddr(networks_[network.value()]);
  machines_.push_back(std::move(rec));
  MachineId id(machines_.size() - 1);
  networks_[network.value()].machines.push_back(id);
  return id;
}

EndpointId Internetwork::add_endpoint(MachineId machine, std::string label) {
  NAMECOH_CHECK(index_ok(machines_, machine), "unknown machine");
  EndpointRec rec;
  rec.label = std::move(label);
  rec.machine = machine;
  rec.laddr = allocate_laddr(machines_[machine.value()]);
  rec.alive = true;
  endpoints_.push_back(std::move(rec));
  EndpointId id(endpoints_.size() - 1);
  machines_[machine.value()].endpoints.push_back(id);
  Location loc = location_of(id).value();
  by_location_[loc] = id;
  return id;
}

Status Internetwork::remove_endpoint(EndpointId endpoint) {
  if (!has_endpoint(endpoint)) {
    return not_found_error("remove_endpoint: no such endpoint");
  }
  EndpointRec& rec = endpoints_[endpoint.value()];
  by_location_.erase(location_of(endpoint).value());
  MachineRec& mach = machines_[rec.machine.value()];
  std::erase(mach.endpoints, endpoint);
  mach.free_laddrs.push_back(rec.laddr);
  rec.alive = false;
  return Status::ok();
}

std::size_t Internetwork::endpoint_count() const {
  std::size_t n = 0;
  for (const auto& rec : endpoints_) {
    if (rec.alive) ++n;
  }
  return n;
}

bool Internetwork::has_endpoint(EndpointId endpoint) const {
  return index_ok(endpoints_, endpoint) &&
         endpoints_[endpoint.value()].alive;
}

Result<Location> Internetwork::location_of(EndpointId endpoint) const {
  if (!has_endpoint(endpoint)) {
    return not_found_error("location_of: no such endpoint");
  }
  const EndpointRec& rec = endpoints_[endpoint.value()];
  const MachineRec& mach = machines_[rec.machine.value()];
  const NetworkRec& net = networks_[mach.network.value()];
  return Location{net.naddr, mach.maddr, rec.laddr};
}

Result<MachineId> Internetwork::machine_of(EndpointId endpoint) const {
  if (!has_endpoint(endpoint)) {
    return not_found_error("machine_of: no such endpoint");
  }
  return endpoints_[endpoint.value()].machine;
}

Result<NetworkId> Internetwork::network_of(MachineId machine) const {
  if (!index_ok(machines_, machine)) {
    return not_found_error("network_of: no such machine");
  }
  return machines_[machine.value()].network;
}

Result<Addr> Internetwork::naddr_of(NetworkId network) const {
  if (!index_ok(networks_, network)) {
    return not_found_error("naddr_of: no such network");
  }
  return networks_[network.value()].naddr;
}

Result<Addr> Internetwork::maddr_of(MachineId machine) const {
  if (!index_ok(machines_, machine)) {
    return not_found_error("maddr_of: no such machine");
  }
  return machines_[machine.value()].maddr;
}

const std::string& Internetwork::network_label(NetworkId network) const {
  NAMECOH_CHECK(index_ok(networks_, network), "unknown network");
  return networks_[network.value()].label;
}

const std::string& Internetwork::machine_label(MachineId machine) const {
  NAMECOH_CHECK(index_ok(machines_, machine), "unknown machine");
  return machines_[machine.value()].label;
}

const std::string& Internetwork::endpoint_label(EndpointId endpoint) const {
  NAMECOH_CHECK(index_ok(endpoints_, endpoint), "unknown endpoint");
  return endpoints_[endpoint.value()].label;
}

Result<EndpointId> Internetwork::endpoint_at(const Location& loc) const {
  auto it = by_location_.find(loc);
  if (it == by_location_.end()) {
    return unreachable_error("no endpoint at " + [&] {
      std::string s = "<" + std::to_string(loc.naddr) + "," +
                      std::to_string(loc.maddr) + "," +
                      std::to_string(loc.laddr) + ">";
      return s;
    }());
  }
  return it->second;
}

std::vector<EndpointId> Internetwork::endpoints() const {
  std::vector<EndpointId> out;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].alive) out.emplace_back(i);
  }
  return out;
}

std::vector<EndpointId> Internetwork::endpoints_on(MachineId machine) const {
  NAMECOH_CHECK(index_ok(machines_, machine), "unknown machine");
  return machines_[machine.value()].endpoints;
}

std::vector<MachineId> Internetwork::machines() const {
  std::vector<MachineId> out;
  for (std::size_t i = 0; i < machines_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<MachineId> Internetwork::machines_in(NetworkId network) const {
  NAMECOH_CHECK(index_ok(networks_, network), "unknown network");
  return networks_[network.value()].machines;
}

std::vector<NetworkId> Internetwork::networks() const {
  std::vector<NetworkId> out;
  for (std::size_t i = 0; i < networks_.size(); ++i) out.emplace_back(i);
  return out;
}

void Internetwork::deindex_machine(MachineId machine) {
  for (EndpointId ep : machines_[machine.value()].endpoints) {
    by_location_.erase(location_of(ep).value());
  }
}

void Internetwork::reindex_machine(MachineId machine) {
  for (EndpointId ep : machines_[machine.value()].endpoints) {
    by_location_[location_of(ep).value()] = ep;
  }
}

Status Internetwork::renumber_machine(MachineId machine) {
  if (!index_ok(machines_, machine)) {
    return not_found_error("renumber_machine: no such machine");
  }
  MachineRec& rec = machines_[machine.value()];
  NetworkRec& net = networks_[rec.network.value()];
  deindex_machine(machine);
  // Allocate the new address *before* freeing the old one: a renumber must
  // actually change the address, not hand the same one back.
  Addr fresh = allocate_maddr(net);
  if (reuse_addresses_) net.free_maddrs.push_back(rec.maddr);
  rec.maddr = fresh;
  reindex_machine(machine);
  ++reconfigurations_;
  return Status::ok();
}

Status Internetwork::renumber_network(NetworkId network) {
  if (!index_ok(networks_, network)) {
    return not_found_error("renumber_network: no such network");
  }
  NetworkRec& net = networks_[network.value()];
  for (MachineId m : net.machines) deindex_machine(m);
  Addr fresh = allocate_naddr();
  if (reuse_addresses_) free_naddrs_.push_back(net.naddr);
  net.naddr = fresh;
  for (MachineId m : net.machines) reindex_machine(m);
  ++reconfigurations_;
  return Status::ok();
}

Status Internetwork::move_machine(MachineId machine, NetworkId destination) {
  if (!index_ok(machines_, machine)) {
    return not_found_error("move_machine: no such machine");
  }
  if (!index_ok(networks_, destination)) {
    return not_found_error("move_machine: no such network");
  }
  MachineRec& rec = machines_[machine.value()];
  NetworkRec& from = networks_[rec.network.value()];
  NetworkRec& to = networks_[destination.value()];
  deindex_machine(machine);
  std::erase(from.machines, machine);
  if (reuse_addresses_) from.free_maddrs.push_back(rec.maddr);
  rec.network = destination;
  rec.maddr = allocate_maddr(to);
  to.machines.push_back(machine);
  reindex_machine(machine);
  ++reconfigurations_;
  return Status::ok();
}

}  // namespace namecoh
