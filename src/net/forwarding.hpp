// Forwarding tables: the classical alternative to partially qualified
// identifiers (ablation #3 in DESIGN.md).
//
// §6 Example 1 argues for pids that are qualified only as far as necessary,
// because renumbering then invalidates nothing inside the renamed scope.
// The conventional alternative keeps pids fully qualified and leaves a
// *forwarding address* behind on every renumbering — old location → new
// location — chased at resolution time (cf. mail forwarding, Emerald
// object mobility, 6LoWPAN renumbering proxies).
//
// This module implements that alternative so the two designs can be
// compared on identical reconfiguration workloads (bench_ex1_pqids):
// forwarding keeps stale pids working, but at the cost of state that grows
// with reconfiguration history and of lookup chains that lengthen with
// every renumbering of the same machine — whereas partial qualification is
// stateless.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace namecoh {

class ForwardingTable {
 public:
  /// Maximum chain length before giving up. `metrics` attaches the table to
  /// a shared registry ("forwarding.*" names); by default it owns one.
  explicit ForwardingTable(std::size_t max_hops = 64,
                           MetricsRegistry* metrics = nullptr);

  ForwardingTable(const ForwardingTable&) = delete;
  ForwardingTable& operator=(const ForwardingTable&) = delete;

  /// Record one forwarding edge old → current. An edge whose target chains
  /// back to `from` would make every lookup through it spin until the hop
  /// limit; such edges are refused (counted in "forwarding.cycles_refused").
  void add(const Location& from, const Location& to);

  [[nodiscard]] std::size_t entries() const { return table_.size(); }

  /// Resolve a (possibly stale) fully qualified location to the endpoint
  /// now reachable from it, chasing forwarding edges. Chains that resolve
  /// are path-compressed: every hop followed is rewritten to point straight
  /// at the final live location, so repeat lookups are O(1).
  [[nodiscard]] Result<EndpointId> resolve(const Internetwork& net,
                                           Location location);

  /// Chain length that resolve() would follow for `location` (0 = direct).
  [[nodiscard]] std::size_t chain_length(const Internetwork& net,
                                         Location location) const;

  /// Point-in-time copy of the table's counters ("forwarding.*"); index
  /// by bare field name, e.g. snapshot()["chased"].
  [[nodiscard]] StatsSnapshot snapshot() const {
    return StatsSnapshot(*metrics_, "forwarding.");
  }

  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return *metrics_; }

 private:
  std::unordered_map<Location, Location> table_;
  std::size_t max_hops_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* lookups_;
  Counter* chased_;
  Counter* exhausted_;
  Counter* dead_ends_;
  Counter* cycles_refused_;
  Counter* compressed_;
};

/// Renumber `machine`, recording forwarding addresses for every endpoint on
/// it. Drop-in replacement for Internetwork::renumber_machine in workloads
/// that use the forwarding design.
Status renumber_machine_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        MachineId machine);

/// Likewise for networks.
Status renumber_network_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        NetworkId network);

}  // namespace namecoh
