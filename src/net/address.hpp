// Partially qualified process identifiers (§6 Example 1, [Radia-Pachl 92]).
//
// A process with local address l on machine m in network n can be denoted,
// depending on the context of reference, by any of the pids
//     (0,0,0)   — itself only,
//     (0,0,l)   — from any process on the same machine,
//     (0,m,l)   — from any process in the same network,
//     (n,m,l)   — from anywhere (fully qualified).
// Zero is the reserved "unqualified" value for each field, and the
// qualified fields of a well-formed pid are always an outer suffix — i.e.
// (n,0,l) is malformed, since qualifying the network but not the machine
// names nothing.
//
// The point of partial qualification is survivability: when a machine or
// network is renumbered, pids qualified only *inside* the renamed scope
// remain valid, so the subsystem keeps its internal connections (§6). The
// price is that a pid embedded in a message is valid in the *sender's*
// context but not necessarily the receiver's; rebase() implements the
// paper's R(sender) rule by remapping the pid at the boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "util/hash.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Raw address field. 0 means "unqualified" in a Pid; real addresses are
/// always >= 1.
using Addr = std::uint32_t;
inline constexpr Addr kUnqualified = 0;

/// A fully qualified process location: all three fields non-zero.
struct Location {
  Addr naddr = 0;  ///< network address
  Addr maddr = 0;  ///< machine address within the network
  Addr laddr = 0;  ///< local address within the machine

  [[nodiscard]] bool is_valid() const {
    return naddr != kUnqualified && maddr != kUnqualified &&
           laddr != kUnqualified;
  }
  [[nodiscard]] bool same_machine(const Location& other) const {
    return naddr == other.naddr && maddr == other.maddr;
  }
  [[nodiscard]] bool same_network(const Location& other) const {
    return naddr == other.naddr;
  }

  friend auto operator<=>(const Location&, const Location&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Location& loc);
};

/// A possibly partially qualified process identifier.
struct Pid {
  Addr naddr = 0;
  Addr maddr = 0;
  Addr laddr = 0;

  /// The pid (0,0,0): "myself", usable by any process to denote itself.
  static constexpr Pid self() { return Pid{0, 0, 0}; }

  /// A fully qualified pid denoting the given location.
  static Pid fully_qualified(const Location& loc) {
    return Pid{loc.naddr, loc.maddr, loc.laddr};
  }

  /// Well-formed pids are exactly (0,0,0), (0,0,l), (0,m,l), (n,m,l) with
  /// each shown field non-zero.
  [[nodiscard]] bool is_well_formed() const;

  [[nodiscard]] bool is_self() const {
    return naddr == 0 && maddr == 0 && laddr == 0;
  }
  [[nodiscard]] bool is_fully_qualified() const {
    return naddr != 0 && maddr != 0 && laddr != 0;
  }
  /// Number of qualified (non-zero) fields: 0, 1, 2 or 3.
  [[nodiscard]] int qualification_level() const;

  friend auto operator<=>(const Pid&, const Pid&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Pid& pid);
  [[nodiscard]] std::string to_string() const;
};

/// Interpret `pid` in the context of a process at `reference`: fill the
/// unqualified fields from the reference location. (0,0,0) denotes the
/// referring process itself. Fails on malformed pids.
Result<Location> qualify(const Pid& pid, const Location& reference);

/// The minimal (least qualified) pid by which a process at `reference` can
/// denote `target`. If allow_self and target == reference, yields (0,0,0).
Pid relativize(const Location& target, const Location& reference,
               bool allow_self = false);

/// Remap a pid embedded in a message: `pid` is valid in the context of a
/// process at `sender`; produce the equivalent pid valid in the context of
/// a process at `receiver`. This is the mechanical form of the paper's
/// R(sender) resolution rule for exchanged names.
Result<Pid> rebase(const Pid& pid, const Location& sender,
                   const Location& receiver);

}  // namespace namecoh

template <>
struct std::hash<namecoh::Location> {
  std::size_t operator()(const namecoh::Location& loc) const noexcept {
    std::size_t h = 0;
    namecoh::hash_combine(h, loc.naddr);
    namecoh::hash_combine(h, loc.maddr);
    namecoh::hash_combine(h, loc.laddr);
    return h;
  }
};

template <>
struct std::hash<namecoh::Pid> {
  std::size_t operator()(const namecoh::Pid& pid) const noexcept {
    return std::hash<namecoh::Location>{}(
        namecoh::Location{pid.naddr, pid.maddr, pid.laddr});
  }
};
