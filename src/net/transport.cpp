#include "net/transport.hpp"

#include "util/log.hpp"

namespace namecoh {

Transport::Transport(Simulator& sim, Internetwork& net,
                     TransportConfig config, std::uint64_t seed,
                     MetricsRegistry* metrics)
    : sim_(sim), net_(net), config_(config), rng_(seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  sent_ = &metrics_->counter("transport.sent");
  delivered_ = &metrics_->counter("transport.delivered");
  dropped_ = &metrics_->counter("transport.dropped");
  unreachable_ = &metrics_->counter("transport.unreachable");
  misdelivered_ = &metrics_->counter("transport.misdelivered");
  pids_remapped_ = &metrics_->counter("transport.pids_remapped");
  remap_failures_ = &metrics_->counter("transport.remap_failures");
  bytes_sent_ = &metrics_->counter("transport.bytes_sent");
  fault_crash_drops_ = &metrics_->counter("transport.fault.crash_drops");
  fault_partition_drops_ =
      &metrics_->counter("transport.fault.partition_drops");
  fault_delays_ = &metrics_->counter("transport.fault.delays");
  // Tracing is opt-in: the ring is only allocated on set_enabled(true).
}

void Transport::attach_faults(FaultInjector* faults) {
  faults_ = faults;
  if (faults_ == nullptr) return;
  faults_->set_observer([this](SimTime at, FaultTransition transition,
                               FaultKey a, FaultKey b) {
    EventKind kind = EventKind::kFaultCrash;
    const char* name = "transport.fault.crashes";
    switch (transition) {
      case FaultTransition::kCrash: break;
      case FaultTransition::kRestart:
        kind = EventKind::kFaultRestart;
        name = "transport.fault.restarts";
        break;
      case FaultTransition::kPartition:
        kind = EventKind::kFaultPartition;
        name = "transport.fault.partitions";
        break;
      case FaultTransition::kHeal:
        kind = EventKind::kFaultHeal;
        name = "transport.fault.heals";
        break;
    }
    metrics_->counter(name).inc();
    tracer_.record(at, kind, 0, a, b);
  });
}

void Transport::set_handler(EndpointId endpoint, Handler handler) {
  NAMECOH_CHECK(static_cast<bool>(handler), "null handler");
  handlers_[endpoint] = std::move(handler);
}

void Transport::clear_handler(EndpointId endpoint) {
  handlers_.erase(endpoint);
}

Result<EndpointId> Transport::resolve_pid(EndpointId holder,
                                          const Pid& pid) const {
  auto holder_loc = net_.location_of(holder);
  if (!holder_loc.is_ok()) return holder_loc.status();
  auto target = qualify(pid, holder_loc.value());
  if (!target.is_ok()) return target.status();
  return net_.endpoint_at(target.value());
}

SimDuration Transport::latency_between(const Location& a,
                                       const Location& b) const {
  if (a.same_machine(b)) return config_.intra_machine_latency;
  if (a.same_network(b)) return config_.intra_network_latency;
  return config_.inter_network_latency;
}

Status Transport::send(EndpointId from, const Pid& to, Message message) {
  auto from_loc = net_.location_of(from);
  if (!from_loc.is_ok()) {
    return failed_precondition_error("send from dead endpoint");
  }
  auto target_loc = qualify(to, from_loc.value());
  if (!target_loc.is_ok()) return target_loc.status();
  auto target = net_.endpoint_at(target_loc.value());
  if (!target.is_ok()) {
    unreachable_->inc();
    tracer_.record(sim_.now(), EventKind::kUnreachable, message.trace_corr,
                   from.value());
    return target.status();
  }

  sent_->inc();
  std::vector<std::uint8_t> frame = message.payload.encode();
  bytes_sent_->inc(frame.size());
  tracer_.record(sim_.now(), EventKind::kSend, message.trace_corr,
                 from.value(), frame.size());

  if (config_.drop_probability > 0.0 &&
      rng_.bernoulli(config_.drop_probability)) {
    dropped_->inc();
    tracer_.record(sim_.now(), EventKind::kDrop, message.trace_corr,
                   from.value());
    return Status::ok();  // fire-and-forget: the loss is observable later
  }

  SimDuration latency = latency_between(from_loc.value(), target_loc.value());
  if (faults_ != nullptr) {
    // Fault filtering at send: a crashed sender emits nothing, and a
    // one-way partition eats the (sender → receiver) direction only. Both
    // are silent to the caller, like random loss — failure is observable
    // only as missing replies.
    auto sender_machine = net_.machine_of(from);
    auto receiver_machine = net_.machine_of(target.value());
    if (sender_machine.is_ok() &&
        faults_->is_crashed(sender_machine.value().value())) {
      dropped_->inc();
      fault_crash_drops_->inc();
      tracer_.record(sim_.now(), EventKind::kFaultDropCrash,
                     message.trace_corr, sender_machine.value().value());
      return Status::ok();
    }
    if (sender_machine.is_ok() && receiver_machine.is_ok() &&
        faults_->is_partitioned(sender_machine.value().value(),
                                receiver_machine.value().value())) {
      dropped_->inc();
      fault_partition_drops_->inc();
      tracer_.record(sim_.now(), EventKind::kFaultDropPartition,
                     message.trace_corr, sender_machine.value().value(),
                     receiver_machine.value().value());
      return Status::ok();
    }
    const SimDuration extra = faults_->reorder_extra(sim_.now());
    if (extra > 0) {
      fault_delays_->inc();
      tracer_.record(sim_.now(), EventKind::kFaultDelay, message.trace_corr,
                     from.value(), extra);
      latency += extra;
    }
  }
  EndpointId intended = target.value();
  Location sender_at_send = from_loc.value();
  Location target_address = target_loc.value();
  std::uint32_t type = message.type;
  std::uint64_t trace_corr = message.trace_corr;
  sim_.schedule_in(latency, [this, intended, target_address, sender_at_send,
                             frame = std::move(frame), type,
                             trace_corr]() mutable {
    deliver(intended, target_address, sender_at_send, std::move(frame), type,
            trace_corr);
  });
  return Status::ok();
}

void Transport::deliver(EndpointId intended, Location target,
                        Location sender_at_send,
                        std::vector<std::uint8_t> frame, std::uint32_t type,
                        std::uint64_t trace_corr) {
  // Re-resolve the *address* at delivery time: renumbering mid-flight can
  // orphan the address or (with reuse) hand it to a different process.
  auto now_there = net_.endpoint_at(target);
  if (!now_there.is_ok()) {
    unreachable_->inc();
    tracer_.record(sim_.now(), EventKind::kUnreachable, trace_corr);
    return;
  }
  EndpointId receiver = now_there.value();
  if (faults_ != nullptr) {
    // A machine that is down *at delivery time* receives nothing: messages
    // in flight when the crash hit die here, exactly like a kernel losing
    // its socket buffers with the host.
    auto receiver_machine = net_.machine_of(receiver);
    if (receiver_machine.is_ok() &&
        faults_->is_crashed(receiver_machine.value().value())) {
      dropped_->inc();
      fault_crash_drops_->inc();
      tracer_.record(sim_.now(), EventKind::kFaultDropCrash, trace_corr,
                     receiver_machine.value().value());
      return;
    }
  }
  if (receiver != intended) {
    misdelivered_->inc();
    tracer_.record(sim_.now(), EventKind::kMisdeliver, trace_corr,
                   receiver.value());
  }

  auto payload = Payload::decode(frame);
  if (!payload.is_ok()) {
    NAMECOH_ERROR("wire decode failed: " << payload.status());
    return;
  }
  Message message;
  message.type = type;
  message.trace_corr = trace_corr;
  message.payload = std::move(payload).value();

  auto receiver_loc = net_.location_of(receiver);
  if (!receiver_loc.is_ok()) {
    unreachable_->inc();
    return;
  }

  // R(sender): rebase every embedded pid from the sender's context (at send
  // time) to the receiver's context. With the remap disabled, embedded pids
  // arrive verbatim and mean whatever they happen to mean at the receiver —
  // the §6 incoherence.
  if (config_.remap_embedded_pids) {
    for (std::size_t i : message.payload.pid_indices()) {
      auto rebased =
          rebase(message.payload.pid_at(i), sender_at_send,
                 receiver_loc.value());
      if (rebased.is_ok()) {
        message.payload.set_pid(i, rebased.value());
        pids_remapped_->inc();
      } else {
        remap_failures_->inc();
      }
    }
  }

  // Let the receiver reply: the sender's pid relative to the receiver.
  message.reply_to = relativize(sender_at_send, receiver_loc.value());

  delivered_->inc();
  tracer_.record(sim_.now(), EventKind::kDeliver, trace_corr,
                 receiver.value());
  auto it = handlers_.find(receiver);
  if (it != handlers_.end()) it->second(receiver, message);
}

}  // namespace namecoh
