#include "net/transport.hpp"

#include <sstream>

#include "util/log.hpp"

namespace namecoh {

Transport::Transport(Simulator& sim, Internetwork& net,
                     TransportConfig config, std::uint64_t seed)
    : sim_(sim), net_(net), config_(config), rng_(seed) {
  trace_.set_enabled(false);  // opt-in: traces grow with every message
}

void Transport::set_handler(EndpointId endpoint, Handler handler) {
  NAMECOH_CHECK(static_cast<bool>(handler), "null handler");
  handlers_[endpoint] = std::move(handler);
}

void Transport::clear_handler(EndpointId endpoint) {
  handlers_.erase(endpoint);
}

Result<EndpointId> Transport::resolve_pid(EndpointId holder,
                                          const Pid& pid) const {
  auto holder_loc = net_.location_of(holder);
  if (!holder_loc.is_ok()) return holder_loc.status();
  auto target = qualify(pid, holder_loc.value());
  if (!target.is_ok()) return target.status();
  return net_.endpoint_at(target.value());
}

SimDuration Transport::latency_between(const Location& a,
                                       const Location& b) const {
  if (a.same_machine(b)) return config_.intra_machine_latency;
  if (a.same_network(b)) return config_.intra_network_latency;
  return config_.inter_network_latency;
}

Status Transport::send(EndpointId from, const Pid& to, Message message) {
  auto from_loc = net_.location_of(from);
  if (!from_loc.is_ok()) {
    return failed_precondition_error("send from dead endpoint");
  }
  auto target_loc = qualify(to, from_loc.value());
  if (!target_loc.is_ok()) return target_loc.status();
  auto target = net_.endpoint_at(target_loc.value());
  if (!target.is_ok()) {
    ++stats_.unreachable;
    trace_.record(sim_.now(), "unreachable",
                  net_.endpoint_label(from) + " -> " + to.to_string());
    return target.status();
  }

  ++stats_.sent;
  std::vector<std::uint8_t> frame = message.payload.encode();
  stats_.bytes_sent += frame.size();

  if (config_.drop_probability > 0.0 &&
      rng_.bernoulli(config_.drop_probability)) {
    ++stats_.dropped;
    trace_.record(sim_.now(), "dropped",
                  net_.endpoint_label(from) + " -> " + to.to_string());
    return Status::ok();  // fire-and-forget: the loss is observable later
  }

  SimDuration latency = latency_between(from_loc.value(), target_loc.value());
  EndpointId intended = target.value();
  Location sender_at_send = from_loc.value();
  Location target_address = target_loc.value();
  std::uint32_t type = message.type;
  sim_.schedule_in(latency, [this, intended, target_address, sender_at_send,
                             frame = std::move(frame), type]() mutable {
    deliver(intended, target_address, sender_at_send, std::move(frame), type);
  });
  return Status::ok();
}

void Transport::deliver(EndpointId intended, Location target,
                        Location sender_at_send,
                        std::vector<std::uint8_t> frame, std::uint32_t type) {
  // Re-resolve the *address* at delivery time: renumbering mid-flight can
  // orphan the address or (with reuse) hand it to a different process.
  auto now_there = net_.endpoint_at(target);
  if (!now_there.is_ok()) {
    ++stats_.unreachable;
    trace_.record(sim_.now(), "undeliverable", "address moved away");
    return;
  }
  EndpointId receiver = now_there.value();
  if (receiver != intended) {
    ++stats_.misdelivered;
    trace_.record(sim_.now(), "misdelivered",
                  "stale address reached " + net_.endpoint_label(receiver));
  }

  auto payload = Payload::decode(frame);
  if (!payload.is_ok()) {
    NAMECOH_ERROR("wire decode failed: " << payload.status());
    return;
  }
  Message message;
  message.type = type;
  message.payload = std::move(payload).value();

  auto receiver_loc = net_.location_of(receiver);
  if (!receiver_loc.is_ok()) {
    ++stats_.unreachable;
    return;
  }

  // R(sender): rebase every embedded pid from the sender's context (at send
  // time) to the receiver's context. With the remap disabled, embedded pids
  // arrive verbatim and mean whatever they happen to mean at the receiver —
  // the §6 incoherence.
  if (config_.remap_embedded_pids) {
    for (std::size_t i : message.payload.pid_indices()) {
      auto rebased =
          rebase(message.payload.pid_at(i), sender_at_send,
                 receiver_loc.value());
      if (rebased.is_ok()) {
        message.payload.set_pid(i, rebased.value());
        ++stats_.pids_remapped;
      } else {
        ++stats_.remap_failures;
      }
    }
  }

  // Let the receiver reply: the sender's pid relative to the receiver.
  message.reply_to = relativize(sender_at_send, receiver_loc.value());

  ++stats_.delivered;
  trace_.record(sim_.now(), "delivered",
                "to " + net_.endpoint_label(receiver));
  auto it = handlers_.find(receiver);
  if (it != handlers_.end()) it->second(receiver, message);
}

}  // namespace namecoh
