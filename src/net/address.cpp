#include "net/address.hpp"

#include <sstream>

namespace namecoh {

std::ostream& operator<<(std::ostream& os, const Location& loc) {
  return os << '<' << loc.naddr << ',' << loc.maddr << ',' << loc.laddr
            << '>';
}

bool Pid::is_well_formed() const {
  // Qualified fields must be an outer suffix of (naddr, maddr, laddr):
  // naddr qualified implies maddr qualified implies laddr qualified.
  if (naddr != 0 && maddr == 0) return false;
  if (maddr != 0 && laddr == 0) return false;
  return true;
}

int Pid::qualification_level() const {
  return (naddr != 0 ? 1 : 0) + (maddr != 0 ? 1 : 0) + (laddr != 0 ? 1 : 0);
}

std::ostream& operator<<(std::ostream& os, const Pid& pid) {
  return os << '(' << pid.naddr << ',' << pid.maddr << ',' << pid.laddr
            << ')';
}

std::string Pid::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Result<Location> qualify(const Pid& pid, const Location& reference) {
  if (!pid.is_well_formed()) {
    return invalid_argument_error("malformed pid " + pid.to_string());
  }
  if (!reference.is_valid()) {
    return invalid_argument_error("qualify: invalid reference location");
  }
  Location out;
  out.naddr = pid.naddr != 0 ? pid.naddr : reference.naddr;
  out.maddr = pid.maddr != 0 ? pid.maddr : reference.maddr;
  out.laddr = pid.laddr != 0 ? pid.laddr : reference.laddr;
  return out;
}

Pid relativize(const Location& target, const Location& reference,
               bool allow_self) {
  NAMECOH_CHECK(target.is_valid() && reference.is_valid(),
                "relativize needs valid locations");
  if (allow_self && target == reference) return Pid::self();
  if (target.same_machine(reference)) return Pid{0, 0, target.laddr};
  if (target.same_network(reference)) {
    return Pid{0, target.maddr, target.laddr};
  }
  return Pid::fully_qualified(target);
}

Result<Pid> rebase(const Pid& pid, const Location& sender,
                   const Location& receiver) {
  auto target = qualify(pid, sender);
  if (!target.is_ok()) return target.status();
  return relativize(target.value(), receiver, /*allow_self=*/false);
}

}  // namespace namecoh
