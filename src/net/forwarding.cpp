#include "net/forwarding.hpp"

namespace namecoh {

ForwardingTable::ForwardingTable(std::size_t max_hops,
                                 MetricsRegistry* metrics)
    : max_hops_(max_hops) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  lookups_ = &metrics_->counter("forwarding.lookups");
  chased_ = &metrics_->counter("forwarding.chased");
  exhausted_ = &metrics_->counter("forwarding.exhausted");
  dead_ends_ = &metrics_->counter("forwarding.dead_ends");
  cycles_refused_ = &metrics_->counter("forwarding.cycles_refused");
  compressed_ = &metrics_->counter("forwarding.compressed");
}

void ForwardingTable::add(const Location& from, const Location& to) {
  NAMECOH_CHECK(from.is_valid() && to.is_valid(),
                "forwarding edge needs valid locations");
  if (from == to) return;
  // Refuse edges that would close a loop: walk the existing chain from `to`;
  // if it reaches `from`, installing from → to would turn every lookup
  // through either location into a spin to the hop limit. (A renumber that
  // reuses an old address legitimately produces such adds — the old edge is
  // the one that must win, since `from` is live again under a new meaning.)
  Location probe = to;
  for (std::size_t hop = 0; hop <= max_hops_; ++hop) {
    if (probe == from) {
      cycles_refused_->inc();
      return;
    }
    auto it = table_.find(probe);
    if (it == table_.end()) break;
    probe = it->second;
  }
  table_[from] = to;
}

Result<EndpointId> ForwardingTable::resolve(const Internetwork& net,
                                            Location location) {
  lookups_->inc();
  std::vector<Location> visited;
  for (std::size_t hop = 0; hop <= max_hops_; ++hop) {
    auto endpoint = net.endpoint_at(location);
    if (endpoint.is_ok()) {
      // Path compression: everything we chased through forwards straight to
      // the live location from now on, so the next lookup is one hop.
      for (const Location& via : visited) {
        if (table_[via] != location) {
          table_[via] = location;
          compressed_->inc();
        }
      }
      return endpoint;
    }
    auto it = table_.find(location);
    if (it == table_.end()) {
      dead_ends_->inc();
      return unreachable_error("no endpoint and no forwarding address");
    }
    chased_->inc();
    visited.push_back(location);
    location = it->second;
  }
  exhausted_->inc();
  return depth_exceeded_error("forwarding chain exceeded hop limit");
}

std::size_t ForwardingTable::chain_length(const Internetwork& net,
                                          Location location) const {
  std::size_t hops = 0;
  while (hops <= max_hops_) {
    if (net.endpoint_at(location).is_ok()) return hops;
    auto it = table_.find(location);
    if (it == table_.end()) return hops;
    location = it->second;
    ++hops;
  }
  return hops;
}

namespace {

template <typename Renumber>
Status renumber_with_forwarding(Internetwork& net, ForwardingTable& table,
                                const std::vector<EndpointId>& endpoints,
                                Renumber&& renumber) {
  std::vector<std::pair<EndpointId, Location>> before;
  before.reserve(endpoints.size());
  for (EndpointId ep : endpoints) {
    auto loc = net.location_of(ep);
    if (loc.is_ok()) before.emplace_back(ep, loc.value());
  }
  Status status = renumber();
  if (!status.is_ok()) return status;
  for (const auto& [ep, old_loc] : before) {
    auto new_loc = net.location_of(ep);
    if (new_loc.is_ok()) table.add(old_loc, new_loc.value());
  }
  return Status::ok();
}

}  // namespace

Status renumber_machine_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        MachineId machine) {
  return renumber_with_forwarding(
      net, table, net.endpoints_on(machine),
      [&] { return net.renumber_machine(machine); });
}

Status renumber_network_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        NetworkId network) {
  std::vector<EndpointId> endpoints;
  for (MachineId m : net.machines_in(network)) {
    for (EndpointId ep : net.endpoints_on(m)) endpoints.push_back(ep);
  }
  return renumber_with_forwarding(
      net, table, endpoints, [&] { return net.renumber_network(network); });
}

}  // namespace namecoh
