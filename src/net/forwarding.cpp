#include "net/forwarding.hpp"

namespace namecoh {

void ForwardingTable::add(const Location& from, const Location& to) {
  NAMECOH_CHECK(from.is_valid() && to.is_valid(),
                "forwarding edge needs valid locations");
  if (from == to) return;
  table_[from] = to;
}

Result<EndpointId> ForwardingTable::resolve(const Internetwork& net,
                                            Location location) {
  ++stats_.lookups;
  for (std::size_t hop = 0; hop <= max_hops_; ++hop) {
    auto endpoint = net.endpoint_at(location);
    if (endpoint.is_ok()) return endpoint;
    auto it = table_.find(location);
    if (it == table_.end()) {
      ++stats_.dead_ends;
      return unreachable_error("no endpoint and no forwarding address");
    }
    ++stats_.chased;
    location = it->second;
  }
  ++stats_.exhausted;
  return depth_exceeded_error("forwarding chain exceeded hop limit");
}

std::size_t ForwardingTable::chain_length(const Internetwork& net,
                                          Location location) const {
  std::size_t hops = 0;
  while (hops <= max_hops_) {
    if (net.endpoint_at(location).is_ok()) return hops;
    auto it = table_.find(location);
    if (it == table_.end()) return hops;
    location = it->second;
    ++hops;
  }
  return hops;
}

namespace {

template <typename Renumber>
Status renumber_with_forwarding(Internetwork& net, ForwardingTable& table,
                                const std::vector<EndpointId>& endpoints,
                                Renumber&& renumber) {
  std::vector<std::pair<EndpointId, Location>> before;
  before.reserve(endpoints.size());
  for (EndpointId ep : endpoints) {
    auto loc = net.location_of(ep);
    if (loc.is_ok()) before.emplace_back(ep, loc.value());
  }
  Status status = renumber();
  if (!status.is_ok()) return status;
  for (const auto& [ep, old_loc] : before) {
    auto new_loc = net.location_of(ep);
    if (new_loc.is_ok()) table.add(old_loc, new_loc.value());
  }
  return Status::ok();
}

}  // namespace

Status renumber_machine_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        MachineId machine) {
  return renumber_with_forwarding(
      net, table, net.endpoints_on(machine),
      [&] { return net.renumber_machine(machine); });
}

Status renumber_network_with_forwarding(Internetwork& net,
                                        ForwardingTable& table,
                                        NetworkId network) {
  std::vector<EndpointId> endpoints;
  for (MachineId m : net.machines_in(network)) {
    for (EndpointId ep : net.endpoints_on(m)) endpoints.push_back(ep);
  }
  return renumber_with_forwarding(
      net, table, endpoints, [&] { return net.renumber_network(network); });
}

}  // namespace namecoh
