// Message transport over the simulated internetwork.
//
// One-way datagram messaging with:
//   * pid-based addressing: the destination pid is resolved in the *sender's*
//     context (its current location), per §6 Example 1;
//   * embedded-pid remapping at delivery (the R(sender) rule): every kPid
//     field in the payload is rebased from the sender's context to the
//     receiver's. The remap can be disabled to reproduce the incoherence the
//     paper warns about;
//   * full wire round-trip: payloads are encoded and decoded on every hop so
//     the codec is exercised by every integration test and experiment;
//   * latency by locality (intra-machine / intra-network / inter-network)
//     and optional drop probability, all on the deterministic simulator.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "net/topology.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/tracer.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace namecoh {

/// An application message. `reply_to` is filled in by the transport at
/// delivery: it is the sender's pid *relative to the receiver*, so the
/// receiver can always answer (the client/server pattern of §4 case 2).
/// `trace_corr` is out-of-band observability metadata (like `type`, it is
/// carried alongside the encoded frame, never inside it): protocols that
/// already use correlation ids stamp it so the transport's send / drop /
/// deliver events attach to the owning resolution span.
struct Message {
  std::uint32_t type = 0;
  std::uint64_t trace_corr = 0;
  Pid reply_to;
  Payload payload;
};

struct TransportConfig {
  SimDuration intra_machine_latency = 5;
  SimDuration intra_network_latency = 50;
  SimDuration inter_network_latency = 500;
  /// Apply the R(sender) remap to embedded pids at delivery. Disabling it
  /// reproduces the paper's incoherence for exchanged pids.
  bool remap_embedded_pids = true;
  double drop_probability = 0.0;
};

class Transport {
 public:
  /// `metrics` attaches the transport to a shared registry ("transport.*"
  /// names); by default it owns a private one. Either way metrics() is the
  /// central registry for everything layered on this transport (name
  /// service, churn workload, …).
  Transport(Simulator& sim, Internetwork& net, TransportConfig config = {},
            std::uint64_t seed = 1, MetricsRegistry* metrics = nullptr);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  using Handler = std::function<void(EndpointId self, const Message&)>;

  /// Install the receive handler for an endpoint. Messages to endpoints
  /// without a handler are counted as delivered and discarded.
  void set_handler(EndpointId endpoint, Handler handler);
  void clear_handler(EndpointId endpoint);

  /// Resolve a destination pid in the context of `holder` (its current
  /// location) to the endpoint currently at that address.
  [[nodiscard]] Result<EndpointId> resolve_pid(EndpointId holder,
                                               const Pid& pid) const;

  /// Send `message` from `from` to the process denoted by `to` *in the
  /// sender's context*. Returns an error only for immediately detectable
  /// failures (dead sender, malformed pid, unresolvable address); delivery
  /// itself happens later on the simulator.
  Status send(EndpointId from, const Pid& to, Message message);

  /// Point-in-time copy of the transport's counters ("transport.*");
  /// index by bare field name, e.g. snapshot()["delivered"].
  [[nodiscard]] StatsSnapshot snapshot() const {
    return StatsSnapshot(*metrics_, "transport.");
  }

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }
  void set_remap_embedded_pids(bool enabled) {
    config_.remap_embedded_pids = enabled;
  }
  /// Tests use this to stage deterministic loss patterns mid-run (e.g.
  /// "first attempt lost, retry delivered").
  void set_drop_probability(double p) { config_.drop_probability = p; }

  /// Subject this transport to scripted faults (sim/faults.hpp). Fault
  /// keys are MachineId values. Once attached:
  ///   * a message from a crashed machine is dropped at send;
  ///   * a message to a machine that is crashed at delivery time is
  ///     dropped there (in-flight messages die with the receiver);
  ///   * a message whose (sender, receiver) machine edge is partitioned
  ///     at send time is dropped at send (one-way);
  ///   * inside a reorder window, delivery gains the window's extra delay.
  /// All four show up as "transport.fault.*" counters and kFault* trace
  /// events; injector state transitions (crash/restart/partition/heal)
  /// are traced through the observer this call installs. Pass nullptr to
  /// detach.
  void attach_faults(FaultInjector* faults);
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

 private:
  SimDuration latency_between(const Location& a, const Location& b) const;
  void deliver(EndpointId intended, Location target, Location sender_at_send,
               std::vector<std::uint8_t> frame, std::uint32_t type,
               std::uint64_t trace_corr);

  Simulator& sim_;
  Internetwork& net_;
  TransportConfig config_;
  Rng rng_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  ///< when none was shared
  MetricsRegistry* metrics_;                        ///< never null
  Counter* sent_;
  Counter* delivered_;
  Counter* dropped_;
  Counter* unreachable_;
  Counter* misdelivered_;
  Counter* pids_remapped_;
  Counter* remap_failures_;
  Counter* bytes_sent_;
  Counter* fault_crash_drops_;
  Counter* fault_partition_drops_;
  Counter* fault_delays_;
  Tracer tracer_;
  FaultInjector* faults_ = nullptr;
  std::unordered_map<EndpointId, Handler> handlers_;
};

}  // namespace namecoh
