// Wire format for messages exchanged between activities.
//
// Payloads are sequences of typed fields. Pids get their own field type
// because the transport must find and remap every pid embedded in a message
// when it crosses a machine boundary (§6 Example 1: "The resolution rule is
// implemented by mapping the embedded pid"). Name fields (path strings)
// likewise get a type of their own so experiments can ask "which names were
// exchanged" without parsing application payloads.
//
// Encoding: each field is a 1-byte type tag followed by the value;
// integers are LEB128 varints, strings are length-prefixed bytes, pids are
// three varints. A payload is preceded by its field count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/name.hpp"
#include "net/address.hpp"
#include "util/status.hpp"

namespace namecoh {

enum class FieldType : std::uint8_t {
  kU64 = 1,
  kString = 2,
  kPid = 3,
  kName = 4,  ///< a path string exchanged as a *name* (not opaque bytes)
};

/// One typed payload field.
struct Field {
  FieldType type;
  std::variant<std::uint64_t, std::string, Pid> value;

  static Field u64(std::uint64_t v) { return {FieldType::kU64, v}; }
  static Field str(std::string v) { return {FieldType::kString, std::move(v)}; }
  static Field pid(Pid v) { return {FieldType::kPid, v}; }
  static Field name(std::string path) {
    return {FieldType::kName, std::move(path)};
  }

  friend bool operator==(const Field&, const Field&) = default;
};

/// An ordered sequence of typed fields.
class Payload {
 public:
  Payload() = default;

  Payload& add_u64(std::uint64_t v);
  Payload& add_string(std::string v);
  Payload& add_pid(Pid v);
  Payload& add_name(std::string path);
  /// Encode a component slice as a name field. Renders the *text* — name
  /// atoms (NameId) are node-local and never cross the wire; the receiver
  /// re-interns on decode via compound_at() (docs/INTERNING.md).
  Payload& add_name(NameSlice name);

  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const Field& at(std::size_t i) const { return fields_.at(i); }
  [[nodiscard]] FieldType type_at(std::size_t i) const {
    return fields_.at(i).type;
  }

  /// Typed accessors; throw PreconditionError on type mismatch (caller bug).
  [[nodiscard]] std::uint64_t u64_at(std::size_t i) const;
  [[nodiscard]] const std::string& string_at(std::size_t i) const;
  [[nodiscard]] Pid pid_at(std::size_t i) const;
  [[nodiscard]] const std::string& name_at(std::size_t i) const;
  /// Decode a name field into this process's atom space: parses the text as
  /// a bare component sequence and interns each component. This is the one
  /// place remote names enter the NameTable.
  [[nodiscard]] Result<CompoundName> compound_at(std::size_t i) const;

  /// All pid fields (indices), for remapping at transport boundaries.
  [[nodiscard]] std::vector<std::size_t> pid_indices() const;
  void set_pid(std::size_t i, Pid v);

  /// All name fields (indices), for the experiments that track exchanged
  /// names.
  [[nodiscard]] std::vector<std::size_t> name_indices() const;
  void set_name(std::size_t i, std::string path);

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Result<Payload> decode(std::span<const std::uint8_t> bytes);

  friend bool operator==(const Payload&, const Payload&) = default;

 private:
  std::vector<Field> fields_;
};

/// Low-level primitives, exposed for tests and for the message header.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
Result<std::uint64_t> get_varint(std::span<const std::uint8_t>& in);
void put_bytes(std::vector<std::uint8_t>& out, std::string_view bytes);
Result<std::string> get_bytes(std::span<const std::uint8_t>& in);
void put_pid(std::vector<std::uint8_t>& out, const Pid& pid);
Result<Pid> get_pid(std::span<const std::uint8_t>& in);

}  // namespace namecoh
