#include "net/wire.hpp"

namespace namecoh {

Payload& Payload::add_u64(std::uint64_t v) {
  fields_.push_back(Field::u64(v));
  return *this;
}

Payload& Payload::add_string(std::string v) {
  fields_.push_back(Field::str(std::move(v)));
  return *this;
}

Payload& Payload::add_pid(Pid v) {
  fields_.push_back(Field::pid(v));
  return *this;
}

Payload& Payload::add_name(std::string path) {
  fields_.push_back(Field::name(std::move(path)));
  return *this;
}

Payload& Payload::add_name(NameSlice name) {
  fields_.push_back(Field::name(name.joined()));
  return *this;
}

std::uint64_t Payload::u64_at(std::size_t i) const {
  const Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kU64, "field is not a u64");
  return std::get<std::uint64_t>(f.value);
}

const std::string& Payload::string_at(std::size_t i) const {
  const Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kString, "field is not a string");
  return std::get<std::string>(f.value);
}

Pid Payload::pid_at(std::size_t i) const {
  const Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kPid, "field is not a pid");
  return std::get<Pid>(f.value);
}

const std::string& Payload::name_at(std::size_t i) const {
  const Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kName, "field is not a name");
  return std::get<std::string>(f.value);
}

Result<CompoundName> Payload::compound_at(std::size_t i) const {
  return CompoundName::parse_relative(name_at(i));
}

std::vector<std::size_t> Payload::pid_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type == FieldType::kPid) out.push_back(i);
  }
  return out;
}

void Payload::set_pid(std::size_t i, Pid v) {
  Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kPid, "field is not a pid");
  f.value = v;
}

std::vector<std::size_t> Payload::name_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type == FieldType::kName) out.push_back(i);
  }
  return out;
}

void Payload::set_name(std::size_t i, std::string path) {
  Field& f = fields_.at(i);
  NAMECOH_CHECK(f.type == FieldType::kName, "field is not a name");
  f.value = std::move(path);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

Result<std::uint64_t> get_varint(std::span<const std::uint8_t>& in) {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t consumed = 0;
  for (std::uint8_t byte : in) {
    ++consumed;
    if (shift >= 64) return invalid_argument_error("varint overflow");
    // The final byte (shift 63) may only contribute one bit.
    if (shift == 63 && (byte & 0x7e) != 0) {
      return invalid_argument_error("varint overflow");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      in = in.subspan(consumed);
      return v;
    }
    shift += 7;
  }
  return invalid_argument_error("truncated varint");
}

void put_bytes(std::vector<std::uint8_t>& out, std::string_view bytes) {
  put_varint(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

Result<std::string> get_bytes(std::span<const std::uint8_t>& in) {
  auto len = get_varint(in);
  if (!len.is_ok()) return len.status();
  if (len.value() > in.size()) {
    return invalid_argument_error("truncated byte string");
  }
  std::string out(reinterpret_cast<const char*>(in.data()),
                  static_cast<std::size_t>(len.value()));
  in = in.subspan(static_cast<std::size_t>(len.value()));
  return out;
}

void put_pid(std::vector<std::uint8_t>& out, const Pid& pid) {
  put_varint(out, pid.naddr);
  put_varint(out, pid.maddr);
  put_varint(out, pid.laddr);
}

Result<Pid> get_pid(std::span<const std::uint8_t>& in) {
  Pid pid;
  for (Addr* field : {&pid.naddr, &pid.maddr, &pid.laddr}) {
    auto v = get_varint(in);
    if (!v.is_ok()) return v.status();
    if (v.value() > ~Addr{0}) {
      return invalid_argument_error("pid field out of range");
    }
    *field = static_cast<Addr>(v.value());
  }
  return pid;
}

std::vector<std::uint8_t> Payload::encode() const {
  std::vector<std::uint8_t> out;
  put_varint(out, fields_.size());
  for (const Field& f : fields_) {
    out.push_back(static_cast<std::uint8_t>(f.type));
    switch (f.type) {
      case FieldType::kU64:
        put_varint(out, std::get<std::uint64_t>(f.value));
        break;
      case FieldType::kString:
      case FieldType::kName:
        put_bytes(out, std::get<std::string>(f.value));
        break;
      case FieldType::kPid:
        put_pid(out, std::get<Pid>(f.value));
        break;
    }
  }
  return out;
}

Result<Payload> Payload::decode(std::span<const std::uint8_t> bytes) {
  Payload out;
  auto count = get_varint(bytes);
  if (!count.is_ok()) return count.status();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    if (bytes.empty()) return invalid_argument_error("truncated payload");
    auto type = static_cast<FieldType>(bytes.front());
    bytes = bytes.subspan(1);
    switch (type) {
      case FieldType::kU64: {
        auto v = get_varint(bytes);
        if (!v.is_ok()) return v.status();
        out.add_u64(v.value());
        break;
      }
      case FieldType::kString: {
        auto v = get_bytes(bytes);
        if (!v.is_ok()) return v.status();
        out.add_string(std::move(v).value());
        break;
      }
      case FieldType::kName: {
        auto v = get_bytes(bytes);
        if (!v.is_ok()) return v.status();
        out.add_name(std::move(v).value());
        break;
      }
      case FieldType::kPid: {
        auto v = get_pid(bytes);
        if (!v.is_ok()) return v.status();
        out.add_pid(v.value());
        break;
      }
      default:
        return invalid_argument_error("unknown field type");
    }
  }
  if (!bytes.empty()) {
    return invalid_argument_error("trailing bytes after payload");
  }
  return out;
}

}  // namespace namecoh
