#include "obs/metrics_shard.hpp"

namespace namecoh {

Histogram& MetricsShard::histogram(const std::string& name,
                                   std::vector<double> boundaries) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(boundaries)))
      .first->second;
}

void MetricsShard::merge_into(MetricsRegistry& registry) {
  for (const auto& [name, counter] : counters_) {
    registry.counter(name).inc(counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    registry.gauge(name).add(gauge.value());
  }
  for (const auto& [name, histogram] : histograms_) {
    registry.histogram(name, histogram.boundaries()).merge(histogram);
  }
  clear();
}

void MetricsShard::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace namecoh
