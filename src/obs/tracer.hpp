// Structured tracing (observability subsystem): typed events in a bounded
// ring buffer, grouped into per-resolution *spans*.
//
// The paper's coherence claims (§4–§6) are statements about which context a
// name was resolved in and what it denoted there; reproducing a verdict
// therefore needs the causal chain of one lookup — not just outcome
// counters. The old `Trace` was an unbounded append-only string log: every
// record formatted text (allocation on the hot path) and nothing tied a
// delivery to the request that caused it. This replaces it with:
//
//   * TraceEvent — enum kind + four integer payload slots. Recording is a
//     branch, a map probe, and a struct store: no formatting, and no
//     allocation after the ring is sized.
//   * a bounded ring — when full, the oldest event is overwritten and a
//     drop counter advances, so long traced runs cost O(capacity) memory
//     and the loss is observable instead of silent.
//   * spans — one per top-level resolution. The span remembers every wire
//     correlation id the resolution used (one per attempt, per hop), and
//     events recorded under any of those ids attach to it — including
//     server-side handling on another machine, because request and reply
//     carry the same id. `events_for_span` then replays the full causal
//     chain of one lookup: cache miss, send, drop, backoff retry, re-send,
//     deliver, server handle, reply.
//
// Disabled (the default), every entry point is a single branch; the ring is
// not even allocated. See docs/OBSERVABILITY.md for the taxonomy and
// trace_export.hpp for the Perfetto-loadable chrome-trace exporter.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace namecoh {

/// Event taxonomy. Grouped by the layer that records them; the payload
/// slots `a`/`b` carry small integers whose meaning is per-kind (endpoint
/// ids, entity ids, attempt numbers — see docs/OBSERVABILITY.md).
enum class EventKind : std::uint8_t {
  // Span lifecycle (recorded by the tracer itself).
  kSpanBegin = 0,   ///< a = start entity
  kSpanEnd,         ///< a = 1 if the resolution succeeded
  // Resolver client.
  kCacheHit,        ///< a = cached entity
  kCacheMiss,
  kNegativeHit,     ///< cached error served
  kStaleEpochDrop,  ///< a = authority, b = superseded epoch
  kReferralFollowed,///< a = next start context, b = hop number
  kTimeout,         ///< a = attempt number, b = timeout that expired
  kBackoffRetry,    ///< a = attempt number
  kStaleReplyDropped,
  kCoalesced,       ///< waiter attached to an identical in-flight lookup;
                    ///< a = start entity, b = owning request id
  // Transport.
  kSend,            ///< a = sender endpoint, b = frame bytes
  kDrop,            ///< a = sender endpoint
  kDeliver,         ///< a = receiver endpoint
  kMisdeliver,      ///< a = actual receiver endpoint
  kUnreachable,     ///< a = sender endpoint
  // Name-service server.
  kServerHandle,    ///< a = server endpoint, b = start entity
  kServerAnswer,    ///< a = answered entity
  kServerReferral,  ///< a = referred-to context
  kServerError,
  kServerDuplicate, ///< retransmission re-answered
  // Replication (docs/REPLICATION.md).
  kUpdatePush,      ///< a = replicated context, b = epoch pushed
  kUpdateApply,     ///< a = replicated context, b = epoch applied
  kUpdateStale,     ///< a = replicated context, b = ignored older epoch
  kStoreAnswer,     ///< secondary answered from its replica store;
                    ///< a = context, b = applied epoch served
  kFailover,        ///< client moved to the next replica; a = machine
                    ///< given up on, b = machine tried next
  // Lease coherence (docs/COHERENCE.md).
  kLeaseGrant,      ///< server granted/renewed a lease; a = context,
                    ///< b = lease id (corr-bound: lands in the client span)
  kInvalidate,      ///< callback push: server side a = context, b = epoch
                    ///< pushed; client side a = context, b = epoch received
  kLeaseDegrade,    ///< lease lapsed or renewal failed — entry rides out
                    ///< its plain TTL; a = start entity, b = authority ctx
  // Fault injection (sim/faults.hpp via Transport::attach_faults).
  kFaultCrash,      ///< a = crashed machine
  kFaultRestart,    ///< a = restarted machine
  kFaultPartition,  ///< one-way block installed; a = from, b = to machine
  kFaultHeal,       ///< one-way block removed; a = from, b = to machine
  kFaultDropCrash,  ///< message dropped: a = crashed machine involved
  kFaultDropPartition, ///< message dropped: a = from, b = to machine
  kFaultDelay,      ///< reorder window delayed a message; b = extra ticks
  // Sharded delegation (docs/SHARDING.md).
  kDelegationChase, ///< referral carried a glue record; a = delegated
                    ///< context, b = owning shard
  kCrossShardHop,   ///< chase moved between shards; a = from, b = to
  // Online rebalancing (docs/REBALANCING.md).
  kMigrationPhase,  ///< driver phase transition; a = subtree root,
                    ///< b = MigrationPhase entered
  kForwarded,       ///< old owner hit in the forwarding window; a = context,
                    ///< b = shard that owns it now
  // Dynamic membership (docs/MEMBERSHIP.md).
  kMemberJoin,      ///< machine announced / rejoined; a = machine,
                    ///< b = incarnation
  kMemberLeave,     ///< graceful leave completed (authority handed off);
                    ///< a = machine, b = subtrees handed off
  kMemberCrash,     ///< crash-leave; a = machine, b = subtrees re-delegated
  kMemberRename,    ///< machine renumbered; a = machine, b = incarnation
  kRouteHealed,     ///< client re-derived a stale (pid, machine) route;
                    ///< a = machine, b = its current incarnation
  // Local (in-memory) resolution.
  kResolveStep,     ///< a = context, b = component index
  kKindCount        ///< sentinel, keep last
};

[[nodiscard]] std::string_view event_kind_name(EventKind kind);

struct TraceEvent {
  SimTime at = 0;
  EventKind kind = EventKind::kSpanBegin;
  std::uint64_t span = 0;  ///< owning span id; 0 = not part of any span
  std::uint64_t corr = 0;  ///< wire correlation id; 0 = none
  std::uint64_t a = 0;     ///< payload, meaning per kind
  std::uint64_t b = 0;
};

/// One top-level resolution, open → (events) → closed. `path` is rendered
/// once at open — span opens are per-resolution, not per-event, and only
/// happen when tracing is enabled.
struct SpanRecord {
  std::uint64_t id = 0;
  SimTime begin = 0;
  SimTime end = 0;
  bool open = true;
  bool ok = false;
  std::uint64_t start_entity = 0;
  std::string path;
  std::vector<std::uint64_t> corrs;  ///< correlation ids used, in order
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kMaxSpans = 1024;

  /// Enabling allocates the ring at the configured capacity; disabling
  /// keeps recorded data readable. Everything recorded while disabled is
  /// a no-op costing one branch.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Resizing clears the buffer (events only; spans survive).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // --- recording (hot path) -------------------------------------------------
  /// Record an event keyed by wire correlation id; it attaches to the span
  /// that bound `corr`, if any.
  void record(SimTime at, EventKind kind, std::uint64_t corr = 0,
              std::uint64_t a = 0, std::uint64_t b = 0);
  /// Record an event directly into a span (client-side steps that happen
  /// before any correlation id exists, e.g. cache hits).
  void record_in_span(std::uint64_t span, SimTime at, EventKind kind,
                      std::uint64_t a = 0, std::uint64_t b = 0);

  // --- spans ----------------------------------------------------------------
  /// Returns 0 when disabled; every other span id is unique and non-zero.
  std::uint64_t open_span(SimTime at, std::uint64_t start_entity,
                          std::string path);
  /// Associate a correlation id with the span: subsequent record(corr=…)
  /// calls attach to it, from either side of the wire.
  void bind_corr(std::uint64_t span, std::uint64_t corr);
  void close_span(std::uint64_t span, SimTime at, bool ok);

  /// Fold another tracer's spans and buffered events into this one —
  /// the per-worker merge of docs/PARALLELISM.md. Each pool worker records
  /// into a private Tracer (the class has no shared state, so per-thread
  /// instances are race-free by construction) and the driving thread
  /// absorbs them at the batch barrier, in worker-index order, which makes
  /// the merged history deterministic for a given worker count. Absorbed
  /// spans are assigned fresh ids here (worker-local ids would collide);
  /// their events are re-attached under the new ids. Live correlation-id
  /// routing is NOT imported — absorbed spans are expected to be closed,
  /// pure-compute spans (wire exchanges belong to the simulator thread).
  /// No-op when either tracer is disabled; `other` is left cleared.
  void absorb(Tracer& other);

  // --- queries (test / export side) ----------------------------------------
  /// Buffered events, oldest first (at most `capacity()` of them).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t count(EventKind kind) const;
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Spans evicted because more than kMaxSpans were opened.
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }

  [[nodiscard]] const std::deque<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] const SpanRecord* span(std::uint64_t id) const;
  /// All buffered events attached to the span, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events_for_span(
      std::uint64_t id) const;

  void clear();

 private:
  void push(const TraceEvent& event);
  SpanRecord* find_span(std::uint64_t id);

  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<TraceEvent> ring_;
  std::size_t start_ = 0;  ///< index of oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;

  std::uint64_t next_span_ = 1;
  std::deque<SpanRecord> spans_;  ///< bounded FIFO, oldest evicted
  std::uint64_t spans_dropped_ = 0;
  /// Live correlation-id → span index routing; entries die with their span
  /// so a late straggler from a closed span reads as span 0, not garbage.
  std::unordered_map<std::uint64_t, std::uint64_t> corr_to_span_;
};

}  // namespace namecoh
