#include "obs/tracer.hpp"

#include <algorithm>

namespace namecoh {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kNegativeHit: return "negative_hit";
    case EventKind::kStaleEpochDrop: return "stale_epoch_drop";
    case EventKind::kReferralFollowed: return "referral_followed";
    case EventKind::kTimeout: return "timeout";
    case EventKind::kBackoffRetry: return "backoff_retry";
    case EventKind::kStaleReplyDropped: return "stale_reply_dropped";
    case EventKind::kCoalesced: return "coalesced";
    case EventKind::kSend: return "send";
    case EventKind::kDrop: return "drop";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kMisdeliver: return "misdeliver";
    case EventKind::kUnreachable: return "unreachable";
    case EventKind::kServerHandle: return "server_handle";
    case EventKind::kServerAnswer: return "server_answer";
    case EventKind::kServerReferral: return "server_referral";
    case EventKind::kServerError: return "server_error";
    case EventKind::kServerDuplicate: return "server_duplicate";
    case EventKind::kUpdatePush: return "update_push";
    case EventKind::kUpdateApply: return "update_apply";
    case EventKind::kUpdateStale: return "update_stale";
    case EventKind::kStoreAnswer: return "store_answer";
    case EventKind::kFailover: return "failover";
    case EventKind::kLeaseGrant: return "lease_grant";
    case EventKind::kInvalidate: return "invalidate";
    case EventKind::kLeaseDegrade: return "lease_degrade";
    case EventKind::kFaultCrash: return "fault_crash";
    case EventKind::kFaultRestart: return "fault_restart";
    case EventKind::kFaultPartition: return "fault_partition";
    case EventKind::kFaultHeal: return "fault_heal";
    case EventKind::kFaultDropCrash: return "fault_drop_crash";
    case EventKind::kFaultDropPartition: return "fault_drop_partition";
    case EventKind::kFaultDelay: return "fault_delay";
    case EventKind::kDelegationChase: return "delegation_chase";
    case EventKind::kCrossShardHop: return "cross_shard_hop";
    case EventKind::kMigrationPhase: return "migration_phase";
    case EventKind::kForwarded: return "forwarded";
    case EventKind::kMemberJoin: return "member_join";
    case EventKind::kMemberLeave: return "member_leave";
    case EventKind::kMemberCrash: return "member_crash";
    case EventKind::kMemberRename: return "member_rename";
    case EventKind::kRouteHealed: return "route_healed";
    case EventKind::kResolveStep: return "resolve_step";
    case EventKind::kKindCount: break;
  }
  return "unknown";
}

void Tracer::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_ && ring_.size() != capacity_) {
    ring_.assign(capacity_, TraceEvent{});
    start_ = 0;
    size_ = 0;
  }
}

void Tracer::set_capacity(std::size_t capacity) {
  NAMECOH_CHECK(capacity > 0, "trace ring needs capacity >= 1");
  capacity_ = capacity;
  if (!ring_.empty() || enabled_) ring_.assign(capacity_, TraceEvent{});
  start_ = 0;
  size_ = 0;
}

void Tracer::push(const TraceEvent& event) {
  if (size_ == capacity_) {
    ring_[start_] = event;
    start_ = start_ + 1 == capacity_ ? 0 : start_ + 1;
    ++dropped_;
    return;
  }
  std::size_t pos = start_ + size_;
  if (pos >= capacity_) pos -= capacity_;
  ring_[pos] = event;
  ++size_;
}

void Tracer::record(SimTime at, EventKind kind, std::uint64_t corr,
                    std::uint64_t a, std::uint64_t b) {
  if (!enabled_) return;
  std::uint64_t span = 0;
  if (corr != 0) {
    auto it = corr_to_span_.find(corr);
    if (it != corr_to_span_.end()) span = it->second;
  }
  push(TraceEvent{at, kind, span, corr, a, b});
}

void Tracer::record_in_span(std::uint64_t span, SimTime at, EventKind kind,
                            std::uint64_t a, std::uint64_t b) {
  if (!enabled_) return;
  push(TraceEvent{at, kind, span, 0, a, b});
}

std::uint64_t Tracer::open_span(SimTime at, std::uint64_t start_entity,
                                std::string path) {
  if (!enabled_) return 0;
  SpanRecord span;
  span.id = next_span_++;
  span.begin = at;
  span.start_entity = start_entity;
  span.path = std::move(path);
  if (spans_.size() == kMaxSpans) {
    for (std::uint64_t corr : spans_.front().corrs) corr_to_span_.erase(corr);
    spans_.pop_front();
    ++spans_dropped_;
  }
  spans_.push_back(std::move(span));
  push(TraceEvent{at, EventKind::kSpanBegin, spans_.back().id, 0,
                  start_entity, 0});
  return spans_.back().id;
}

SpanRecord* Tracer::find_span(std::uint64_t id) {
  return const_cast<SpanRecord*>(
      static_cast<const Tracer*>(this)->span(id));
}

void Tracer::bind_corr(std::uint64_t span, std::uint64_t corr) {
  if (!enabled_ || span == 0 || corr == 0) return;
  SpanRecord* record = find_span(span);
  if (record == nullptr) return;
  record->corrs.push_back(corr);
  corr_to_span_[corr] = span;
}

void Tracer::close_span(std::uint64_t span, SimTime at, bool ok) {
  if (span == 0) return;  // opened while disabled (or never opened)
  SpanRecord* record = find_span(span);
  if (record == nullptr || !record->open) return;
  record->end = at;
  record->open = false;
  record->ok = ok;
  // Unroute the span's correlation ids: a reply that straggles in after
  // the span closed must not be attributed to a *recycled* routing slot.
  for (std::uint64_t corr : record->corrs) corr_to_span_.erase(corr);
  if (enabled_) {
    push(TraceEvent{at, EventKind::kSpanEnd, span, 0, ok ? 1u : 0u, 0});
  }
}

void Tracer::absorb(Tracer& other) {
  if (!enabled_ || !other.enabled_) return;
  // Spans first: remap worker-local ids onto this tracer's id space. Ids
  // stay monotonically increasing in spans_, preserving span()'s binary
  // search invariant.
  std::unordered_map<std::uint64_t, std::uint64_t> remap;
  remap.reserve(other.spans_.size());
  for (const SpanRecord& span : other.spans_) {
    SpanRecord copy = span;
    copy.id = next_span_++;
    // Worker-side correlation routing is not imported; record the corrs for
    // posterity but do not route them (see header).
    remap.emplace(span.id, copy.id);
    if (spans_.size() == kMaxSpans) {
      for (std::uint64_t corr : spans_.front().corrs) {
        corr_to_span_.erase(corr);
      }
      spans_.pop_front();
      ++spans_dropped_;
    }
    spans_.push_back(std::move(copy));
  }
  // Then the buffered events, oldest first, re-keyed onto the new span ids.
  // Events from spans the worker's ring had already evicted keep span = 0.
  for (const TraceEvent& event : other.events()) {
    TraceEvent copy = event;
    auto it = remap.find(event.span);
    copy.span = it == remap.end() ? 0 : it->second;
    push(copy);
  }
  dropped_ += other.dropped_;
  spans_dropped_ += other.spans_dropped_;
  other.clear();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t pos = start_ + i;
    if (pos >= capacity_) pos -= capacity_;
    out.push_back(ring_[pos]);
  }
  return out;
}

std::size_t Tracer::count(EventKind kind) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t pos = start_ + i;
    if (pos >= capacity_) pos -= capacity_;
    if (ring_[pos].kind == kind) ++n;
  }
  return n;
}

const SpanRecord* Tracer::span(std::uint64_t id) const {
  // Ids are assigned in increasing order and spans_ is FIFO, so binary
  // search applies; the deque stays small (<= kMaxSpans) regardless.
  auto it = std::lower_bound(spans_.begin(), spans_.end(), id,
                             [](const SpanRecord& s, std::uint64_t want) {
                               return s.id < want;
                             });
  if (it == spans_.end() || it->id != id) return nullptr;
  return &*it;
}

std::vector<TraceEvent> Tracer::events_for_span(std::uint64_t id) const {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t pos = start_ + i;
    if (pos >= capacity_) pos -= capacity_;
    if (ring_[pos].span == id) out.push_back(ring_[pos]);
  }
  return out;
}

void Tracer::clear() {
  start_ = 0;
  size_ = 0;
  dropped_ = 0;
  spans_.clear();
  spans_dropped_ = 0;
  corr_to_span_.clear();
}

}  // namespace namecoh
