// Uniform stats snapshots (observability subsystem).
//
// Before this header, every component exposed its own compat struct
// (TransportStats, ForwardingStats, NameServiceStats, ResolverClientStats)
// assembled field-by-field from the registry — four shapes for one idea,
// and a new field meant editing a struct, an accessor, and every
// equivalence test. StatsSnapshot replaces them with one idiom: a
// component's `snapshot()` returns a *point-in-time copy* of every counter
// under its registry prefix, indexable by the bare field name:
//
//   transport.snapshot()["delivered"]       // "transport.delivered"
//   client.snapshot()["cache_hits"]         // "ns.client.<id>.cache_hits"
//
// Copy semantics matter: a stored snapshot keeps the values it was taken
// with, so before/after deltas ("messages sent by this phase") read
// naturally without the live registry drifting underneath. The old
// struct accessors are gone; snapshot() and the registry are the only
// read surfaces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace namecoh {

/// A point-in-time copy of every counter under one registry prefix.
class StatsSnapshot {
 public:
  /// Capture all counters whose name starts with `prefix` (normally
  /// "<component>." including the trailing dot). One ordered-map range
  /// scan; counters created after the capture are invisible to it.
  StatsSnapshot(const MetricsRegistry& metrics, std::string prefix)
      : prefix_(std::move(prefix)) {
    const auto& counters = metrics.counters();
    for (auto it = counters.lower_bound(prefix_);
         it != counters.end() &&
         it->first.compare(0, prefix_.size(), prefix_) == 0;
         ++it) {
      fields_.emplace_back(it->first.substr(prefix_.size()),
                           it->second.value());
    }
  }

  /// Value of the counter `prefix + field` at capture time. A field that
  /// did not exist (or had not been created yet) reads as zero, matching
  /// MetricsRegistry::counter_value's missing-name convention.
  [[nodiscard]] std::uint64_t operator[](std::string_view field) const {
    for (const auto& [name, value] : fields_) {
      if (name == field) return value;
    }
    return 0;
  }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  /// The captured (field, value) pairs, name-ordered; for exporters and
  /// "print everything" diagnostics.
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  fields() const {
    return fields_;
  }

 private:
  std::string prefix_;
  std::vector<std::pair<std::string, std::uint64_t>> fields_;
};

}  // namespace namecoh
