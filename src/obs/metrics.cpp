#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace namecoh {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> boundaries) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(boundaries)))
      .first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         histograms_.contains(name);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// JSON numbers must not be NaN/inf; gauges are doubles so guard them.
void append_double(std::ostringstream& os, double v) {
  if (v != v || v > 1e308 || v < -1e308) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_double(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h.total();
    for (auto [label, q] : {std::pair<const char*, double>{"p50", 0.5},
                            {"p90", 0.9},
                            {"p99", 0.99},
                            {"max", 1.0}}) {
      os << ",\"" << label << "\":";
      append_double(os, h.quantile(q));
    }
    os << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace namecoh
