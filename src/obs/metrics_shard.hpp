// Per-thread metric shards (docs/PARALLELISM.md, docs/OBSERVABILITY.md).
//
// MetricsRegistry is deliberately not locked: the simulator thread owns it,
// and putting a mutex (or atomics) on every counter bump would tax the hot
// path every run pays to cover the rare parallel one. Off-thread recording
// instead goes through a MetricsShard — a private registry-shaped
// accumulator each pool worker owns exclusively, no locks, no sharing —
// and the driving thread folds the shards into the real registry at the
// batch barrier, always in worker-index order.
//
// Merging is exact, not approximate: counters add, gauges add their
// accumulated delta, histograms add bucket counts (Histogram::merge). All
// three are associative and commutative over integer counts, so the merged
// registry is byte-identical for a given batch no matter how the workers'
// execution interleaved — which is what lets the determinism gate
// (tests/test_parallel_exec.cpp) compare metric snapshots across seq and
// par runs as strings.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace namecoh {

class MetricsShard {
 public:
  MetricsShard() = default;
  MetricsShard(const MetricsShard&) = delete;
  MetricsShard& operator=(const MetricsShard&) = delete;

  /// Get-or-create, same semantics (and same instrument types) as the
  /// registry, so recording code can be written once against either.
  Counter& counter(const std::string& name) { return counters_[name]; }
  /// Shard gauges accumulate a *delta*; merge applies it with Gauge::add.
  /// (Point-in-time `set` has no meaningful cross-thread merge.)
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name,
                       std::vector<double> boundaries);

  /// Fold everything recorded here into `registry` and clear the shard.
  /// Call from the owning/driving thread at a barrier, in worker-index
  /// order (docs/PARALLELISM.md determinism contract).
  void merge_into(MetricsRegistry& registry);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace namecoh
