// Unified metrics registry (observability subsystem).
//
// Every layer of the stack used to keep its own ad-hoc `stats_` struct
// (TransportStats, ForwardingStats, NameServiceStats, …), which made
// "export everything this run measured" impossible without touching each
// component. The registry centralises that: components register named
// counters/gauges/histograms at construction and bump them on the hot path
// through stable pointers (one add on a pre-looked-up slot — no map lookup,
// no allocation, no formatting). Components expose a prefix-scoped
// `snapshot()` (obs/snapshot.hpp) as their point-in-time read surface; the
// ad-hoc structs and their `stats()` accessors are gone.
//
// Naming convention: dotted lowercase paths, `<layer>.<component>.<what>`,
// e.g. "transport.sent", "forwarding.cycles_refused",
// "ns.client.7.cache_hits" (per-instance components embed a unique id so
// two clients sharing one registry never collide).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace namecoh {

/// Monotonic event count. Pointer-stable once created (registry storage is
/// a node-based map), so hot paths cache `Counter*` and skip the name
/// lookup entirely.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (cache sizes, table entries, degrees).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Central registry of named instruments. Get-or-create semantics: asking
/// for an existing name returns the same instrument, so components that
/// outlive each other (or intentionally share a name) accumulate into one
/// slot. Not locked by design — the simulator thread owns it; pool workers
/// record into private MetricsShards (obs/metrics_shard.hpp) that the
/// driving thread merges at the batch barrier (docs/PARALLELISM.md).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Boundaries are used only on first creation; later calls with the same
  /// name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> boundaries);

  /// Read-side lookups for tests and exporters; missing names read as zero
  /// rather than implicitly creating an instrument.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One JSON object: {"counters":{…},"gauges":{…},"histograms":{…}} with
  /// per-histogram count/quantiles. Sorted by name (std::map order) so the
  /// export is diff-stable across runs.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Minimal JSON string escaping (quotes, backslashes, control characters);
/// shared by the metrics and chrome-trace exporters.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace namecoh
