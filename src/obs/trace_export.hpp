// Chrome trace_event exporter: renders a Tracer's spans and events as the
// JSON array format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing, so the causal chain of a resolution can be inspected
// visually — one track per span, instants for the attached events.
//
// Mapping: a span becomes a complete ("ph":"X") event on its own track
// (tid = span id), with begin/duration in simulated microseconds (one sim
// tick = 1 µs, the convention of sim/simulator.hpp); every attached
// TraceEvent becomes an instant ("ph":"i") on the same track carrying its
// correlation id and payload slots as args. Events outside any span land
// on track 0.
#pragma once

#include <string>

#include "obs/tracer.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Render the whole buffer as one JSON object:
///   {"displayTimeUnit":"ms","traceEvents":[…]}
[[nodiscard]] std::string to_chrome_trace(const Tracer& tracer);

/// Write to_chrome_trace(tracer) to `path`.
Status write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace namecoh
