#include "obs/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace namecoh {
namespace {

void append_span(std::ostringstream& os, const SpanRecord& span,
                 bool& first) {
  if (!first) os << ',';
  first = false;
  // Open spans export with zero duration rather than a lie about their end.
  SimTime end = span.open ? span.begin : span.end;
  os << "{\"name\":\"resolve " << json_escape(span.path)
     << "\",\"cat\":\"resolution\",\"ph\":\"X\",\"ts\":" << span.begin
     << ",\"dur\":" << (end - span.begin) << ",\"pid\":1,\"tid\":" << span.id
     << ",\"args\":{\"span\":" << span.id << ",\"start_entity\":"
     << span.start_entity << ",\"ok\":" << (span.ok ? "true" : "false")
     << ",\"corrs\":" << span.corrs.size() << "}}";
}

void append_event(std::ostringstream& os, const TraceEvent& event,
                  bool& first) {
  if (event.kind == EventKind::kSpanBegin ||
      event.kind == EventKind::kSpanEnd) {
    return;  // represented by the span's own "X" slice
  }
  if (!first) os << ',';
  first = false;
  os << "{\"name\":\"" << event_kind_name(event.kind)
     << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << event.at
     << ",\"pid\":1,\"tid\":" << event.span << ",\"args\":{\"corr\":"
     << event.corr << ",\"a\":" << event.a << ",\"b\":" << event.b << "}}";
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : tracer.spans()) {
    append_span(os, span, first);
  }
  for (const TraceEvent& event : tracer.events()) {
    append_event(os, event, first);
  }
  os << "],\"otherData\":{\"dropped_events\":" << tracer.dropped()
     << ",\"dropped_spans\":" << tracer.spans_dropped() << "}}";
  return os.str();
}

Status write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return internal_error("cannot open trace output file: " + path);
  out << to_chrome_trace(tracer) << '\n';
  out.flush();
  if (!out) return internal_error("short write to trace file: " + path);
  return Status::ok();
}

}  // namespace namecoh
