// Simulation trace: a time-stamped event record, queryable by tests.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace namecoh {

struct TraceEvent {
  SimTime at;
  std::string category;
  std::string detail;
};

/// Append-only trace with simple filters. Cheap when disabled.
class Trace {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime at, std::string category, std::string detail) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{at, std::move(category), std::move(detail)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(std::string_view category) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.category == category) ++n;
    }
    return n;
  }
  [[nodiscard]] std::vector<TraceEvent> filter(
      std::string_view category) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.category == category) out.push_back(e);
    }
    return out;
  }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = true;
  std::vector<TraceEvent> events_;
};

}  // namespace namecoh
