#include "sim/simulator.hpp"

#include <algorithm>

namespace namecoh {

EventId Simulator::schedule_at(SimTime at, std::function<void()> action) {
  NAMECOH_CHECK(!in_pure_section(),
                "cannot schedule events inside a pure-compute section");
  NAMECOH_CHECK(at >= now_, "cannot schedule an event in the past");
  NAMECOH_CHECK(static_cast<bool>(action), "null event action");
  std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(action)});
  pending_.insert(id);
  return EventId(id);
}

EventId Simulator::schedule_in(SimDuration delay,
                               std::function<void()> action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  return id.valid() && pending_.erase(id.value()) > 0;
}

std::optional<SimTime> Simulator::next_event_time() {
  while (!queue_.empty() && !pending_.contains(queue_.top().id)) {
    queue_.pop();  // cancelled; discard lazily, as fire_next() would
  }
  if (queue_.empty()) return std::nullopt;
  return queue_.top().at;
}

bool Simulator::fire_next() {
  NAMECOH_CHECK(!in_pure_section(),
                "cannot fire events inside a pure-compute section");
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (pending_.erase(entry.id) == 0) continue;  // cancelled; skip silently
    now_ = entry.at;
    ++events_processed_;
    entry.action();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && fire_next()) ++fired;
  return fired;
}

std::uint64_t Simulator::run_until(SimTime until) {
  NAMECOH_CHECK(!in_pure_section(),
                "cannot run the simulator inside a pure-compute section");
  std::uint64_t fired = 0;
  // Deadline checks must look past cancelled entries: a cancelled head at
  // t <= until used to admit fire_next(), which discarded it and then fired
  // the next *pending* event even when that one was after the deadline.
  // next_event_time() prunes cancelled heads, so the timestamp it reports
  // is the one fire_next() will actually run.
  while (true) {
    auto next = next_event_time();
    if (!next || *next > until) break;
    if (fire_next()) ++fired;
  }
  now_ = std::max(now_, until);
  return fired;
}

std::uint64_t Simulator::run_while(const std::function<bool()>& keep_going) {
  NAMECOH_CHECK(static_cast<bool>(keep_going), "null run_while predicate");
  std::uint64_t fired = 0;
  while (keep_going() && fire_next()) ++fired;
  return fired;
}

void Simulator::reset() {
  NAMECOH_CHECK(!in_pure_section(),
                "cannot reset the simulator inside a pure-compute section");
  queue_ = {};
  pending_.clear();
  now_ = 0;
  // next_id_/next_seq_ keep increasing so stale EventIds never alias.
  events_processed_ = 0;
}

}  // namespace namecoh
