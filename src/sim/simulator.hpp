// Deterministic discrete-event simulation kernel.
//
// The paper's systems (Newcastle Connection machines, Port processes
// exchanging pids) ran on real networks; we substitute a single-threaded
// event simulator so every experiment is exactly reproducible. Events at
// equal timestamps fire in scheduling order (a monotonically increasing
// sequence number breaks ties), so runs are deterministic regardless of
// container iteration order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/ids.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Simulated time in integer ticks (we treat a tick as a microsecond in the
/// experiments, but nothing depends on the unit).
using SimTime = std::uint64_t;
using SimDuration = std::uint64_t;

/// Handle for cancelling a scheduled event.
struct EventTag {};
using EventId = StrongId<EventTag>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Timestamp of the earliest pending event, or nullopt when the queue is
  /// empty. Lets callers wait with a deadline ("run events up to t, no
  /// further") without firing anything. Non-const: prunes cancelled entries
  /// lingering at the head of the queue.
  [[nodiscard]] std::optional<SimTime> next_event_time();

  /// Schedule `action` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, std::function<void()> action);
  /// Schedule `action` to run `delay` ticks from now.
  EventId schedule_in(SimDuration delay, std::function<void()> action);

  /// Cancel a pending event; returns false if it already ran or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Run until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Run events with timestamp <= until; the clock ends at `until` even if
  /// the queue drained earlier. Returns the number of events fired.
  std::uint64_t run_until(SimTime until);

  /// Fire events one at a time while `keep_going()` returns true, stopping
  /// as soon as the predicate flips or the queue drains. The predicate is
  /// evaluated before every event, so an event that satisfies the caller's
  /// condition is the last one fired. This is the drive loop of blocking
  /// waits layered over async work ("run until this handle completes")
  /// without the waiter owning a deadline. Returns the number of events
  /// fired.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// Drop all pending events and reset the clock. Event ids from before
  /// the reset are invalidated.
  void reset();

  /// True while a pure-compute section is open (see PureComputeSection).
  /// Scheduling or firing events is a thrown precondition violation while
  /// this holds — the explicit boundary between pure computation and
  /// simulated time (docs/PARALLELISM.md).
  [[nodiscard]] bool in_pure_section() const { return pure_depth_ > 0; }

 private:
  friend class PureComputeSection;
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;  // ids not yet fired/cancelled
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t events_processed_ = 0;
  int pure_depth_ = 0;
};

/// RAII marker for the "pure compute vs simulated event" boundary
/// (docs/PARALLELISM.md). While a section is open — typically for the
/// duration of a parallel resolution batch on the worker pool — the
/// simulator is fenced: schedule_at/schedule_in, run/run_until/run_while,
/// and reset all throw PreconditionError. The fence is what makes the seam
/// checkable rather than aspirational: a worker (or a callback reached from
/// one) that tries to touch simulated time fails loudly at the boundary
/// instead of racing the event queue. Constructing with nullptr is a no-op,
/// so callers without a simulator (purely local batches) need no branch.
/// Sections nest; the fence lifts when the outermost one closes.
class PureComputeSection {
 public:
  explicit PureComputeSection(Simulator* sim) : sim_(sim) {
    if (sim_) ++sim_->pure_depth_;
  }
  PureComputeSection(const PureComputeSection&) = delete;
  PureComputeSection& operator=(const PureComputeSection&) = delete;
  ~PureComputeSection() {
    if (sim_) --sim_->pure_depth_;
  }

 private:
  Simulator* sim_;
};

}  // namespace namecoh
