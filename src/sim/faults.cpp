#include "sim/faults.hpp"

#include "util/status.hpp"

namespace namecoh {

std::uint64_t FaultInjector::edge(FaultKey from, FaultKey to) {
  NAMECOH_CHECK(from < (1ULL << 32) && to < (1ULL << 32),
                "fault keys must fit 32 bits to form partition edges");
  return (from << 32) | to;
}

void FaultInjector::notify(FaultTransition transition, FaultKey a,
                           FaultKey b) {
  if (observer_) observer_(sim_.now(), transition, a, b);
}

void FaultInjector::crash(FaultKey node) {
  if (crashed_.insert(node).second) {
    notify(FaultTransition::kCrash, node, 0);
  }
}

void FaultInjector::restart(FaultKey node) {
  if (crashed_.erase(node) > 0) {
    notify(FaultTransition::kRestart, node, 0);
  }
}

void FaultInjector::partition_one_way(FaultKey from, FaultKey to) {
  if (blocked_.insert(edge(from, to)).second) {
    notify(FaultTransition::kPartition, from, to);
  }
}

void FaultInjector::heal_one_way(FaultKey from, FaultKey to) {
  if (blocked_.erase(edge(from, to)) > 0) {
    notify(FaultTransition::kHeal, from, to);
  }
}

void FaultInjector::schedule_crash(SimTime at, FaultKey node) {
  sim_.schedule_at(at, [this, node] { crash(node); });
}

void FaultInjector::schedule_restart(SimTime at, FaultKey node) {
  sim_.schedule_at(at, [this, node] { restart(node); });
}

void FaultInjector::schedule_partition(SimTime at, FaultKey from,
                                       FaultKey to) {
  sim_.schedule_at(at, [this, from, to] { partition_one_way(from, to); });
}

void FaultInjector::schedule_heal(SimTime at, FaultKey from, FaultKey to) {
  sim_.schedule_at(at, [this, from, to] { heal_one_way(from, to); });
}

void FaultInjector::add_reorder_window(SimTime begin, SimTime end,
                                       SimDuration max_extra,
                                       std::uint64_t seed) {
  NAMECOH_CHECK(begin < end, "reorder window must be non-empty");
  windows_.push_back(ReorderWindow{begin, end, max_extra, Rng(seed)});
}

SimDuration FaultInjector::reorder_extra(SimTime now) {
  SimDuration extra = 0;
  for (ReorderWindow& w : windows_) {
    if (now >= w.begin && now < w.end && w.max_extra > 0) {
      extra += w.rng.next_below(w.max_extra + 1);
    }
  }
  return extra;
}

}  // namespace namecoh
