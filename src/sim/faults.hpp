// Deterministic fault injection for the simulated substrate.
//
// The paper's schemes were judged on healthy networks; the replication
// story (docs/REPLICATION.md) is about what happens when they are not.
// This module scripts three fault classes against the Simulator's clock:
//
//   * crash/restart  — a node stops participating: everything it sends or
//                      should receive is dropped until restart;
//   * one-way partitions — messages from A to B are dropped while B to A
//                      still flows (the asymmetric case that breaks naive
//                      "ping it" liveness checks);
//   * reorder windows — during [begin, end) every message gets a seeded
//                      pseudo-random extra delay, so messages sent in order
//                      arrive out of order.
//
// Everything is deterministic: immediate operations take effect at the
// current simulated instant, scheduled ones fire as ordinary simulator
// events, and reorder jitter is drawn from a per-window seeded Rng — the
// same seed and the same call sequence reproduce the same fault history
// exactly (asserted in tests/test_failover.cpp).
//
// Layering: this file knows nothing about machines or transports. Nodes
// are opaque `FaultKey` integers; the Transport adapts its MachineIds to
// keys (`Transport::attach_faults`) and translates verdicts into dropped
// or delayed deliveries, counted and traced like every other transport
// decision. The observer hook exists so that layer can record state
// transitions (crash, restart, partition, heal) without this one depending
// on obs/.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace namecoh {

/// Opaque node identity (the transport uses MachineId::value()).
using FaultKey = std::uint64_t;

/// State transitions reported to the observer, in the order they happen.
enum class FaultTransition : std::uint8_t {
  kCrash,
  kRestart,
  kPartition,
  kHeal,
};

class FaultInjector {
 public:
  explicit FaultInjector(Simulator& sim) : sim_(sim) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called on every state transition: (now, transition, a, b). For
  /// crash/restart `a` is the node and `b` is 0; for partition/heal the
  /// edge is a → b.
  using Observer =
      std::function<void(SimTime, FaultTransition, FaultKey, FaultKey)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // --- immediate operations -------------------------------------------------
  void crash(FaultKey node);
  void restart(FaultKey node);
  /// Block messages from `from` to `to` (one direction only; call twice
  /// for a full partition).
  void partition_one_way(FaultKey from, FaultKey to);
  void heal_one_way(FaultKey from, FaultKey to);

  // --- scripted operations (fire as ordinary simulator events) --------------
  void schedule_crash(SimTime at, FaultKey node);
  void schedule_restart(SimTime at, FaultKey node);
  void schedule_partition(SimTime at, FaultKey from, FaultKey to);
  void schedule_heal(SimTime at, FaultKey from, FaultKey to);

  /// During [begin, end) every queried message gets an extra delay drawn
  /// uniformly from [0, max_extra] by a per-window Rng seeded with `seed`.
  /// Windows may overlap; their extras add.
  void add_reorder_window(SimTime begin, SimTime end, SimDuration max_extra,
                          std::uint64_t seed);

  // --- queries (the transport's side) ---------------------------------------
  [[nodiscard]] bool is_crashed(FaultKey node) const {
    return crashed_.contains(node);
  }
  [[nodiscard]] bool is_partitioned(FaultKey from, FaultKey to) const {
    return blocked_.contains(edge(from, to));
  }
  /// Extra delivery delay for a message sent now. Non-const: draws from
  /// the active windows' generators (deterministic under the sim clock).
  [[nodiscard]] SimDuration reorder_extra(SimTime now);

  [[nodiscard]] std::size_t crashed_count() const { return crashed_.size(); }
  [[nodiscard]] std::size_t partition_count() const { return blocked_.size(); }

 private:
  struct ReorderWindow {
    SimTime begin;
    SimTime end;
    SimDuration max_extra;
    Rng rng;
  };

  /// Edges packed as (from << 32) | to; node keys in practice are small
  /// machine ids, and the pack is checked.
  static std::uint64_t edge(FaultKey from, FaultKey to);
  void notify(FaultTransition transition, FaultKey a, FaultKey b);

  Simulator& sim_;
  Observer observer_;
  std::unordered_set<FaultKey> crashed_;
  std::unordered_set<std::uint64_t> blocked_;
  std::vector<ReorderWindow> windows_;
};

}  // namespace namecoh
