// Umbrella header: the whole namecoh public API.
//
// Fine-grained includes are preferred inside the library itself; this
// header is for applications that want everything (the examples include
// exactly what they use instead, as documentation of minimal
// dependencies).
#pragma once

// §2 model and §3 closure mechanisms.
#include "core/closure.hpp"
#include "core/interner.hpp"
#include "core/graph_ops.hpp"
#include "core/name.hpp"
#include "core/naming_graph.hpp"
#include "core/resolve.hpp"

// Substrates.
#include "fs/file_system.hpp"
#include "fs/fsck.hpp"
#include "fs/snapshot.hpp"
#include "fs/union_dir.hpp"
#include "net/address.hpp"
#include "net/forwarding.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "ns/name_service.hpp"
#include "os/process_manager.hpp"
#include "os/program.hpp"
#include "os/service_registry.hpp"
#include "sim/simulator.hpp"

// Observability: typed trace events, spans, metrics, exporters.
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"

// §5 schemes.
#include "schemes/crosslink.hpp"
#include "schemes/newcastle.hpp"
#include "schemes/per_process.hpp"
#include "schemes/shared_graph.hpp"
#include "schemes/single_graph.hpp"

// §4–§7 analysis.
#include "coherence/coherence.hpp"
#include "coherence/repair.hpp"
#include "embed/embedded.hpp"

// Workloads.
#include "workload/churn.hpp"
#include "workload/doc_gen.hpp"
#include "workload/tree_gen.hpp"
