// Incoherence diagnosis and mechanical repair suggestions.
//
// §7's answer to cross-scope references is a *mapping rule* applied by
// humans: "one has to rely on humans to map names by adding the prefix
// /org2 … acceptable if … the mapping rules are simple and intuitive."
// This module derives such rules automatically: given two contexts and a
// probe set, it finds, for every name that is incoherent between them, how
// the second context *could* name the entity the first one means, and
// factors the per-name fixes into ranked prefix-rewrite rules
// (from-prefix → to-prefix), each validated against the probes it claims
// to repair.
//
// On the paper's own topologies the advisor rediscovers the paper's own
// rules: "/" → "/../m1" on a Newcastle system, "/users" → "/org2/users"
// on a cross-linked federation.
#pragma once

#include <span>
#include <vector>

#include "coherence/coherence.hpp"
#include "obs/metrics.hpp"

namespace namecoh {

/// One suggested rewrite rule, with its measured effect.
struct MappingSuggestion {
  MappingSuggestion(CompoundName from, CompoundName to)
      : from_prefix(std::move(from)), to_prefix(std::move(to)) {}

  CompoundName from_prefix;  ///< prefix in the A-side vocabulary
  CompoundName to_prefix;    ///< replacement in the B-side vocabulary
  std::size_t repaired = 0;    ///< incoherent probes this rule fixes
  std::size_t applicable = 0;  ///< incoherent probes carrying from_prefix

  [[nodiscard]] double coverage() const {
    return applicable == 0 ? 0.0
                           : static_cast<double>(repaired) /
                                 static_cast<double>(applicable);
  }
};

struct RepairReport {
  std::size_t probes = 0;
  std::size_t incoherent = 0;   ///< probes not strictly coherent
  std::size_t repairable = 0;   ///< incoherent probes some rule fixes
  std::size_t conflicts = 0;    ///< kDifferent verdicts (silent collisions)
  /// Ranked by probes repaired, descending; deduplicated.
  std::vector<MappingSuggestion> suggestions;
};

struct RepairOptions {
  std::size_t max_name_depth = 64;   ///< search depth for B-side names
  bool allow_dot_names = true;       ///< let B-side names climb ".."
  CoherenceMode mode = CoherenceMode::kWeak;
  std::size_t max_suggestions = 16;
};

class RepairAdvisor {
 public:
  /// `metrics`, when given, receives cumulative "repair.*" counters
  /// (probes examined, incoherent, repairable, suggestions emitted) across
  /// every suggest() call on this advisor.
  explicit RepairAdvisor(const NamingGraph& graph,
                         MetricsRegistry* metrics = nullptr)
      : graph_(&graph) {
    if (metrics != nullptr) {
      probes_ = &metrics->counter("repair.probes");
      incoherent_ = &metrics->counter("repair.incoherent");
      repairable_ = &metrics->counter("repair.repairable");
      suggestions_ = &metrics->counter("repair.suggestions");
    }
  }

  /// Diagnose incoherence from ctx_a's point of view: for every probe that
  /// ctx_a resolves but that is incoherent with ctx_b, find a B-side name
  /// for the A-side entity and derive the prefix rule.
  [[nodiscard]] RepairReport suggest(EntityId ctx_a, EntityId ctx_b,
                                     std::span<const CompoundName> probes,
                                     RepairOptions options = {}) const;

  /// Apply a suggestion to one name: rebase from_prefix → to_prefix.
  [[nodiscard]] static Result<CompoundName> apply(
      const MappingSuggestion& suggestion, const CompoundName& name);

 private:
  const NamingGraph* graph_;
  Counter* probes_ = nullptr;
  Counter* incoherent_ = nullptr;
  Counter* repairable_ = nullptr;
  Counter* suggestions_ = nullptr;
};

}  // namespace namecoh
