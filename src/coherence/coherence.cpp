#include "coherence/coherence.hpp"

#include <algorithm>
#include <unordered_set>

namespace namecoh {

std::string_view coherence_mode_name(CoherenceMode mode) {
  switch (mode) {
    case CoherenceMode::kStrict:
      return "strict";
    case CoherenceMode::kWeak:
      return "weak";
  }
  return "?";
}

std::string_view probe_verdict_name(ProbeVerdict verdict) {
  switch (verdict) {
    case ProbeVerdict::kSameEntity:
      return "same-entity";
    case ProbeVerdict::kWeakReplicas:
      return "weak-replicas";
    case ProbeVerdict::kDifferent:
      return "different";
    case ProbeVerdict::kOneUnresolved:
      return "one-unresolved";
    case ProbeVerdict::kBothUnresolved:
      return "both-unresolved";
  }
  return "?";
}

std::string_view cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kTtlOnly:
      return "ttl-only";
    case CachePolicy::kEpochPull:
      return "epoch-pull";
    case CachePolicy::kLeasePush:
      return "lease-push";
  }
  return "?";
}

std::uint64_t staleness_bound(CachePolicy policy,
                              const CacheCoherenceParams& params) {
  // Partition: no contact, no pushes — every policy rides out the TTL.
  if (params.partitioned) return params.ttl;
  switch (policy) {
    case CachePolicy::kTtlOnly:
      return params.ttl;
    case CachePolicy::kEpochPull:
      // The epoch high-water mark moves only when the client talks to the
      // authority again; until then the stale entry keeps serving.
      return params.revisit_interval == 0
                 ? params.ttl
                 : std::min(params.ttl, params.revisit_interval);
    case CachePolicy::kLeasePush:
      // The rebind itself triggers the kInvalidate push: the window is one
      // one-way transit, independent of when the client next looks.
      return std::min(params.ttl, params.push_latency);
  }
  return params.ttl;
}

bool verdict_coherent(ProbeVerdict verdict, CoherenceMode mode) {
  switch (verdict) {
    case ProbeVerdict::kSameEntity:
      return true;
    case ProbeVerdict::kWeakReplicas:
      return mode == CoherenceMode::kWeak;
    default:
      return false;
  }
}

void DegreeReport::add(ProbeVerdict verdict) {
  strict.add(verdict_coherent(verdict, CoherenceMode::kStrict));
  weak.add(verdict_coherent(verdict, CoherenceMode::kWeak));
  verdicts.add(std::string(probe_verdict_name(verdict)));
}

void DegreeReport::merge(const DegreeReport& other) {
  strict.merge(other.strict);
  weak.merge(other.weak);
  for (const auto& [key, n] : other.verdicts.counts()) {
    verdicts.add(key, n);
  }
}

ProbeVerdict CoherenceAnalyzer::compare(const Resolution& a,
                                        const Resolution& b) const {
  if (a.ok() && b.ok()) {
    if (a.entity == b.entity) return ProbeVerdict::kSameEntity;
    if (graph_->weakly_equal(a.entity, b.entity)) {
      return ProbeVerdict::kWeakReplicas;
    }
    return ProbeVerdict::kDifferent;
  }
  if (!a.ok() && !b.ok()) return ProbeVerdict::kBothUnresolved;
  return ProbeVerdict::kOneUnresolved;
}

ProbeVerdict CoherenceAnalyzer::probe(EntityId ctx_a, EntityId ctx_b,
                                      const CompoundName& name) const {
  Resolution a = resolve_from(*graph_, ctx_a, name);
  Resolution b = resolve_from(*graph_, ctx_b, name);
  return compare(a, b);
}

bool CoherenceAnalyzer::coherent_for(EntityId ctx_a, EntityId ctx_b,
                                     const CompoundName& name,
                                     CoherenceMode mode) const {
  return verdict_coherent(probe(ctx_a, ctx_b, name), mode);
}

DegreeReport CoherenceAnalyzer::degree(
    EntityId ctx_a, EntityId ctx_b,
    std::span<const CompoundName> probes) const {
  DegreeReport report;
  for (const CompoundName& name : probes) {
    report.add(probe(ctx_a, ctx_b, name));
  }
  return report;
}

DegreeReport CoherenceAnalyzer::degree_under_rule(
    const ClosureTable& table, const ResolutionRule& rule,
    const Circumstance& side_a, const Circumstance& side_b,
    std::span<const CompoundName> probes) const {
  DegreeReport report;
  for (const CompoundName& name : probes) {
    Resolution a =
        resolve_with_rule(*graph_, table, rule, side_a, name);
    Resolution b =
        resolve_with_rule(*graph_, table, rule, side_b, name);
    report.add(compare(a, b));
  }
  return report;
}

bool CoherenceAnalyzer::is_global_name(std::span<const EntityId> contexts,
                                       const CompoundName& name,
                                       CoherenceMode mode) const {
  if (contexts.empty()) return false;
  Resolution first = resolve_from(*graph_, contexts.front(), name);
  if (!first.ok()) return false;
  for (std::size_t i = 1; i < contexts.size(); ++i) {
    Resolution other = resolve_from(*graph_, contexts[i], name);
    if (!verdict_coherent(compare(first, other), mode)) return false;
  }
  return true;
}

FractionCounter CoherenceAnalyzer::global_fraction(
    std::span<const EntityId> contexts, std::span<const CompoundName> probes,
    CoherenceMode mode) const {
  FractionCounter counter;
  for (const CompoundName& name : probes) {
    counter.add(is_global_name(contexts, name, mode));
  }
  return counter;
}

DegreeReport CoherenceAnalyzer::pairwise_degree(
    std::span<const EntityId> contexts,
    std::span<const CompoundName> probes) const {
  DegreeReport report;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    for (std::size_t j = i + 1; j < contexts.size(); ++j) {
      report.merge(degree(contexts[i], contexts[j], probes));
    }
  }
  return report;
}

std::vector<CoherenceAnalyzer::ClassifiedProbe> CoherenceAnalyzer::classify(
    EntityId ctx_a, EntityId ctx_b,
    std::span<const CompoundName> probes) const {
  std::vector<ClassifiedProbe> out;
  out.reserve(probes.size());
  for (const CompoundName& name : probes) {
    out.push_back(ClassifiedProbe{name, probe(ctx_a, ctx_b, name)});
  }
  return out;
}

std::vector<CompoundName> CoherenceAnalyzer::probes_with_verdict(
    EntityId ctx_a, EntityId ctx_b, std::span<const CompoundName> probes,
    ProbeVerdict verdict) const {
  std::vector<CompoundName> out;
  for (const CompoundName& name : probes) {
    if (probe(ctx_a, ctx_b, name) == verdict) out.push_back(name);
  }
  return out;
}

std::vector<CompoundName> probes_from_dir(const NamingGraph& graph,
                                          EntityId dir,
                                          std::size_t max_depth,
                                          std::size_t max_probes) {
  EnumerateOptions options;
  options.max_depth = max_depth;
  options.max_results = max_probes;
  std::vector<CompoundName> out;
  for (const NamedEntity& named : enumerate_names(graph, dir, options)) {
    out.push_back(named.name);
  }
  return out;
}

std::vector<CompoundName> absolutize(std::span<const CompoundName> probes) {
  std::vector<CompoundName> out;
  out.reserve(probes.size());
  const Name root{std::string(kRootName)};
  for (const CompoundName& probe : probes) {
    std::vector<Name> names;
    names.reserve(probe.size() + 1);
    names.push_back(root);
    for (const Name& n : probe.components()) names.push_back(n);
    out.emplace_back(std::move(names));
  }
  return out;
}

std::vector<CompoundName> merge_probes(
    std::span<const std::vector<CompoundName>> sets) {
  std::vector<CompoundName> out;
  std::unordered_set<CompoundName> seen;
  for (const auto& set : sets) {
    for (const CompoundName& name : set) {
      if (seen.insert(name).second) out.push_back(name);
    }
  }
  return out;
}

}  // namespace namecoh
