// The coherence analyzer (§4, §5).
//
// Coherence in naming: a name n is *coherent* across activities when it
// denotes the same entity in the context each activity's closure mechanism
// selects. *Weak* coherence (§5) relaxes "same entity" to "replicas of the
// same replicated object" — sufficient for read-only replicated objects
// like /bin on every machine.
//
// The analyzer never guesses: every verdict is computed by actually running
// the resolver in both contexts and comparing outcomes. Verdicts distinguish
// *why* a probe is incoherent (different entities vs one side unresolved)
// because the §5 schemes fail in characteristically different ways —
// Newcastle mostly gives kDifferent (same name, different machine's file),
// while cross-link federations mostly give kOneUnresolved (name missing).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/closure.hpp"
#include "core/graph_ops.hpp"
#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "util/stats.hpp"

namespace namecoh {

enum class CoherenceMode : std::uint8_t { kStrict, kWeak };
std::string_view coherence_mode_name(CoherenceMode mode);

/// The resolver-cache end of the §5 spectrum: how tightly a client cache
/// tracks the authority's current bindings. Orthogonal to CoherenceMode —
/// that classifies what two *contexts* agree on; this classifies how long
/// one party may keep acting on a binding the authority has since changed
/// (*temporal* incoherence, the docs/COHERENCE.md axis).
enum class CachePolicy : std::uint8_t {
  kTtlOnly,    ///< trust an entry for its full TTL, no invalidation
  kEpochPull,  ///< TTL + rebind-epoch high-water marks learned on contact
  kLeasePush,  ///< TTL + epochs + server-pushed kInvalidate callbacks
};
std::string_view cache_policy_name(CachePolicy policy);

/// Inputs to the staleness bound: all durations in simulator ticks.
struct CacheCoherenceParams {
  std::uint64_t ttl = 0;               ///< positive-entry TTL
  std::uint64_t revisit_interval = 0;  ///< ticks between contacts with the
                                       ///< authority (epoch-pull refresh)
  std::uint64_t push_latency = 0;      ///< one-way kInvalidate transit time
  bool partitioned = false;  ///< authority unreachable from the client
};

/// Worst-case window (ticks) during which a client may serve a binding the
/// authority has rebound, per policy. The lease column is the Gray–Cheriton
/// result: push latency when healthy, the granted term's remainder — here
/// bounded by the TTL the entry degrades to — under partition. Every policy
/// degrades to the TTL bound when the authority is unreachable; none does
/// worse than TTL-only.
std::uint64_t staleness_bound(CachePolicy policy,
                              const CacheCoherenceParams& params);

enum class ProbeVerdict : std::uint8_t {
  kSameEntity,      ///< both resolved, identical entity — coherent
  kWeakReplicas,    ///< both resolved, same replica group — weakly coherent
  kDifferent,       ///< both resolved, unrelated entities
  kOneUnresolved,   ///< resolved on one side only
  kBothUnresolved,  ///< unresolved on both sides (both see ⊥E)
};
std::string_view probe_verdict_name(ProbeVerdict verdict);

/// Is a verdict coherent under the mode? kSameEntity always is;
/// kWeakReplicas only under kWeak. kBothUnresolved is *not* counted as
/// coherent: the probes in every experiment are names that denote something
/// for at least one party, so double-failure means the probe lost its
/// meaning entirely.
bool verdict_coherent(ProbeVerdict verdict, CoherenceMode mode);

/// Aggregate result of a probe sweep between two parties.
struct DegreeReport {
  FractionCounter strict;  ///< fraction coherent under kStrict
  FractionCounter weak;    ///< fraction coherent under kWeak
  CategoryCounter verdicts;

  void add(ProbeVerdict verdict);
  void merge(const DegreeReport& other);
};

class CoherenceAnalyzer {
 public:
  explicit CoherenceAnalyzer(const NamingGraph& graph) : graph_(&graph) {}

  /// Compare two resolution outcomes of the same name.
  [[nodiscard]] ProbeVerdict compare(const Resolution& a,
                                     const Resolution& b) const;

  /// The paper's definition, directly: does `name` denote the same entity
  /// in the contexts of the two context objects?
  [[nodiscard]] ProbeVerdict probe(EntityId ctx_a, EntityId ctx_b,
                                   const CompoundName& name) const;
  [[nodiscard]] bool coherent_for(EntityId ctx_a, EntityId ctx_b,
                                  const CompoundName& name,
                                  CoherenceMode mode) const;

  /// Degree of coherence between two contexts over a probe set
  /// ("The degree of coherence can be determined by comparing the contexts
  ///  R(a) associated with different activities", §5).
  [[nodiscard]] DegreeReport degree(EntityId ctx_a, EntityId ctx_b,
                                    std::span<const CompoundName> probes) const;

  /// Degree of coherence when each side resolves under a closure rule in
  /// its own circumstance — the §4 "Coherence and Resolution Rules" sweep.
  [[nodiscard]] DegreeReport degree_under_rule(
      const ClosureTable& table, const ResolutionRule& rule,
      const Circumstance& side_a, const Circumstance& side_b,
      std::span<const CompoundName> probes) const;

  /// Global names (§1, §4): a name that denotes the same entity in *every*
  /// listed context.
  [[nodiscard]] bool is_global_name(std::span<const EntityId> contexts,
                                    const CompoundName& name,
                                    CoherenceMode mode) const;

  /// Fraction of probe names that are global across the listed contexts.
  [[nodiscard]] FractionCounter global_fraction(
      std::span<const EntityId> contexts,
      std::span<const CompoundName> probes, CoherenceMode mode) const;

  /// Pairwise mean coherence across a set of contexts (all unordered
  /// pairs), the summary statistic used by the scheme-comparison benches.
  [[nodiscard]] DegreeReport pairwise_degree(
      std::span<const EntityId> contexts,
      std::span<const CompoundName> probes) const;

  /// Per-probe classification, for diagnosis tools that need the *names*,
  /// not just the counts.
  struct ClassifiedProbe {
    CompoundName name;
    ProbeVerdict verdict;
  };
  [[nodiscard]] std::vector<ClassifiedProbe> classify(
      EntityId ctx_a, EntityId ctx_b,
      std::span<const CompoundName> probes) const;

  /// The subset of probes with a given verdict.
  [[nodiscard]] std::vector<CompoundName> probes_with_verdict(
      EntityId ctx_a, EntityId ctx_b, std::span<const CompoundName> probes,
      ProbeVerdict verdict) const;

 private:
  const NamingGraph* graph_;
};

/// Build a probe set from everything resolvable in a directory context
/// (dot-free, breadth-first). Names come back *relative* (⟨a,b⟩); use
/// absolutize() to turn them into the "/a/b" vocabulary resolved through
/// process contexts.
std::vector<CompoundName> probes_from_dir(const NamingGraph& graph,
                                          EntityId dir,
                                          std::size_t max_depth = 8,
                                          std::size_t max_probes = 4096);

/// Prefix each probe with the root binding "/" (⟨a,b⟩ → ⟨"/",a,b⟩).
std::vector<CompoundName> absolutize(std::span<const CompoundName> probes);

/// Union of several probe sets, deduplicated, stable order.
std::vector<CompoundName> merge_probes(
    std::span<const std::vector<CompoundName>> sets);

}  // namespace namecoh
