#include "coherence/repair.hpp"

#include <algorithm>
#include <map>

#include "core/graph_ops.hpp"

namespace namecoh {
namespace {

/// Longest common suffix length of two component sequences.
std::size_t common_suffix(std::span<const Name> a, std::span<const Name> b) {
  std::size_t n = 0;
  while (n < a.size() && n < b.size() &&
         a[a.size() - 1 - n] == b[b.size() - 1 - n]) {
    ++n;
  }
  return n;
}

/// Drop the last `suffix` components; the remainder may be empty, which we
/// represent as nullopt (an empty prefix rule is a no-op and never useful).
std::optional<CompoundName> strip_suffix(const CompoundName& name,
                                         std::size_t suffix) {
  if (suffix >= name.size()) return std::nullopt;
  std::vector<Name> parts(name.components().begin(),
                          name.components().end() - static_cast<long>(suffix));
  return CompoundName(std::move(parts));
}

}  // namespace

RepairReport RepairAdvisor::suggest(EntityId ctx_a, EntityId ctx_b,
                                    std::span<const CompoundName> probes,
                                    RepairOptions options) const {
  RepairReport report;
  report.probes = probes.size();
  CoherenceAnalyzer analyzer(*graph_);

  struct Candidate {
    std::size_t votes = 0;
  };
  std::map<std::pair<CompoundName, CompoundName>, Candidate> candidates;
  std::vector<const CompoundName*> incoherent_probes;

  for (const CompoundName& probe : probes) {
    Resolution at_a = resolve_from(*graph_, ctx_a, probe);
    Resolution at_b = resolve_from(*graph_, ctx_b, probe);
    ProbeVerdict verdict = analyzer.compare(at_a, at_b);
    if (verdict_coherent(verdict, options.mode)) continue;
    ++report.incoherent;
    if (verdict == ProbeVerdict::kDifferent) ++report.conflicts;
    if (!at_a.ok()) continue;  // nothing to repair toward
    incoherent_probes.push_back(&probe);

    // How could ctx_b name the entity ctx_a means?
    auto b_name =
        shortest_name(*graph_, ctx_b, at_a.entity, options.max_name_depth,
                      /*skip_dot_names=*/!options.allow_dot_names);
    if (!b_name.is_ok() && options.mode == CoherenceMode::kWeak &&
        graph_->replica_group(at_a.entity).valid()) {
      // Weak mode: a name for any replica of the entity is as good.
      for (EntityId candidate : graph_->entities()) {
        if (candidate == at_a.entity ||
            !graph_->weakly_equal(candidate, at_a.entity)) {
          continue;
        }
        b_name = shortest_name(*graph_, ctx_b, candidate,
                               options.max_name_depth,
                               !options.allow_dot_names);
        if (b_name.is_ok()) break;
      }
    }
    if (!b_name.is_ok()) continue;

    std::size_t suffix =
        common_suffix(probe.components(), b_name.value().components());
    auto from_prefix = strip_suffix(probe, suffix);
    auto to_prefix = strip_suffix(b_name.value(), suffix);
    if (!from_prefix.has_value() || !to_prefix.has_value()) continue;
    ++candidates[{*from_prefix, *to_prefix}].votes;
  }

  // Validate each candidate against the incoherent probes it applies to.
  std::unordered_set<const CompoundName*> repaired_set;
  for (const auto& [key, candidate] : candidates) {
    (void)candidate;
    MappingSuggestion suggestion(key.first, key.second);
    for (const CompoundName* probe : incoherent_probes) {
      if (!probe->has_prefix(suggestion.from_prefix)) continue;
      ++suggestion.applicable;
      auto mapped = probe->rebase(suggestion.from_prefix,
                                  suggestion.to_prefix);
      if (!mapped.is_ok()) continue;
      Resolution at_a = resolve_from(*graph_, ctx_a, *probe);
      Resolution at_b = resolve_from(*graph_, ctx_b, mapped.value());
      if (verdict_coherent(analyzer.compare(at_a, at_b), options.mode)) {
        ++suggestion.repaired;
        repaired_set.insert(probe);
      }
    }
    if (suggestion.repaired > 0) {
      report.suggestions.push_back(std::move(suggestion));
    }
  }
  report.repairable = repaired_set.size();

  std::sort(report.suggestions.begin(), report.suggestions.end(),
            [](const MappingSuggestion& a, const MappingSuggestion& b) {
              if (a.repaired != b.repaired) return a.repaired > b.repaired;
              // Tie-break: shorter rules are more "simple and intuitive".
              return a.from_prefix.size() + a.to_prefix.size() <
                     b.from_prefix.size() + b.to_prefix.size();
            });
  if (report.suggestions.size() > options.max_suggestions) {
    report.suggestions.erase(
        report.suggestions.begin() +
            static_cast<long>(options.max_suggestions),
        report.suggestions.end());
  }
  if (probes_ != nullptr) {
    probes_->inc(report.probes);
    incoherent_->inc(report.incoherent);
    repairable_->inc(report.repairable);
    suggestions_->inc(report.suggestions.size());
  }
  return report;
}

Result<CompoundName> RepairAdvisor::apply(const MappingSuggestion& suggestion,
                                          const CompoundName& name) {
  return name.rebase(suggestion.from_prefix, suggestion.to_prefix);
}

}  // namespace namecoh
