// The Newcastle Connection (§5.1, Fig. 3).
//
// Machine trees are glued under a new super-root, but — unlike Locus —
// every process keeps its own machine's root as "/": "typically R(p)(/) is
// the root of the machine on which p executes". The super-root is reached
// with the Unix '..' notation: a machine root's ".." is rebound to the
// super-root by finalize(), so "/../m2/x" names machine m2's file x from
// machine m1.
//
// Consequently: coherence for '/…' names only among processes on the same
// machine; no global names; but a *simple mapping rule* translates a name
// valid on one machine to one valid on another (map_path), which is the
// paper's "a simple rule can be used to map names across machines".
#pragma once

#include <string>

#include "schemes/scheme.hpp"

namespace namecoh {

class NewcastleScheme final : public NamingScheme {
 public:
  explicit NewcastleScheme(FileSystem& fs) : NamingScheme(fs) {}

  [[nodiscard]] std::string_view scheme_name() const override {
    return "newcastle-connection";
  }

  /// Build the super-root over all sites added so far.
  void finalize() override;

  /// Each process binds "/" to its own machine's root.
  [[nodiscard]] EntityId site_root(SiteId site) const override {
    return site_tree(site);
  }

  [[nodiscard]] EntityId super_root() const { return super_root_; }

  /// The §5.1 mapping rule: translate an absolute path valid on `from`
  /// into the path a process on `to` must use for the same entity:
  /// "/x/y" on m1  →  "/../m1/x/y" on m2. Identity when from == to.
  [[nodiscard]] Result<std::string> map_path(SiteId from, SiteId to,
                                             std::string_view path) const;

 private:
  EntityId super_root_;
};

}  // namespace namecoh
