#include "schemes/shared_graph.hpp"

namespace namecoh {

Status SharedGraphScheme::assign_cell(SiteId site_id, const Name& cell) {
  if (!config_.cell_name.has_value()) {
    return failed_precondition_error(
        "assign_cell: scheme configured without cells");
  }
  // Cells live inside the shared tree, one directory per organization unit.
  EntityId cell_dir;
  auto existing = graph().context(shared_tree_).lookup(cell);
  if (existing.has_value()) {
    if (!graph().is_context_object(*existing)) {
      return not_a_context_error("assign_cell: '" + cell.text() +
                                 "' is not a directory");
    }
    cell_dir = *existing;
  } else {
    auto made = fs_->mkdir(shared_tree_, cell);
    if (!made.is_ok()) return made.status();
    cell_dir = made.value();
  }
  Context& site_ctx = graph().context(site_tree(site_id));
  if (site_ctx.contains(*config_.cell_name)) {
    return already_exists_error("assign_cell: site already has a cell");
  }
  site_ctx.bind(*config_.cell_name, cell_dir);
  return Status::ok();
}

Result<ReplicaGroupId> SharedGraphScheme::replicate_everywhere(
    std::string_view path, std::string contents) {
  if (sites_.empty()) {
    return failed_precondition_error("replicate_everywhere: no sites");
  }
  ReplicaGroupId group = graph().new_replica_group();
  for (const SiteRec& rec : sites_) {
    auto file = fs_->create_file_at(rec.tree, path, contents);
    if (!file.is_ok()) return file.status();
    graph().set_replica_group(file.value(), group);
  }
  return group;
}

}  // namespace namecoh
