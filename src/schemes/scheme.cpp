#include "schemes/scheme.hpp"

namespace namecoh {

SiteId NamingScheme::add_site(std::string label) {
  NAMECOH_CHECK(!finalized_, "add_site after finalize()");
  SiteRec rec;
  rec.tree = fs_->make_root("root:" + label);
  rec.label = std::move(label);
  sites_.push_back(std::move(rec));
  SiteId id(sites_.size() - 1);
  on_site_added(id);
  return id;
}

const NamingScheme::SiteRec& NamingScheme::site(SiteId id) const {
  NAMECOH_CHECK(id.valid() && id.value() < sites_.size(), "unknown site");
  return sites_[id.value()];
}

const std::string& NamingScheme::site_label(SiteId id) const {
  return site(id).label;
}

EntityId NamingScheme::site_tree(SiteId id) const { return site(id).tree; }

EntityId NamingScheme::make_site_context(SiteId id) {
  EntityId root = site_root(id);
  EntityId ctx = graph().add_context_object("pctx:" + site(id).label);
  graph().context(ctx) = FileSystem::make_process_context(root, root);
  return ctx;
}

void NamingScheme::record_metrics(MetricsRegistry& metrics) const {
  const std::string prefix = "scheme." + std::string(scheme_name()) + ".";
  metrics.gauge(prefix + "sites").set(static_cast<double>(sites_.size()));
  metrics.gauge(prefix + "entities")
      .set(static_cast<double>(graph().entity_count()));
}

std::vector<EntityId> NamingScheme::make_all_site_contexts() {
  std::vector<EntityId> out;
  out.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    out.push_back(make_site_context(SiteId(i)));
  }
  return out;
}

}  // namespace namecoh
