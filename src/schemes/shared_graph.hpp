// The shared naming graph approach (§5.2, Fig. 4): Andrew, OSF DCE.
//
// Every client site keeps its own local tree as its processes' root, and
// one *shared* tree is attached (not mounted — it keeps no single parent)
// in each local tree under a common name: /vice in Andrew, /... in DCE.
// Only names under the shared attachment are global; replicated commands
// (/bin, /lib) are locally bound replicas with weak coherence; everything
// else is local and incoherent across sites.
//
// The DCE flavour adds cells (§5.2): an extra per-site binding /.: to the
// site's organizational cell directory inside the shared tree. Names
// relative to the cell are exactly as incoherent across cells as the paper
// says ("Incoherence arises for names that are relative to the cell
// context") — two sites of the same cell agree on /.:/…, two sites of
// different cells do not.
#pragma once

#include <optional>

#include "schemes/scheme.hpp"

namespace namecoh {

struct SharedGraphConfig {
  /// The common attachment name: "vice" for Andrew, "..." for DCE.
  Name shared_name{"vice"};
  /// When set, each site also binds this name to its cell directory
  /// (DCE's "/.:").
  std::optional<Name> cell_name;
};

class SharedGraphScheme final : public NamingScheme {
 public:
  SharedGraphScheme(FileSystem& fs, SharedGraphConfig config = {})
      : NamingScheme(fs),
        config_(std::move(config)),
        shared_tree_(fs.make_root("shared-tree")) {}

  [[nodiscard]] std::string_view scheme_name() const override {
    return "shared-graph (Andrew/DCE)";
  }

  /// Each process binds "/" to its site's local root.
  [[nodiscard]] EntityId site_root(SiteId site) const override {
    return site_tree(site);
  }

  [[nodiscard]] EntityId shared_tree() const { return shared_tree_; }
  [[nodiscard]] const Name& shared_name() const {
    return config_.shared_name;
  }

  /// Create (or reuse) a cell directory named `cell` inside the shared
  /// tree and bind the site's cell name ("/.:") to it. Requires
  /// config_.cell_name.
  Status assign_cell(SiteId site, const Name& cell);

  /// Install a replica of a shared command/library on every site at the
  /// same local path (e.g. "bin/cc"): each site gets its own data object,
  /// all in one replica group. Returns the group id.
  Result<ReplicaGroupId> replicate_everywhere(std::string_view path,
                                              std::string contents);

 protected:
  void on_site_added(SiteId site) override {
    Status attached =
        fs_->attach(site_tree(site), config_.shared_name, shared_tree_);
    NAMECOH_CHECK(attached.is_ok(),
                  "shared attach failed: " + attached.to_string());
  }

 private:
  SharedGraphConfig config_;
  EntityId shared_tree_;
};

}  // namespace namecoh
