#include "schemes/crosslink.hpp"

namespace namecoh {

Status CrossLinkScheme::add_cross_link_to(SiteId from, const Name& as,
                                          SiteId to,
                                          std::string_view remote_path) {
  Resolution res = fs_->resolve_path(
      FileSystem::make_process_context(site_tree(to), site_tree(to)),
      std::string("/") + std::string(remote_path));
  if (!res.ok()) return res.status;
  if (fs_->is_dir(res.entity)) {
    return fs_->attach(site_tree(from), as, res.entity);
  }
  return fs_->link(site_tree(from), as, res.entity);
}

Result<std::string> CrossLinkScheme::map_with_prefix(
    const Name& link, std::string_view remote_path) {
  if (remote_path.empty() || remote_path.front() != '/') {
    return invalid_argument_error("map_with_prefix needs an absolute path");
  }
  std::string out = "/" + link.text();
  if (remote_path != "/") out += remote_path;
  return out;
}

}  // namespace namecoh
