#include "schemes/newcastle.hpp"

namespace namecoh {

void NewcastleScheme::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::vector<std::pair<Name, EntityId>> roots;
  roots.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    roots.emplace_back(Name(sites_[i].label), sites_[i].tree);
  }
  super_root_ = fs_->make_super_root("super-root", roots);
}

Result<std::string> NewcastleScheme::map_path(SiteId from, SiteId to,
                                              std::string_view path) const {
  if (!finalized_) {
    return failed_precondition_error("map_path before finalize()");
  }
  if (path.empty() || path.front() != '/') {
    return invalid_argument_error(
        "map_path handles absolute '/…' paths only");
  }
  if (from == to) return std::string(path);
  (void)site(to);  // validate the id
  // "/x" on `from` is "/../<from>/x" on `to`: up from `to`'s root to the
  // super-root, then down into `from`'s tree.
  std::string out = "/../" + site(from).label;
  if (path != "/") out += path;
  return out;
}

}  // namespace namecoh
