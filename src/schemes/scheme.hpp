// Common interface for the naming schemes analysed in §5.
//
// Vocabulary: a *site* is one machine / client subsystem, owning a naming
// tree of its own. A scheme decides how the sites' trees are composed and
// which directory the processes of each site bind "/" to. The degree of
// coherence between sites then falls out of the CoherenceAnalyzer with no
// scheme-specific measurement code — exactly the paper's method of
// "comparing the contexts R(a) associated with different activities".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file_system.hpp"
#include "obs/metrics.hpp"
#include "util/ids.hpp"

namespace namecoh {

struct SiteTag {};
using SiteId = StrongId<SiteTag>;

class NamingScheme {
 public:
  explicit NamingScheme(FileSystem& fs) : fs_(&fs) {}
  virtual ~NamingScheme() = default;

  NamingScheme(const NamingScheme&) = delete;
  NamingScheme& operator=(const NamingScheme&) = delete;

  [[nodiscard]] virtual std::string_view scheme_name() const = 0;

  /// Add a site; creates the site's own naming tree. Must be called before
  /// finalize().
  SiteId add_site(std::string label);

  /// Hook for schemes that compose trees only once all sites exist
  /// (Newcastle's super-root). Idempotent.
  virtual void finalize() {}

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const std::string& site_label(SiteId site) const;

  /// Root of the site's *own* naming tree (populate files here).
  [[nodiscard]] EntityId site_tree(SiteId site) const;

  /// The directory a typical process on this site binds "/" to. This is
  /// the scheme's defining choice.
  [[nodiscard]] virtual EntityId site_root(SiteId site) const = 0;

  /// A fresh process-context object for a typical process on the site:
  /// "/" → site_root(site), "." → site_root(site). The returned id can go
  /// straight into CoherenceAnalyzer::degree().
  [[nodiscard]] EntityId make_site_context(SiteId site);

  /// One context per site, for pairwise sweeps.
  [[nodiscard]] std::vector<EntityId> make_all_site_contexts();

  /// Publish the scheme's shape into `metrics` under
  /// "scheme.<scheme_name>.*" (site count, graph size), so experiment
  /// exports carry which topology produced the numbers.
  void record_metrics(MetricsRegistry& metrics) const;

  [[nodiscard]] FileSystem& fs() { return *fs_; }
  [[nodiscard]] const FileSystem& fs() const { return *fs_; }
  [[nodiscard]] NamingGraph& graph() { return fs_->graph(); }
  [[nodiscard]] const NamingGraph& graph() const { return fs_->graph(); }

 protected:
  struct SiteRec {
    std::string label;
    EntityId tree;
  };

  /// Called by add_site after the site's tree exists.
  virtual void on_site_added(SiteId site) { (void)site; }

  [[nodiscard]] const SiteRec& site(SiteId id) const;

  FileSystem* fs_;
  std::vector<SiteRec> sites_;
  bool finalized_ = false;
};

}  // namespace namecoh
