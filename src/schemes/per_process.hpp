// Per-process views (§6 II, §7 fn. 1): Plan 9 / extended Waterloo Port.
//
// There is no per-site root at all: every process gets its *own* root — a
// private context directory to which the naming trees of the subsystems
// the process knows are attached by name. Two processes that attach the
// same subsystems under the same names have coherence for every name
// through those attachments, regardless of where either process executes —
// this is how §6 II arranges R(a1)(n) = R(a2)(n) for the names in N'.
//
// The scheme tracks each site's tree; views are built per process from any
// mix of site trees (plus extra subtrees such as a shared /services).
#pragma once

#include <utility>
#include <vector>

#include "schemes/scheme.hpp"

namespace namecoh {

class PerProcessScheme final : public NamingScheme {
 public:
  explicit PerProcessScheme(FileSystem& fs) : NamingScheme(fs) {}

  [[nodiscard]] std::string_view scheme_name() const override {
    return "per-process views (Plan 9/Port)";
  }

  /// With no attachments specified, a "default view" of a site is a
  /// private root seeing only that site's tree under its own label.
  [[nodiscard]] EntityId site_root(SiteId site) const override {
    NAMECOH_CHECK(site.valid() && site.value() < default_views_.size() &&
                      default_views_[site.value()].valid(),
                  "site has no default view yet; call finalize()");
    return default_views_[site.value()];
  }

  /// Build default views (one per site: the site's tree attached under the
  /// site label).
  void finalize() override;

  /// Build a private view root from explicit attachments.
  [[nodiscard]] EntityId make_view(
      const std::vector<std::pair<Name, EntityId>>& attachments);

  /// The common case: a view seeing the given sites' trees, each under its
  /// site label.
  [[nodiscard]] EntityId make_view_of_sites(
      const std::vector<SiteId>& site_ids);

 private:
  std::vector<EntityId> default_views_;
};

}  // namespace namecoh
