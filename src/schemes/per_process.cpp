#include "schemes/per_process.hpp"

namespace namecoh {

void PerProcessScheme::finalize() {
  if (finalized_) return;
  finalized_ = true;
  default_views_.resize(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    default_views_[i] =
        make_view({{Name(sites_[i].label), sites_[i].tree}});
  }
}

EntityId PerProcessScheme::make_view(
    const std::vector<std::pair<Name, EntityId>>& attachments) {
  EntityId view = fs_->make_root("view");
  for (const auto& [name, tree] : attachments) {
    Status attached = fs_->attach(view, name, tree);
    NAMECOH_CHECK(attached.is_ok(),
                  "view attach failed: " + attached.to_string());
  }
  return view;
}

EntityId PerProcessScheme::make_view_of_sites(
    const std::vector<SiteId>& site_ids) {
  std::vector<std::pair<Name, EntityId>> attachments;
  attachments.reserve(site_ids.size());
  for (SiteId id : site_ids) {
    attachments.emplace_back(Name(site_label(id)), site_tree(id));
  }
  return make_view(attachments);
}

}  // namespace namecoh
