// The single naming graph approach (§5.1): Locus / V-system style.
//
// One global tree shared by all sites. Each site's tree is mounted under
// /<site-label> in the global root, and — following "the tradition of
// binding the root directory of each process to the root of the naming
// tree" — every process on every site binds "/" to the global root. The
// result is the high-coherence end of the spectrum: every compound name
// starting at "/" is global.
#pragma once

#include "schemes/scheme.hpp"

namespace namecoh {

class SingleGraphScheme final : public NamingScheme {
 public:
  explicit SingleGraphScheme(FileSystem& fs)
      : NamingScheme(fs), global_root_(fs.make_root("global-root")) {}

  [[nodiscard]] std::string_view scheme_name() const override {
    return "single-graph (Locus/V)";
  }

  [[nodiscard]] EntityId global_root() const { return global_root_; }

  /// Every process binds "/" to the shared global root.
  [[nodiscard]] EntityId site_root(SiteId) const override {
    return global_root_;
  }

 protected:
  void on_site_added(SiteId site) override {
    Status mounted = fs_->mount(global_root_, Name(site_label(site)),
                                site_tree(site));
    NAMECOH_CHECK(mounted.is_ok(), "mount failed: " + mounted.to_string());
  }

 private:
  EntityId global_root_;
};

}  // namespace namecoh
