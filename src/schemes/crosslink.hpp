// Cross-links between autonomous systems (§5.3, Fig. 5).
//
// Each site is an autonomous system with its own root; there is no shared
// tree and no super-root. Limited interaction is enabled by *cross-links*:
// a binding added to one system's root (or any of its directories) that
// points into another system's tree, e.g. /org2 on system 1 naming system
// 2's root, so system 1 refers to the other organization's home
// directories as /org2/users (§7).
//
// "There are no global names between systems unless they happen to use the
// same prefix name for a shared entity" — which the F5/E3 experiments
// measure directly.
#pragma once

#include "schemes/scheme.hpp"

namespace namecoh {

class CrossLinkScheme final : public NamingScheme {
 public:
  explicit CrossLinkScheme(FileSystem& fs) : NamingScheme(fs) {}

  [[nodiscard]] std::string_view scheme_name() const override {
    return "cross-links (federated)";
  }

  /// Each process binds "/" to its own system's root.
  [[nodiscard]] EntityId site_root(SiteId site) const override {
    return site_tree(site);
  }

  /// Add a cross-link: in `from`'s root, bind `as` to `to`'s root.
  Status add_cross_link(SiteId from, const Name& as, SiteId to) {
    return fs_->attach(site_tree(from), as, site_tree(to));
  }

  /// Add a cross-link deeper in the remote tree: bind `as` in `from`'s
  /// root to the entity at `remote_path` (relative) within `to`'s tree.
  Status add_cross_link_to(SiteId from, const Name& as, SiteId to,
                           std::string_view remote_path);

  /// The §7 human mapping rule: rewrite a name that `to` uses locally
  /// ("/users/ann") into the cross-link form `from` must use
  /// ("/org2/users/ann"), given the link name.
  [[nodiscard]] static Result<std::string> map_with_prefix(
      const Name& link, std::string_view remote_path);
};

}  // namespace namecoh
