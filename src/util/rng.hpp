// Deterministic random-number generation.
//
// All experiments in this repository must be reproducible run-to-run, so
// everything random flows through Rng (xoshiro256**) seeded explicitly.
// Rng::fork(label) derives independent substreams so that adding randomness
// to one module does not perturb another module's stream.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace namecoh {

/// splitmix64 step; used for seeding and for hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** with convenience distributions. Satisfies
/// UniformRandomBitGenerator so it plugs into <algorithm> shuffles.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s; rank 0 is hottest.
  /// Used by workload generators for skewed name popularity.
  std::size_t zipf(std::size_t n, double s);

  /// Geometric number of trials until first success, >= 1.
  std::uint64_t geometric(double p);

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    NAMECOH_CHECK(!items.empty(), "pick from empty span");
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent substream keyed by a label. Deterministic:
  /// the same (parent seed, label) always yields the same stream.
  Rng fork(std::string_view label) const;

  /// Derive the worker-indexed child stream `index`. Unlike fork(), which
  /// keys on the current *state* (so the answer depends on how many draws
  /// preceded it), child() keys on the construction seed alone: the same
  /// (seed, index) pair always yields the same stream, no matter when it is
  /// derived or what other streams were drawn from in between. This is the
  /// multi-thread contract (docs/PARALLELISM.md): give each pool worker
  /// child(worker_index) instead of sharing one Rng, and a parallel run is
  /// reproducible run-to-run because no worker's draws perturb another's.
  [[nodiscard]] Rng child(std::uint64_t index) const;

  /// The seed this generator was constructed with (child() keys on it).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  // Cached harmonic sums for zipf(): (n, s) -> H_{n,s} would need a map;
  // instead we recompute lazily for the last-used (n, s) pair, which covers
  // the common generator pattern of many draws from one distribution.
  std::size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace namecoh
