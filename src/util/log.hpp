// Minimal leveled logger.
//
// The simulator and messaging layer emit traces that are invaluable when an
// experiment misbehaves but must be silent in benchmarks; the global level
// defaults to kWarn so hot paths pay only a branch.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace namecoh {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view log_level_name(LogLevel level);

/// Global log configuration. Not thread-safe by design: the simulator is
/// single-threaded and tests set the level once up front.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the sink (default writes to stderr). Used by tests to capture.
  using Sink = std::function<void(LogLevel, std::string_view)>;
  void set_sink(Sink sink);
  void reset_sink();

  void write(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// RAII guard that sets the level for a scope (tests, verbose examples).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level)
      : previous_(Logger::instance().level()) {
    Logger::instance().set_level(level);
  }
  ~ScopedLogLevel() { Logger::instance().set_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

#define NAMECOH_LOG(level, expr)                                      \
  do {                                                                \
    if (::namecoh::Logger::instance().enabled(level)) {               \
      std::ostringstream namecoh_log_os;                              \
      namecoh_log_os << expr;                                         \
      ::namecoh::Logger::instance().write(level, namecoh_log_os.str()); \
    }                                                                 \
  } while (false)

#define NAMECOH_TRACE(expr) NAMECOH_LOG(::namecoh::LogLevel::kTrace, expr)
#define NAMECOH_DEBUG(expr) NAMECOH_LOG(::namecoh::LogLevel::kDebug, expr)
#define NAMECOH_INFO(expr) NAMECOH_LOG(::namecoh::LogLevel::kInfo, expr)
#define NAMECOH_WARN(expr) NAMECOH_LOG(::namecoh::LogLevel::kWarn, expr)
#define NAMECOH_ERROR(expr) NAMECOH_LOG(::namecoh::LogLevel::kError, expr)

}  // namespace namecoh
