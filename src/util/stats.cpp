#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace namecoh {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge.
  double delta = other.mean_ - mean_;
  std::uint64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }
double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {
  NAMECOH_CHECK(!boundaries_.empty(), "histogram needs >= 1 boundary");
  NAMECOH_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
                    std::adjacent_find(boundaries_.begin(),
                                       boundaries_.end()) ==
                        boundaries_.end(),
                "histogram boundaries must be strictly increasing");
}

void Histogram::add(double x) {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())] += 1;
  observed_max_ = total_ == 0 ? x : std::max(observed_max_, x);
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  NAMECOH_CHECK(boundaries_ == other.boundaries_,
                "histogram merge requires identical boundaries");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.total_ > 0) {
    observed_max_ =
        total_ == 0 ? other.observed_max_
                    : std::max(observed_max_, other.observed_max_);
  }
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // q = 0 asks for the minimum, which lies in the first non-empty bucket —
  // not at 0.0, which the q*total target used to report even when every
  // sample sat far above the lowest boundary.
  if (q == 0.0) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) return i == 0 ? 0.0 : boundaries_[i - 1];
    }
  }
  // The overflow bucket has no upper boundary; interpolate against the
  // largest value actually observed instead of an arbitrary extrapolation.
  const double overflow_hi = std::max(observed_max_, boundaries_.back());
  double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double lo = i == 0 ? 0.0 : boundaries_[i - 1];
      double hi = i < boundaries_.size() ? boundaries_[i] : overflow_hi;
      if (counts_[i] == 0) return lo;
      double within = (target - cum) / static_cast<double>(counts_[i]);
      return lo + within * (hi - lo);
    }
    cum = next;
  }
  return overflow_hi;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  double lo = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      lo = i < boundaries_.size() ? boundaries_[i] : lo;
      continue;
    }
    if (i < boundaries_.size()) {
      os << '[' << lo << ',' << boundaries_[i] << "): " << counts_[i] << ' ';
      lo = boundaries_[i];
    } else {
      os << '[' << lo << ",inf): " << counts_[i] << ' ';
    }
  }
  return os.str();
}

std::uint64_t CategoryCounter::get(const std::string& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t CategoryCounter::total() const {
  std::uint64_t sum = 0;
  for (const auto& [_, n] : counts_) sum += n;
  return sum;
}

}  // namespace namecoh
