// A minimal small-buffer vector for trivially-copyable value types.
//
// CompoundName stores its components inline (paths are short — the Unix
// discussion in §2 rarely exceeds a handful of components), so building,
// copying, and destroying a compound name normally touches no heap at all.
// Longer sequences spill to a heap buffer transparently.
//
// Deliberately tiny: only the operations the naming layer needs. T must be
// trivially copyable and trivially destructible, which is what makes the
// grow/copy paths simple placement-new loops with no destruction pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace namecoh {

template <typename T, std::size_t kInline>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially-copyable types");
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallVec never runs destructors");
  static_assert(kInline > 0, "inline capacity must be non-zero");

 public:
  SmallVec() = default;

  SmallVec(const T* values, std::size_t count) { assign(values, count); }

  SmallVec(const SmallVec& other) { assign(other.data(), other.size()); }

  SmallVec(SmallVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = kInline;
      other.size_ = 0;
    } else {
      assign(other.data(), other.size());
      other.size_ = 0;
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data(), other.size());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    release();
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = kInline;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = kInline;
      assign(other.data(), other.size());
      other.size_ = 0;
    }
    return *this;
  }

  ~SmallVec() { release(); }

  void reserve(std::size_t capacity) {
    if (capacity > cap_) grow(capacity);
  }

  void push_back(T value) {
    if (size_ == cap_) grow(cap_ * 2);
    ::new (static_cast<void*>(data() + size_)) T(value);
    ++size_;
  }

  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T* data() {
    return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_);
  }
  [[nodiscard]] const T* data() const {
    return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] const T& back() const { return data()[size_ - 1]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  [[nodiscard]] bool spilled() const { return heap_ != nullptr; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    const T* pa = a.data();
    const T* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

 private:
  void assign(const T* values, std::size_t count) {
    if (count > cap_) grow(count);
    T* out = data();
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(out + i)) T(values[i]);
    }
    size_ = static_cast<std::uint32_t>(count);
  }

  void grow(std::size_t capacity) {
    if (capacity < kInline * 2) capacity = kInline * 2;
    T* fresh = static_cast<T*>(
        ::operator new(capacity * sizeof(T), std::align_val_t{alignof(T)}));
    const T* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(src[i]);
    }
    release();
    heap_ = fresh;
    cap_ = static_cast<std::uint32_t>(capacity);
  }

  void release() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
    }
  }

  alignas(T) std::byte inline_[sizeof(T) * kInline];
  T* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
};

}  // namespace namecoh
