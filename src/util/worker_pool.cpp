#include "util/worker_pool.hpp"

#include <algorithm>

namespace namecoh {

WorkerPool::WorkerPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  errors_.resize(workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::worker_main(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
    }
    try {
      (*body)(index);
    } catch (...) {
      std::lock_guard lock(mu_);
      errors_[index] = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(const std::function<void(std::size_t)>& body) {
  {
    std::lock_guard lock(mu_);
    body_ = &body;
    outstanding_ = threads_.size();
    std::fill(errors_.begin(), errors_.end(), nullptr);
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    body_ = nullptr;
    for (auto& error : errors_) {
      if (error) std::rethrow_exception(error);
    }
  }
}

std::size_t WorkerPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace namecoh
