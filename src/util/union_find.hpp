// Disjoint-set (union-find) over dense indices.
//
// The coherence analyzer uses this for replica equivalence classes (§5:
// "weak coherence"): two objects are weakly equal when they belong to the
// same replica group, and groups merge when replication is configured.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace namecoh {

class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    rank_.assign(n, 0);
    components_ = n;
  }

  /// Grow the universe to at least n elements; new elements are singletons.
  void ensure(std::size_t n) {
    while (parent_.size() < n) {
      parent_.push_back(parent_.size());
      rank_.push_back(0);
      ++components_;
    }
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] std::size_t components() const { return components_; }

  std::size_t find(std::size_t x) {
    // Path halving.
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the sets were distinct and are now merged.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --components_;
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<unsigned> rank_;
  std::size_t components_ = 0;
};

}  // namespace namecoh
