#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"

namespace namecoh {
namespace {

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths,
                char left, char mid, char right) {
  os << left;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) os << mid;
    for (std::size_t k = 0; k < widths[i] + 2; ++k) os << '-';
  }
  os << right << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    os << ' ' << cell;
    for (std::size_t k = cell.size(); k < widths[i]; ++k) os << ' ';
    os << " |";
  }
  os << '\n';
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NAMECOH_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NAMECOH_CHECK(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() {
  if (!rows_.empty()) separators_.push_back(rows_.size() - 1);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  print_rule(os, widths, '+', '+', '+');
  print_cells(os, headers_, widths);
  print_rule(os, widths, '+', '+', '+');
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    print_cells(os, rows_[r], widths);
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      print_rule(os, widths, '+', '+', '+');
    }
  }
  print_rule(os, widths, '+', '+', '+');
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace namecoh
