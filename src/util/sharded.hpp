// Sharded-lock primitive: a value of type T split into N independently
// locked shards, selected by hash (docs/PARALLELISM.md).
//
// The concurrency pattern the execution-policy seam needs again and again
// is "a table written from many threads where contention, not ordering,
// is the problem" — the NameTable's string → atom map is the canonical
// case. Sharded<T, N> packages it: callers route each operation to the
// shard owning its key's hash, the shard's mutex serialises only the keys
// that collide in that shard, and cross-shard iteration (for_each) locks
// shards one at a time in index order, so snapshots taken from the driving
// thread are deterministic.
//
// Shards are cache-line aligned so two shards' mutexes never share a line
// (lock ping-pong would otherwise serialise disjoint shards in practice).
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <utility>

namespace namecoh {

template <typename T, std::size_t N = 16>
class Sharded {
  static_assert(N > 0 && (N & (N - 1)) == 0,
                "shard count must be a power of two");

 public:
  static constexpr std::size_t shard_count() { return N; }

  /// Index of the shard owning `hash`. The low bits select, so feed a
  /// well-mixed hash (std::hash of a string is fine; a raw small integer
  /// is not).
  static constexpr std::size_t shard_index(std::size_t hash) {
    return hash & (N - 1);
  }

  /// Run `fn(shard_value)` holding that shard's lock; returns fn's result.
  template <typename Fn>
  decltype(auto) with(std::size_t hash, Fn&& fn) {
    Shard& shard = shards_[shard_index(hash)];
    std::lock_guard lock(shard.mu);
    return std::forward<Fn>(fn)(shard.value);
  }
  template <typename Fn>
  decltype(auto) with(std::size_t hash, Fn&& fn) const {
    const Shard& shard = shards_[shard_index(hash)];
    std::lock_guard lock(shard.mu);
    return std::forward<Fn>(fn)(shard.value);
  }

  /// Run `fn(shard_value)` on every shard, locking one at a time in index
  /// order. Other threads may mutate later shards while earlier ones are
  /// visited; call from a quiescent point when an exact snapshot matters.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mu);
      fn(shard.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mu);
      fn(shard.value);
    }
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    T value{};
  };
  std::array<Shard, N> shards_;
};

}  // namespace namecoh
