#include "util/log.hpp"

#include <cstdio>

namespace namecoh {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { reset_sink(); }

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::reset_sink() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s\n",
                 std::string(log_level_name(level)).c_str(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::write(LogLevel level, std::string_view message) {
  if (sink_) sink_(level, message);
}

}  // namespace namecoh
