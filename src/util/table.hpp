// ASCII table rendering for experiment output.
//
// Every bench binary reproduces one of the paper's figures/claims as a table
// of rows; Table gives them a single consistent look and keeps column
// alignment logic out of the experiment code.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace namecoh {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers)
      : Table(std::vector<std::string>(headers)) {}

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Mark a horizontal separator after the most recently added row.
  void add_separator();

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Render with a box-drawing frame.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices followed by a rule
};

}  // namespace namecoh
