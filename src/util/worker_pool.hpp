// Real-thread worker pool for pure computation (docs/PARALLELISM.md).
//
// The simulator owns time; this pool owns CPUs. It exists for exactly one
// shape of work: the execution-policy seam (src/exec) hands every worker a
// *slice* of a batch of pure computations, blocks until all slices finish,
// and only then lets simulated time advance again. That barrier shape keeps
// the determinism story simple — no task queue, no stealing, no completion
// order to reason about: `run(body)` invokes `body(worker_index)` once on
// every worker thread and returns when the last one is done.
//
// Threads are started once and parked between generations (condvar), so a
// bench issuing thousands of batches pays thread creation once. Worker
// bodies must confine themselves to pure computation: no Simulator calls
// (the pure-compute fence in sim/simulator.hpp turns violations into thrown
// preconditions on the owning thread), no shared mutable state except the
// explicitly sharded structures (NameTable, MetricsShard). An exception
// escaping a body is captured and rethrown from run() on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace namecoh {

class WorkerPool {
 public:
  /// Starts `workers` threads (clamped to >= 1). The pool is pinned for its
  /// lifetime; size() never changes.
  explicit WorkerPool(std::size_t workers);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Run `body(worker_index)` once on every worker thread, 0 <= index <
  /// size(), and block until all invocations return. Not reentrant and not
  /// thread-safe: one run() at a time, from one driving thread. If any body
  /// throws, the first exception (by worker index) is rethrown here after
  /// the barrier completes.
  void run(const std::function<void(std::size_t)>& body);

  /// The machine's available hardware parallelism, never 0.
  static std::size_t hardware_workers();

 private:
  void worker_main(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // run() waits for the barrier
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t outstanding_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // one slot per worker
  std::vector<std::thread> threads_;
};

}  // namespace namecoh
