#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace namecoh {

std::vector<std::string> split(std::string_view text, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = text.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    if (pos == text.size()) break;
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_fraction(double value, int decimals) {
  if (decimals < 0) decimals = 0;
  if (decimals > 12) decimals = 12;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace namecoh
