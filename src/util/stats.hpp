// Statistics accumulators used by the coherence analyzer and the benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace namecoh {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Ratio counter: k successes out of n trials. The basic unit of every
/// coherence measurement ("fraction of probes that resolved coherently").
class FractionCounter {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }
  void merge(const FractionCounter& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t successes() const { return successes_; }
  /// successes/trials; 0 trials yields 0 ("vacuously incoherent" never
  /// appears in reports because probe sets are non-empty by construction).
  [[nodiscard]] double fraction() const {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

/// Fixed-boundary histogram over non-negative values (e.g. resolution path
/// lengths). Values beyond the last boundary land in an overflow bucket.
class Histogram {
 public:
  /// boundaries must be strictly increasing; bucket i holds values in
  /// [boundaries[i-1], boundaries[i]) with an implicit leading 0.
  explicit Histogram(std::vector<double> boundaries);

  void add(double x);

  /// Fold another histogram with *identical boundaries* into this one
  /// (counts, total, observed max). This is the per-thread-shard merge of
  /// docs/PARALLELISM.md — each worker accumulates into its own histogram
  /// and the driving thread merges them at the batch barrier — and it is
  /// exactly bucket-count addition, so merging is associative, commutative,
  /// and independent of worker timing. Throws PreconditionError on a
  /// boundary mismatch.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }
  /// Largest value ever added; anchors the overflow bucket in quantile().
  [[nodiscard]] double observed_max() const {
    return total_ == 0 ? 0.0 : observed_max_;
  }
  /// Approximate quantile (linear within buckets). q in [0,1]; q = 0
  /// reports the first non-empty bucket's lower edge, q = 1 at most the
  /// observed maximum.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;  // boundaries_.size() + 1 buckets
  std::uint64_t total_ = 0;
  double observed_max_ = 0.0;
};

/// Counts occurrences per string key; used for per-category breakdowns.
class CategoryCounter {
 public:
  void add(const std::string& key, std::uint64_t n = 1) { counts_[key] += n; }
  [[nodiscard]] std::uint64_t get(const std::string& key) const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace namecoh
