// Error handling for the namecoh library.
//
// Name resolution fails routinely and cheaply (unbound names, traversals
// through non-context objects, depth limits), so the resolver and everything
// above it reports failure by value with Status / Result<T> rather than by
// exception.  Exceptions remain for genuine programmer errors (violated
// preconditions), thrown via NAMECOH_CHECK.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace namecoh {

/// Failure categories. The resolver distinguishes *why* a resolution failed
/// because the coherence analyzer treats "both unbound" differently from
/// "bound to different entities".
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,        ///< name has no binding in the selected context
  kNotAContext,     ///< compound-name step landed on a non-context entity
  kDepthExceeded,   ///< resolution-path length limit hit (cycle guard)
  kInvalidArgument, ///< malformed name / id / parameter
  kAlreadyExists,   ///< binding or entity already present
  kPermission,      ///< operation not allowed by scheme/view
  kUnreachable,     ///< messaging: endpoint cannot be reached
  kFailedPrecondition, ///< operation requires state the caller didn't set up
  kInternal,        ///< invariant violation inside the library
};

/// Human-readable name of a status code ("NOT_FOUND" etc).
std::string_view status_code_name(StatusCode code);

/// A status: either OK or (code, message).
class [[nodiscard]] Status {
 public:
  /// OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "NOT_FOUND: message".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }
  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.to_string();
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status not_found_error(std::string message);
Status not_a_context_error(std::string message);
Status depth_exceeded_error(std::string message);
Status invalid_argument_error(std::string message);
Status already_exists_error(std::string message);
Status permission_error(std::string message);
Status unreachable_error(std::string message);
Status failed_precondition_error(std::string message);
Status internal_error(std::string message);

/// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }
  [[nodiscard]] StatusCode code() const { return status().code(); }

  /// Value accessors; throw std::logic_error when called on an error result
  /// (that is a caller bug, not a runtime condition).
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  /// std::optional view of the value (empty on error).
  [[nodiscard]] std::optional<T> as_optional() const {
    if (is_ok()) return std::get<T>(rep_);
    return std::nullopt;
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(rep_).to_string());
    }
  }
  std::variant<T, Status> rep_;
};

/// Precondition failure: programmer error, reported by exception.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// NAMECOH_CHECK(cond, "message"): throws PreconditionError when cond is
/// false. Used for API preconditions, never for data-dependent failures.
#define NAMECOH_CHECK(cond, message)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::namecoh::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      (message));                        \
    }                                                                    \
  } while (false)

}  // namespace namecoh
