// Strong integer id types.
//
// Almost every subsystem in this library hands out small integer handles:
// entity ids, machine addresses, process slots, replica-group ids.  Raw
// integers make it far too easy to pass a machine address where an entity id
// is expected; StrongId<Tag> makes each handle a distinct type with no
// implicit conversions, while staying a trivially copyable 8-byte value.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace namecoh {

/// A strongly typed integer identifier. `Tag` is any (possibly incomplete)
/// type used only to distinguish id families at compile time.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  /// Default-constructed ids are invalid().
  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  /// The reserved "no such thing" value.
  static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<underlying_type>::max());
  }

  [[nodiscard]] constexpr bool valid() const { return *this != invalid(); }
  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "#invalid";
    return os << '#' << id.value_;
  }

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

}  // namespace namecoh

template <typename Tag>
struct std::hash<namecoh::StrongId<Tag>> {
  std::size_t operator()(namecoh::StrongId<Tag> id) const noexcept {
    // splitmix64 finalizer: ids are sequential, so mix before bucketing.
    std::uint64_t x = id.value();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
