// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace namecoh {

/// Split on a separator character. Adjacent separators yield empty pieces
/// unless skip_empty is set. split("/a//b", '/') -> {"", "a", "", "b"}.
std::vector<std::string> split(std::string_view text, char sep,
                               bool skip_empty = false);

/// Join pieces with a separator string.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Fixed-width decimal rendering of a fraction, e.g. format_fraction(0.5, 3)
/// == "0.500". Used by experiment tables for stable column widths.
std::string format_fraction(double value, int decimals = 3);

}  // namespace namecoh
