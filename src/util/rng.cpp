#include "util/rng.hpp"

#include <cmath>

namespace namecoh {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a, then a splitmix finalize for avalanche.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed all 256 bits from splitmix64 as the xoshiro authors recommend;
  // guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  NAMECOH_CHECK(bound > 0, "next_below(0)");
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NAMECOH_CHECK(lo <= hi, "uniform_int with lo > hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  NAMECOH_CHECK(n > 0, "zipf over empty domain");
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
  }
  double u = uniform01();
  // Binary search for first cdf >= u.
  std::size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t Rng::geometric(double p) {
  NAMECOH_CHECK(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
  if (p >= 1.0) return 1;
  double u = uniform01();
  // Inverse CDF; +1 so the result counts trials, not failures.
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p)) + 1;
}

Rng Rng::child(std::uint64_t index) const {
  // Key on (construction seed, index) only — two splitmix steps give the
  // avalanche that keeps adjacent worker indices uncorrelated. The parent's
  // current state is deliberately not consulted.
  std::uint64_t state = seed_ ^ 0xa5a5a5a5a5a5a5a5ULL;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (index + 1);
  return Rng(splitmix64(state));
}

Rng Rng::fork(std::string_view label) const {
  // Combine current state with the label hash; does not advance *this.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                      rotl(s_[3], 47) ^ hash_label(label);
  return Rng(mix);
}

}  // namespace namecoh
