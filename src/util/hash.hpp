// Hash-combining helpers for composite map keys.
//
// Several modules key hash tables on composites: the resolver cache keys on
// (context, path), locations on (network, machine, local) triples, compound
// names on their component sequence. XOR-folding the per-field std::hash
// values collides for systematically related keys — swapped fields, shifted
// duplicates, common prefixes — so every composite key folds fields through
// this boost-style mix instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace namecoh {

/// Mix one already-hashed value into a seed (64-bit boost::hash_combine
/// constant; the shifts smear high and low bits so nearby inputs diverge).
[[nodiscard]] constexpr std::size_t hash_mix(std::size_t seed,
                                             std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hash `value` with std::hash and fold it into `seed`. Order-sensitive:
/// combining (a, b) and (b, a) yields different seeds, unlike XOR.
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
  seed = hash_mix(seed, std::hash<T>{}(value));
}

}  // namespace namecoh
