#include "util/status.hpp"

#include <sstream>

namespace namecoh {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kNotAContext:
      return "NOT_A_CONTEXT";
    case StatusCode::kDepthExceeded:
      return "DEPTH_EXCEEDED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermission:
      return "PERMISSION";
    case StatusCode::kUnreachable:
      return "UNREACHABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status not_found_error(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status not_a_context_error(std::string message) {
  return {StatusCode::kNotAContext, std::move(message)};
}
Status depth_exceeded_error(std::string message) {
  return {StatusCode::kDepthExceeded, std::move(message)};
}
Status invalid_argument_error(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status already_exists_error(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status permission_error(std::string message) {
  return {StatusCode::kPermission, std::move(message)};
}
Status unreachable_error(std::string message) {
  return {StatusCode::kUnreachable, std::move(message)};
}
Status failed_precondition_error(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "NAMECOH_CHECK failed: (" << expr << ") at " << file << ':' << line
     << ": " << message;
  throw PreconditionError(os.str());
}

}  // namespace detail
}  // namespace namecoh
