// Parallel resolution workload: a closed loop of N concurrent "activities"
// issuing name lookups through one ResolverClient's async engine
// (docs/ASYNC.md).
//
// Each activity behaves like a client thread: resolve a query, think for
// `think_time` ticks, resolve the next. With the pre-async resolver this
// shape was impossible to express — each resolve() monopolised the
// simulator until its own reply chain finished, so "N concurrent lookups"
// degenerated into N sequential ones. Here all N activities' hops
// interleave on the shared clock, which is exactly what bench_x5_pipeline
// measures (and what makes the engine's pipelining visible as wall-clock
// compression). The loop composes with everything else event-driven on the
// same simulator: churn, fault injection, anti-entropy — they just
// interleave.
#pragma once

#include <vector>

#include "exec/batch.hpp"
#include "ns/name_service.hpp"

namespace namecoh {

/// One lookup an activity may issue.
struct ParallelQuery {
  EntityId start;
  CompoundName name;
};

struct ParallelSpec {
  /// Concurrent activities (the closed-loop multiprogramming level).
  std::size_t activities = 16;
  /// Total resolutions to issue across all activities.
  std::size_t total_resolutions = 256;
  /// Ticks each activity waits between completing a lookup and issuing
  /// its next one. 0 = immediately (still via the scheduler, never
  /// recursively).
  SimDuration think_time = 0;
  /// Seed for the query-selection stream.
  std::uint64_t seed = 1;
  /// Zipf exponent for query selection: 0 (default) picks uniformly;
  /// s > 0 picks queries[rank] with p ∝ 1/(rank+1)^s, so the *front* of
  /// `queries` is the hot set — order queries hottest-first. Skew is what
  /// makes shard placement interesting (bench_x7_shard).
  double zipf_s = 0.0;
  /// When set, each resolution's settle latency (issue → completion, in
  /// simulated ticks) is recorded here. Optional; nullptr = off.
  Histogram* latency = nullptr;
  /// Flash crowd (docs/REBALANCING.md): while the simulator clock is in
  /// [flash_begin, flash_end), each issue redirects with probability
  /// `flash_fraction` to a uniform pick from
  /// queries[flash_first .. flash_first + flash_count). flash_count == 0
  /// disables the crowd entirely (the default); outside the window the
  /// normal zipf/uniform pick applies. This is what melts one subtree's
  /// shard while the rest of the fabric idles — the hot-spot the
  /// rebalance planner exists to detect.
  SimTime flash_begin = 0;
  SimTime flash_end = 0;
  double flash_fraction = 0.8;
  std::size_t flash_first = 0;
  std::size_t flash_count = 0;
};

struct ParallelOutcome {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  SimTime started = 0;   ///< sim time at the first issue
  SimTime finished = 0;  ///< sim time when the last resolution settled
  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
};

/// Run the closed loop: seed min(activities, total) lookups, then drive
/// `sim` until every resolution has settled. Queries are picked uniformly
/// at random (duplicates in `queries` raise the chance of in-flight
/// coalescing). The client's cache, retry and failover behaviour all apply
/// as configured.
ParallelOutcome run_parallel(Simulator& sim, ResolverClient& client,
                             const std::vector<ParallelQuery>& queries,
                             const ParallelSpec& spec);

// --- Local-resolution batch driver (execution-policy seam) -------------------
//
// Where run_parallel exercises *simulated* concurrency (N activities
// interleaved on one simulator thread), run_local_batches exercises *real*
// concurrency: repeated batches of pure local resolutions pushed through
// exec::resolve_batch under the seq or par policy, timed on the wall clock.
// This is the driver behind bench_core_resolution --threads N
// (docs/PARALLELISM.md).

struct LocalBatchSpec {
  /// Resolutions per batch (one resolve_batch call each).
  std::size_t batch_size = 4096;
  /// Number of batches to run.
  std::size_t batches = 8;
  /// 0 = SeqPolicy on the driving thread; N >= 1 = ParPolicy on an
  /// N-worker pool owned by the driver for the run.
  std::size_t threads = 0;
  /// Seed for query selection. Picks are drawn from per-worker Rng child
  /// streams — child(w) feeds exactly the slice worker w will resolve — so
  /// a run is reproducible run-to-run for a given (seed, threads), and no
  /// worker's draws perturb another's (util/rng.hpp).
  std::uint64_t seed = 1;
};

struct LocalBatchOutcome {
  std::uint64_t resolutions = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::size_t workers = 1;
  double wall_seconds = 0.0;
  [[nodiscard]] double throughput() const {
    return wall_seconds > 0.0
               ? static_cast<double>(resolutions) / wall_seconds
               : 0.0;
  }
};

/// Drive `spec.batches` batches of `spec.batch_size` resolutions against
/// `graph`, drawing queries from `queries`. Optional metrics/tracer are
/// forwarded to exec::resolve_batch (per-worker shards, merged at each
/// barrier).
LocalBatchOutcome run_local_batches(const NamingGraph& graph,
                                    const std::vector<ParallelQuery>& queries,
                                    const LocalBatchSpec& spec,
                                    MetricsRegistry* metrics = nullptr,
                                    Tracer* tracer = nullptr);

}  // namespace namecoh
