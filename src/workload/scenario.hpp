// ScenarioBuilder: a fluent facade over the dozen-object wiring ritual
// every experiment used to repeat by hand (simulator, internetwork,
// transport, fault injector, authority shards, name service, membership
// directory, resolver clients — in exactly the right order).
//
//   NamingGraph graph = ...;
//   auto cluster = ScenarioBuilder(graph)
//                      .shards(4)
//                      .service_time(50)
//                      .delegate_children_by_hash(root)
//                      .with_membership()
//                      .client_config(cfg)
//                      .build();
//   run_parallel(cluster->sim(), cluster->client(), queries, spec);
//
// The builder records intent; build() performs the wiring in dependency
// order and returns a Cluster that owns every runtime object (the naming
// graph stays caller-owned and read-only, as everywhere else). Benches and
// tests keep their *workload* logic and shed their *plumbing*.
//
// The second half of this header is membership workload scripts — churn
// patterns expressed as scheduled simulator events so they interleave with
// a closed-loop load (run_parallel drives the simulator; the scripts only
// schedule):
//
//   * RollingRestart — graceful leave -> downtime -> rejoin, one machine
//     at a time across the fleet: a rolling datacenter restart.
//   * RollingRenumber — renumber machines one by one at a fixed cadence:
//     the paper's §6 stress applied fleet-wide.
//   * schedule_partition_window — a long-lived symmetric partition that
//     heals at a set tick, for "resolution resumes on heal" phases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ns/membership.hpp"
#include "ns/name_service.hpp"
#include "ns/shard_ring.hpp"
#include "sim/faults.hpp"

namespace namecoh {

/// Everything a running scenario owns, destruction-ordered. Obtained from
/// ScenarioBuilder::build(); heap-allocated because the members hold
/// references into each other and must never move.
class Cluster {
 public:
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Internetwork& net() { return net_; }
  [[nodiscard]] Transport& transport() { return transport_; }
  [[nodiscard]] AuthorityMap& homes() { return homes_; }
  [[nodiscard]] NameService& service() { return service_; }
  [[nodiscard]] MetricsRegistry& metrics() { return transport_.metrics(); }

  /// Present iff the builder asked for with_faults() (with_membership()
  /// implies it — crash scripts need an injector).
  [[nodiscard]] FaultInjector* faults() { return faults_.get(); }
  /// Present iff the builder asked for with_membership().
  [[nodiscard]] MembershipDirectory* membership() { return membership_.get(); }

  /// The i-th resolver client (builder default: one).
  [[nodiscard]] ResolverClient& client(std::size_t i = 0) {
    return *clients_.at(i);
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// All shard-serving machines, shard-major (shard 0's replicas first).
  [[nodiscard]] const std::vector<MachineId>& machines() const {
    return machines_;
  }
  /// The machine serving `shard` (replica `r` of its replica set).
  [[nodiscard]] MachineId machine(ShardId shard, std::size_t replica = 0) const;
  /// The machine the i-th client resolves from.
  [[nodiscard]] MachineId client_machine(std::size_t i = 0) const {
    return client_machines_.at(i);
  }

 private:
  friend class ScenarioBuilder;
  explicit Cluster(const NamingGraph& graph)
      : graph_(graph), service_(graph, net_, transport_, homes_) {}

  const NamingGraph& graph_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_{sim_, net_};
  std::unique_ptr<FaultInjector> faults_;
  AuthorityMap homes_;
  NameService service_;
  std::unique_ptr<MembershipDirectory> membership_;
  std::vector<NetworkId> networks_;
  std::vector<MachineId> machines_;
  std::size_t replicas_ = 1;
  std::vector<MachineId> client_machines_;
  std::vector<std::unique_ptr<ResolverClient>> clients_;
};

class ScenarioBuilder {
 public:
  /// `graph` stays caller-owned; the built cluster reads it only.
  explicit ScenarioBuilder(const NamingGraph& graph) : graph_(graph) {}

  /// Number of networks machines spread across (round-robin by shard).
  /// Default 1 — one LAN.
  ScenarioBuilder& networks(std::size_t count);
  /// Authority shards, each served by `replicas` machines. Default 1x1.
  ScenarioBuilder& shards(std::size_t count, std::size_t replicas = 1);
  /// Per-request service time every server charges (default 0).
  ScenarioBuilder& service_time(SimDuration ticks);
  /// Enable server-side leases (ResolverClientConfig::lease_coherence on
  /// the client side is the caller's half).
  ScenarioBuilder& lease_policy(SimDuration term, std::size_t capacity = 4096);
  /// Start periodic anti-entropy on the service after wiring.
  ScenarioBuilder& anti_entropy(SimDuration interval);

  /// install_delegation(subtree -> shard), in call order. Order matters
  /// exactly as it does on AuthorityMap: delegate subtrees before their
  /// enclosing region.
  ScenarioBuilder& delegate(EntityId subtree, ShardId shard);
  /// delegate_children_by_hash(parent) over a ring holding every shard —
  /// and, with with_membership(), the parent/ring the directory manages
  /// (MembershipDirectory::manage_subtrees).
  ScenarioBuilder& delegate_children_by_hash(EntityId parent);
  /// Feed per-subtree load counters (NameService::track_subtree_loads).
  ScenarioBuilder& track_loads(std::vector<EntityId> subtrees);

  /// Attach a FaultInjector to the transport.
  ScenarioBuilder& with_faults();
  /// Attach a MembershipDirectory: every shard machine is announced for
  /// its shard, every client machine as client-only, and each client gets
  /// attach_membership for route healing. Implies with_faults().
  ScenarioBuilder& with_membership(MembershipOptions options = {});

  /// Config every built client starts from.
  ScenarioBuilder& client_config(ResolverClientConfig config);
  /// Number of resolver clients, each on its own machine (default 1).
  ScenarioBuilder& clients(std::size_t count);
  /// Metrics label prefix for the clients (default "scenario").
  ScenarioBuilder& client_label(std::string label);

  /// Wire everything and hand over ownership. The builder is single-use.
  [[nodiscard]] std::unique_ptr<Cluster> build();

 private:
  struct Delegation {
    EntityId target;
    ShardId shard = AuthorityMap::kNoShard;  ///< kNoShard = hash children
  };

  const NamingGraph& graph_;
  std::size_t networks_ = 1;
  std::size_t shards_ = 1;
  std::size_t replicas_ = 1;
  SimDuration service_time_ = 0;
  SimDuration lease_term_ = 0;
  std::size_t lease_capacity_ = 4096;
  SimDuration anti_entropy_ = 0;
  std::vector<Delegation> delegations_;
  std::vector<EntityId> tracked_;
  bool faults_ = false;
  bool membership_ = false;
  MembershipOptions membership_options_;
  ResolverClientConfig client_config_;
  std::size_t clients_ = 1;
  std::string label_ = "scenario";
};

// --- Membership workload scripts ---------------------------------------------

struct RollingRestartSpec {
  SimTime start = 0;          ///< first leave fires here
  SimDuration downtime = 5000;  ///< kDown dwell before the rejoin
  SimDuration gap = 2000;     ///< settle gap between one machine and the next
};

/// Rolling datacenter restart: for each machine in `order`, graceful-leave
/// (live handoff of its subtrees), stay down for `downtime`, rejoin (live
/// handback), wait for the handback queue to drain plus `gap`, move on.
/// Pure event scheduling — drive the simulator from outside (e.g. with
/// run_parallel) and poll done().
class RollingRestart {
 public:
  RollingRestart(Simulator& sim, MembershipDirectory& members,
                 std::vector<MachineId> order, RollingRestartSpec spec);
  void start();
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::size_t restarts_completed() const { return completed_; }

 private:
  void leave_next();
  void await_settle();

  Simulator& sim_;
  MembershipDirectory& members_;
  std::vector<MachineId> order_;
  RollingRestartSpec spec_;
  std::size_t index_ = 0;
  std::size_t completed_ = 0;
  bool done_ = false;
};

struct RollingRenumberSpec {
  SimTime start = 0;
  SimDuration interval = 2000;  ///< one rename per interval
  std::size_t rounds = 1;       ///< passes over the machine list
};

/// Fleet-wide §6 stress: renumber each machine in `order`, one per
/// `interval`, `rounds` times over. Every fully-qualified pid minted before
/// a machine's turn goes stale at that machine's rename.
class RollingRenumber {
 public:
  RollingRenumber(Simulator& sim, MembershipDirectory& members,
                  std::vector<MachineId> order, RollingRenumberSpec spec);
  void start();
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::size_t renames_completed() const { return completed_; }

 private:
  void rename_next();

  Simulator& sim_;
  MembershipDirectory& members_;
  std::vector<MachineId> order_;
  RollingRenumberSpec spec_;
  std::size_t fired_ = 0;
  std::size_t completed_ = 0;
  bool done_ = false;
};

/// Symmetric partition between `a` and `b` over [begin, end): both
/// directions blocked at `begin`, healed at `end`. Resolution through the
/// cut resumes after the heal; nothing is torn down.
void schedule_partition_window(FaultInjector& faults, MachineId a, MachineId b,
                               SimTime begin, SimTime end);

}  // namespace namecoh
