#include "workload/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "util/rng.hpp"

namespace namecoh {

namespace {

// Heap-held loop state: completion callbacks and think-time events hold a
// shared_ptr, so a straggler event fired after run_parallel returned (e.g.
// by a later phase driving the same simulator) finds live state and
// no-ops on the issued-count guard instead of touching freed memory.
struct Loop {
  Loop(Simulator& sim_in, ResolverClient& client_in,
       std::vector<ParallelQuery> queries_in, const ParallelSpec& spec_in)
      : sim(sim_in),
        client(client_in),
        queries(std::move(queries_in)),
        spec(spec_in),
        rng(spec_in.seed) {}

  Simulator& sim;
  ResolverClient& client;
  std::vector<ParallelQuery> queries;
  ParallelSpec spec;
  Rng rng;
  ParallelOutcome out;
};

void issue(const std::shared_ptr<Loop>& loop) {
  if (loop->out.issued >= loop->spec.total_resolutions) return;
  ++loop->out.issued;
  // Index-based selection so the flash-crowd branch shares one draw
  // stream with the base distribution: with flash_count == 0 the draws
  // below are exactly the pre-flash zipf/pick sequence.
  const ParallelSpec& spec = loop->spec;
  std::size_t pick;
  const SimTime at = loop->sim.now();
  const bool flashing = spec.flash_count > 0 && at >= spec.flash_begin &&
                        at < spec.flash_end &&
                        loop->rng.next_below(1000000) <
                            static_cast<std::uint64_t>(
                                spec.flash_fraction * 1000000.0);
  if (flashing) {
    pick = spec.flash_first + loop->rng.next_below(spec.flash_count);
    NAMECOH_CHECK(pick < loop->queries.size(),
                  "flash crowd range exceeds the query list");
  } else if (spec.zipf_s > 0.0) {
    pick = loop->rng.zipf(loop->queries.size(), spec.zipf_s);
  } else {
    pick = loop->rng.next_below(loop->queries.size());
  }
  const ParallelQuery& query = loop->queries[pick];
  const SimTime issued_at = loop->sim.now();
  loop->client.resolve_async(
      query.start, query.name,
      [loop, issued_at](const Result<EntityId>& result) {
        ++loop->out.completed;
        if (loop->spec.latency != nullptr) {
          loop->spec.latency->add(
              static_cast<double>(loop->sim.now() - issued_at));
        }
        if (result.is_ok()) {
          ++loop->out.ok;
        } else {
          ++loop->out.failed;
        }
        // Always re-issue through the scheduler, even with zero think
        // time: a run of cache hits settles synchronously, and issuing
        // from inside the completion would recurse one stack frame per
        // hit.
        loop->sim.schedule_in(loop->spec.think_time,
                              [loop] { issue(loop); });
      });
}

}  // namespace

ParallelOutcome run_parallel(Simulator& sim, ResolverClient& client,
                             const std::vector<ParallelQuery>& queries,
                             const ParallelSpec& spec) {
  NAMECOH_CHECK(!queries.empty(), "parallel workload needs queries");
  NAMECOH_CHECK(spec.activities > 0,
                "parallel workload needs at least one activity");
  auto loop = std::make_shared<Loop>(sim, client, queries, spec);
  loop->out.started = sim.now();
  const std::size_t seeds =
      std::min<std::size_t>(spec.activities, spec.total_resolutions);
  for (std::size_t i = 0; i < seeds; ++i) issue(loop);
  sim.run_while([&loop] {
    return loop->out.completed < loop->spec.total_resolutions;
  });
  loop->out.finished = sim.now();
  NAMECOH_CHECK(loop->out.completed == loop->spec.total_resolutions,
                "parallel workload stalled: event queue drained with "
                "resolutions outstanding");
  return loop->out;
}

LocalBatchOutcome run_local_batches(const NamingGraph& graph,
                                    const std::vector<ParallelQuery>& queries,
                                    const LocalBatchSpec& spec,
                                    MetricsRegistry* metrics,
                                    Tracer* tracer) {
  NAMECOH_CHECK(!queries.empty(), "local batch workload needs queries");
  NAMECOH_CHECK(spec.batch_size > 0 && spec.batches > 0,
                "local batch workload needs batch_size and batches >= 1");

  const bool par = spec.threads > 0;
  const std::size_t workers = par ? spec.threads : 1;
  std::unique_ptr<WorkerPool> pool;
  if (par) pool = std::make_unique<WorkerPool>(workers);

  // Per-worker child streams, derived once from the spec seed. Query picks
  // for slice w are drawn from child(w) on the driving thread (picks are
  // not the parallel part — the resolutions are), so the sequence each
  // worker resolves is fixed by (seed, w) alone.
  Rng root(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) streams.push_back(root.child(w));

  exec::BatchOptions options;
  options.metrics = metrics;
  options.tracer = tracer;

  LocalBatchOutcome out;
  out.workers = workers;
  std::vector<exec::BatchQuery> batch(spec.batch_size);

  const auto started = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < spec.batches; ++b) {
    for (std::size_t w = 0; w < workers; ++w) {
      // Fill exactly the contiguous slice worker w will own (the same
      // partition exec::resolve_batch uses).
      const std::size_t begin = w * spec.batch_size / workers;
      const std::size_t end = (w + 1) * spec.batch_size / workers;
      for (std::size_t i = begin; i < end; ++i) {
        const ParallelQuery& query =
            queries[streams[w].next_below(queries.size())];
        batch[i] = exec::BatchQuery{query.start, query.name};
      }
    }
    exec::BatchOutcome result =
        par ? exec::resolve_batch(
                  exec::ParPolicy{pool.get(), workers}, graph,
                  {batch.data(), batch.size()}, options)
            : exec::resolve_batch(exec::SeqPolicy{}, graph,
                                  {batch.data(), batch.size()}, options);
    out.resolutions += result.results.size();
    out.ok += result.ok;
    out.failed += result.failed;
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return out;
}

}  // namespace namecoh
