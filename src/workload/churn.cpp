#include "workload/churn.hpp"

namespace namecoh {
namespace {

constexpr std::uint32_t kChurnMessage = 7001;

struct ChurnState {
  Simulator& sim;
  Internetwork& net;
  Transport& transport;
  const std::vector<MachineId>& machines;
  const std::vector<EndpointId>& processes;
  ChurnSpec spec;
  Rng rng;
  ChurnOutcome outcome;
  SimTime deadline;
  // subject identity travels out-of-band for scoring only (a u64 field).
  void send_one();
  void renumber_one();
};

void ChurnState::send_one() {
  if (sim.now() >= deadline) return;
  sim.schedule_in(spec.message_interval, [this] { send_one(); });

  EndpointId sender = rng.pick(processes);
  EndpointId receiver = rng.pick(processes);
  EndpointId subject = rng.pick(processes);
  auto sender_loc = net.location_of(sender);
  auto receiver_loc = net.location_of(receiver);
  auto subject_loc = net.location_of(subject);
  if (!sender_loc.is_ok() || !receiver_loc.is_ok() || !subject_loc.is_ok()) {
    return;
  }
  Message msg;
  msg.type = kChurnMessage;
  msg.payload.add_pid(relativize(subject_loc.value(), sender_loc.value()));
  msg.payload.add_u64(subject.value());  // ground truth for scoring
  Status sent = transport.send(
      sender, relativize(receiver_loc.value(), sender_loc.value()),
      std::move(msg));
  if (sent.is_ok()) {
    ++outcome.messages_sent;
  } else {
    ++outcome.send_failures;
  }
}

void ChurnState::renumber_one() {
  if (sim.now() >= deadline || spec.renumber_interval == 0) return;
  sim.schedule_in(spec.renumber_interval, [this] { renumber_one(); });
  if (net.renumber_machine(rng.pick(machines)).is_ok()) {
    ++outcome.reconfigurations;
  }
}

}  // namespace

ChurnOutcome run_churn(Simulator& sim, Internetwork& net,
                       Transport& transport,
                       const std::vector<MachineId>& machines,
                       const std::vector<EndpointId>& processes,
                       const ChurnSpec& spec) {
  NAMECOH_CHECK(!machines.empty() && !processes.empty(),
                "churn needs a populated topology");
  ChurnState state{sim,       net,  transport, machines,
                   processes, spec, Rng(spec.seed), {},
                   sim.now() + spec.duration};

  for (EndpointId ep : processes) {
    transport.set_handler(ep, [&state](EndpointId self, const Message& m) {
      if (m.type != kChurnMessage || m.payload.size() < 2 ||
          m.payload.type_at(0) != FieldType::kPid ||
          m.payload.type_at(1) != FieldType::kU64) {
        return;
      }
      ++state.outcome.deliveries;
      EndpointId intended(m.payload.u64_at(1));
      auto resolved =
          state.transport.resolve_pid(self, m.payload.pid_at(0));
      state.outcome.pid_valid.add(resolved.is_ok() &&
                                  resolved.value() == intended);
    });
  }

  state.send_one();
  if (spec.renumber_interval > 0) state.renumber_one();
  sim.run_until(state.deadline);

  for (EndpointId ep : processes) transport.clear_handler(ep);

  // Mirror the outcome into the shared registry so churn shows up next to
  // the transport/name-service counters in exported metrics.
  MetricsRegistry& metrics = transport.metrics();
  metrics.counter("churn.messages_sent").inc(state.outcome.messages_sent);
  metrics.counter("churn.send_failures").inc(state.outcome.send_failures);
  metrics.counter("churn.deliveries").inc(state.outcome.deliveries);
  metrics.counter("churn.reconfigurations")
      .inc(state.outcome.reconfigurations);
  metrics.counter("churn.pid_checks").inc(state.outcome.pid_valid.trials());
  metrics.counter("churn.pid_valid").inc(state.outcome.pid_valid.successes());
  return state.outcome;
}

}  // namespace namecoh
