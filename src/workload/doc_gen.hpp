// Structured-document workloads for the Fig. 6 experiments.
//
// Generates a self-contained document subtree: a root file including
// chapter files, chapters including section files, plus embedded
// references that exercise the Algol-scope search at varying distances
// (binding found in the containing directory, the parent, the subtree
// root). The subtree is relocatable by construction *iff* embedded names
// are resolved with R(file); resolving them with R(a) works only while the
// subtree sits at the path the names were written against.
#pragma once

#include <string>
#include <vector>

#include "fs/file_system.hpp"
#include "util/rng.hpp"

namespace namecoh {

struct DocSpec {
  std::size_t chapters = 3;
  std::size_t sections_per_chapter = 3;
  /// Extra references per section to shared assets at the subtree root
  /// (exercises the upward scope search past the chapter directory).
  std::size_t shared_refs_per_section = 1;
};

struct Document {
  EntityId subtree;    ///< the document's directory (attach/copy this)
  EntityId root_file;  ///< the master file ("book.tex")
  std::size_t files = 0;
  std::size_t refs = 0;  ///< embedded references created
};

/// Build a document subtree under `parent` with the given name.
Document make_document(FileSystem& fs, EntityId parent, const Name& name,
                       const DocSpec& spec);

}  // namespace namecoh
