#include "workload/scenario.hpp"

#include <utility>

#include "util/status.hpp"

namespace namecoh {

MachineId Cluster::machine(ShardId shard, std::size_t replica) const {
  const std::size_t index = static_cast<std::size_t>(shard) * replicas_ +
                            replica;
  NAMECOH_CHECK(index < machines_.size(), "no such shard machine");
  return machines_[index];
}

ScenarioBuilder& ScenarioBuilder::networks(std::size_t count) {
  NAMECOH_CHECK(count > 0, "scenario needs at least one network");
  networks_ = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shards(std::size_t count,
                                         std::size_t replicas) {
  NAMECOH_CHECK(count > 0 && replicas > 0, "scenario needs >= 1x1 shards");
  shards_ = count;
  replicas_ = replicas;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::service_time(SimDuration ticks) {
  service_time_ = ticks;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::lease_policy(SimDuration term,
                                               std::size_t capacity) {
  lease_term_ = term;
  lease_capacity_ = capacity;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::anti_entropy(SimDuration interval) {
  anti_entropy_ = interval;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delegate(EntityId subtree, ShardId shard) {
  delegations_.push_back(Delegation{subtree, shard});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delegate_children_by_hash(EntityId parent) {
  delegations_.push_back(Delegation{parent, AuthorityMap::kNoShard});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::track_loads(std::vector<EntityId> subtrees) {
  tracked_ = std::move(subtrees);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::with_faults() {
  faults_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::with_membership(MembershipOptions options) {
  membership_ = true;
  faults_ = true;
  membership_options_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::client_config(ResolverClientConfig config) {
  client_config_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::clients(std::size_t count) {
  NAMECOH_CHECK(count > 0, "scenario needs at least one client");
  clients_ = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::client_label(std::string label) {
  label_ = std::move(label);
  return *this;
}

std::unique_ptr<Cluster> ScenarioBuilder::build() {
  std::unique_ptr<Cluster> cluster(new Cluster(graph_));

  for (std::size_t i = 0; i < networks_; ++i) {
    cluster->networks_.push_back(
        cluster->net_.add_network("net" + std::to_string(i)));
  }
  if (faults_) {
    cluster->faults_ = std::make_unique<FaultInjector>(cluster->sim_);
    cluster->transport_.attach_faults(cluster->faults_.get());
  }

  // Shard machines, shard-major; shard i's replicas live on network
  // (i mod networks) so multi-network scenarios cross network boundaries
  // along shard boundaries.
  cluster->replicas_ = replicas_;
  for (std::size_t i = 0; i < shards_; ++i) {
    std::vector<MachineId> replica_set;
    for (std::size_t r = 0; r < replicas_; ++r) {
      std::string name = "s" + std::to_string(i);
      if (replicas_ > 1) name += "r" + std::to_string(r);
      MachineId m = cluster->net_.add_machine(
          cluster->networks_[i % networks_], name);
      cluster->machines_.push_back(m);
      replica_set.push_back(m);
    }
    (void)cluster->homes_.add_shard(std::move(replica_set));
  }
  for (std::size_t c = 0; c < clients_; ++c) {
    cluster->client_machines_.push_back(cluster->net_.add_machine(
        cluster->networks_[c % networks_], "client" + std::to_string(c)));
  }

  // Delegations in call order (install_delegation never descends into an
  // already-owned region, so the caller's order is the placement policy).
  // Hash delegations share one ring over every shard; the last hash-managed
  // parent is what a membership directory manages.
  ShardRing ring;
  for (std::size_t i = 0; i < shards_; ++i) {
    ring.add_shard(static_cast<ShardId>(i));
  }
  bool have_managed_parent = false;
  EntityId managed_parent;
  for (const Delegation& d : delegations_) {
    if (d.shard == AuthorityMap::kNoShard) {
      NAMECOH_CHECK(cluster->homes_
                        .delegate_children_by_hash(graph_, d.target, ring)
                        .is_ok(),
                    "scenario hash delegation failed");
      have_managed_parent = true;
      managed_parent = d.target;
    } else {
      NAMECOH_CHECK(
          cluster->homes_.install_delegation(graph_, d.target, d.shard)
              .is_ok(),
          "scenario delegation failed");
    }
  }

  NameService& service = cluster->service_;
  for (MachineId m : cluster->machines_) service.add_server(m);
  // Client machines get a (non-authoritative) local server: the bootstrap
  // first hop every resolution starts from.
  for (MachineId m : cluster->client_machines_) service.add_server(m);
  if (service_time_ > 0) service.set_service_time(service_time_);
  if (lease_term_ > 0) service.set_lease_policy(lease_term_, lease_capacity_);
  if (anti_entropy_ > 0) service.start_anti_entropy(anti_entropy_);
  if (!tracked_.empty()) service.track_subtree_loads(graph_, tracked_);

  if (membership_) {
    cluster->membership_ = std::make_unique<MembershipDirectory>(
        graph_, cluster->net_, cluster->homes_, service, cluster->sim_,
        membership_options_);
    cluster->membership_->attach_faults(cluster->faults_.get());
    if (have_managed_parent) {
      cluster->membership_->manage_subtrees(managed_parent, ring);
    }
    for (std::size_t i = 0; i < shards_; ++i) {
      for (std::size_t r = 0; r < replicas_; ++r) {
        NAMECOH_CHECK(cluster->membership_
                          ->announce(cluster->machine(
                                         static_cast<ShardId>(i), r),
                                     static_cast<ShardId>(i))
                          .is_ok(),
                      "scenario shard announce failed");
      }
    }
    for (MachineId m : cluster->client_machines_) {
      NAMECOH_CHECK(cluster->membership_->announce(m).is_ok(),
                    "scenario client announce failed");
    }
  }

  for (std::size_t c = 0; c < clients_; ++c) {
    std::string label = label_;
    if (clients_ > 1) label += std::to_string(c);
    auto client = std::make_unique<ResolverClient>(
        graph_, cluster->net_, cluster->transport_, cluster->sim_, service,
        cluster->client_machines_[c], label, client_config_);
    if (cluster->membership_ != nullptr) {
      client->attach_membership(cluster->membership_.get());
    }
    cluster->clients_.push_back(std::move(client));
  }
  return cluster;
}

// --- Membership workload scripts ---------------------------------------------

RollingRestart::RollingRestart(Simulator& sim, MembershipDirectory& members,
                               std::vector<MachineId> order,
                               RollingRestartSpec spec)
    : sim_(sim), members_(members), order_(std::move(order)), spec_(spec) {}

void RollingRestart::start() {
  if (order_.empty()) {
    done_ = true;
    return;
  }
  const SimTime at = spec_.start > sim_.now() ? spec_.start : sim_.now();
  sim_.schedule_at(at, [this] { leave_next(); });
}

void RollingRestart::leave_next() {
  const MachineId machine = order_[index_];
  Status left = members_.graceful_leave(machine, [this, machine] {
    // Down: dwell, then rejoin and wait for the handback to settle before
    // touching the next machine — a rolling restart, not a mass outage.
    sim_.schedule_in(spec_.downtime, [this, machine] {
      NAMECOH_CHECK(members_.rejoin(machine).is_ok(),
                    "rolling restart rejoin refused");
      await_settle();
    });
  });
  NAMECOH_CHECK(left.is_ok(), "rolling restart leave refused");
}

void RollingRestart::await_settle() {
  if (members_.handoff_active()) {
    sim_.schedule_in(spec_.gap, [this] { await_settle(); });
    return;
  }
  ++completed_;
  if (++index_ >= order_.size()) {
    done_ = true;
    return;
  }
  sim_.schedule_in(spec_.gap, [this] { leave_next(); });
}

RollingRenumber::RollingRenumber(Simulator& sim, MembershipDirectory& members,
                                 std::vector<MachineId> order,
                                 RollingRenumberSpec spec)
    : sim_(sim), members_(members), order_(std::move(order)), spec_(spec) {}

void RollingRenumber::start() {
  if (order_.empty() || spec_.rounds == 0) {
    done_ = true;
    return;
  }
  const SimTime at = spec_.start > sim_.now() ? spec_.start : sim_.now();
  sim_.schedule_at(at, [this] { rename_next(); });
}

void RollingRenumber::rename_next() {
  const MachineId machine = order_[fired_ % order_.size()];
  NAMECOH_CHECK(members_.rename(machine).is_ok(),
                "rolling renumber rename refused");
  ++completed_;
  if (++fired_ >= order_.size() * spec_.rounds) {
    done_ = true;
    return;
  }
  sim_.schedule_in(spec_.interval, [this] { rename_next(); });
}

void schedule_partition_window(FaultInjector& faults, MachineId a, MachineId b,
                               SimTime begin, SimTime end) {
  NAMECOH_CHECK(begin < end, "partition window must have positive length");
  faults.schedule_partition(begin, a.value(), b.value());
  faults.schedule_partition(begin, b.value(), a.value());
  faults.schedule_heal(end, a.value(), b.value());
  faults.schedule_heal(end, b.value(), a.value());
}

}  // namespace namecoh
