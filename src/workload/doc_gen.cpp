#include "workload/doc_gen.hpp"

namespace namecoh {

Document make_document(FileSystem& fs, EntityId parent, const Name& name,
                       const DocSpec& spec) {
  Document doc;
  auto subtree = fs.mkdir(parent, name);
  NAMECOH_CHECK(subtree.is_ok(), "make_document: " +
                                     subtree.status().to_string());
  doc.subtree = subtree.value();
  NamingGraph& graph = fs.graph();

  // Shared assets at the subtree root: referenced from deep inside, the
  // Algol search must climb to the subtree root to find "assets".
  auto assets = fs.mkdir(doc.subtree, Name("assets"));
  NAMECOH_CHECK(assets.is_ok(), "make_document assets");
  auto style = fs.create_file(assets.value(), Name("style.sty"),
                              "% style definitions\n");
  NAMECOH_CHECK(style.is_ok(), "make_document style");
  ++doc.files;

  auto root_file =
      fs.create_file(doc.subtree, Name("book.tex"), "\\documentclass{}\n");
  NAMECOH_CHECK(root_file.is_ok(), "make_document root file");
  doc.root_file = root_file.value();
  ++doc.files;
  // The root file uses the style too (binding in its own directory).
  graph.add_embedded_name(doc.root_file,
                          CompoundName::relative("assets/style.sty"));
  ++doc.refs;

  for (std::size_t c = 0; c < spec.chapters; ++c) {
    std::string chap_name = "ch" + std::to_string(c);
    auto chap_dir = fs.mkdir(doc.subtree, Name(chap_name));
    NAMECOH_CHECK(chap_dir.is_ok(), "make_document chapter dir");
    auto chap_file =
        fs.create_file(chap_dir.value(), Name("chapter.tex"),
                       "\\chapter{" + chap_name + "}\n");
    NAMECOH_CHECK(chap_file.is_ok(), "make_document chapter file");
    ++doc.files;
    // book.tex includes chX/chapter.tex (binding in the containing dir).
    graph.add_embedded_name(
        doc.root_file, CompoundName::relative(chap_name + "/chapter.tex"));
    ++doc.refs;

    for (std::size_t s = 0; s < spec.sections_per_chapter; ++s) {
      std::string sec_name = "sec" + std::to_string(s) + ".tex";
      auto sec_file = fs.create_file(chap_dir.value(), Name(sec_name),
                                     "section " + sec_name + "\n");
      NAMECOH_CHECK(sec_file.is_ok(), "make_document section file");
      ++doc.files;
      // chapter.tex includes chX/secS.tex, written relative to the
      // document root (the way LaTeX sources are written). Under R(file)
      // the scope search climbs from the chapter dir to the subtree root,
      // which binds chX; under R(a) it happens to work as long as the
      // reader's cwd is the subtree — and breaks on relocation.
      graph.add_embedded_name(
          chap_file.value(),
          CompoundName::relative(chap_name + "/" + sec_name));
      ++doc.refs;
      // Sections reference the shared assets: the scope search must skip
      // the chapter dir (no "assets" binding) and find it at the subtree
      // root (distance-1).
      for (std::size_t r = 0; r < spec.shared_refs_per_section; ++r) {
        graph.add_embedded_name(sec_file.value(),
                                CompoundName::relative("assets/style.sty"));
        ++doc.refs;
      }
    }
  }
  return doc;
}

}  // namespace namecoh
