// Churn workload: continuous name/pid exchange under continuous
// reconfiguration, fully event-driven on the simulator.
//
// Every message_interval ticks a random process sends the pid of a random
// subject to a random receiver; every renumber_interval ticks a random
// machine is renumbered. The receiver resolves the delivered pid
// immediately and the outcome is scored against the intended subject.
//
// What this separates cleanly:
//   * context incoherence — the pid means the wrong thing because sender
//     and receiver qualify it differently: eliminated by the R(sender)
//     remap;
//   * staleness — the subject's address changed between send and delivery
//     (or between capture and send): NOT eliminated by the remap, and
//     growing with the churn rate. §6's mechanism fixes the first; the
//     second is the price of location-dependent identifiers under any
//     scheme.
#pragma once

#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace namecoh {

struct ChurnSpec {
  SimDuration duration = 100000;
  SimDuration message_interval = 50;
  /// 0 disables renumbering.
  SimDuration renumber_interval = 1000;
  std::uint64_t seed = 1;
};

struct ChurnOutcome {
  FractionCounter pid_valid;    ///< delivered pid denoted the subject
  std::uint64_t messages_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t send_failures = 0;  ///< destination unreachable at send
  std::uint64_t reconfigurations = 0;
};

/// Run the churn workload over an existing topology. Installs handlers on
/// all `processes` (and removes them afterwards); drives `sim` for
/// spec.duration ticks.
ChurnOutcome run_churn(Simulator& sim, Internetwork& net,
                       Transport& transport,
                       const std::vector<MachineId>& machines,
                       const std::vector<EndpointId>& processes,
                       const ChurnSpec& spec);

}  // namespace namecoh
