#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

// The common vocabulary is position-keyed: the i-th common subdirectory at
// a given position gets the same name on every site, because the name is a
// pure function of (level, index) and the per-position coin flips come from
// an rng forked off the *position label*, not the site.
std::string common_dir_name(std::size_t level, std::size_t index) {
  static const char* kRoots[] = {"bin", "etc", "usr", "lib", "home",
                                 "var", "opt", "srv", "tmp", "mnt"};
  if (level == 0 && index < std::size(kRoots)) return kRoots[index];
  return "d" + std::to_string(level) + "_" + std::to_string(index);
}

std::string common_file_name(std::size_t index) {
  static const char* kCommon[] = {"README", "config", "passwd", "cc",
                                  "ls",     "lib.a",  "init",   "sh"};
  if (index < std::size(kCommon)) return kCommon[index];
  return "f" + std::to_string(index);
}

void populate_rec(FileSystem& fs, EntityId dir, const TreeSpec& spec,
                  Rng& position_rng, std::size_t level, TreeStats& stats,
                  const std::string& path_key) {
  for (std::size_t i = 0; i < spec.files_per_dir; ++i) {
    // One coin per position, identical across sites (position_rng is
    // seeded from the position-independent seed).
    bool common = position_rng.bernoulli(spec.common_fraction);
    std::string name = common
                           ? common_file_name(i)
                           : common_file_name(i) + "." + spec.site_tag;
    auto file = fs.create_file(dir, Name(name),
                               "contents of " + path_key + "/" + name);
    if (file.is_ok()) ++stats.files;
  }
  if (level >= spec.depth) return;
  for (std::size_t i = 0; i < spec.dirs_per_dir; ++i) {
    bool common = position_rng.bernoulli(spec.common_fraction);
    std::string name = common
                           ? common_dir_name(level, i)
                           : common_dir_name(level, i) + "." + spec.site_tag;
    auto child = fs.mkdir(dir, Name(name));
    if (!child.is_ok()) continue;
    ++stats.directories;
    populate_rec(fs, child.value(), spec, position_rng, level + 1, stats,
                 path_key + "/" + name);
  }
}

}  // namespace

TreeStats populate_tree(FileSystem& fs, EntityId root, const TreeSpec& spec,
                        std::uint64_t seed) {
  TreeStats stats;
  // The coin-flip stream must be identical across sites so that "common"
  // decisions agree; only the names of non-common entries differ (via
  // site_tag). Hence the rng is a function of the seed alone.
  Rng position_rng(seed);
  populate_rec(fs, root, spec, position_rng, 0, stats, "");
  return stats;
}

TreeStats populate_unix_skeleton(FileSystem& fs, EntityId root,
                                 const std::string& site_tag) {
  TreeStats stats;
  auto mk = [&](std::string_view path, std::string contents) {
    auto file = fs.create_file_at(root, path, std::move(contents));
    if (file.is_ok()) ++stats.files;
  };
  for (const char* dir :
       {"bin", "etc", "usr/bin", "usr/lib", "lib", "home", "tmp"}) {
    auto made = fs.mkdir_p(root, dir);
    if (made.is_ok()) ++stats.directories;
  }
  mk("bin/sh", "#!shell on " + site_tag);
  mk("bin/ls", "#!ls on " + site_tag);
  mk("bin/cc", "#!cc on " + site_tag);
  mk("etc/passwd", "users of " + site_tag);
  mk("etc/hosts", "hosts known to " + site_tag);
  mk("usr/bin/make", "#!make on " + site_tag);
  mk("usr/lib/libc.a", "libc for " + site_tag);
  mk("lib/crt0.o", "crt0 for " + site_tag);
  mk("home/" + site_tag + "/notes.txt", "notes by the owner of " + site_tag);
  mk("home/" + site_tag + "/project/main.c", "int main(){}");
  return stats;
}

std::vector<CompoundName> sample_probes(Rng& rng,
                                        const std::vector<CompoundName>& all,
                                        std::size_t k, double zipf_s) {
  std::vector<CompoundName> out;
  if (all.empty()) return out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(all[rng.zipf(all.size(), zipf_s)]);
  }
  return out;
}

}  // namespace namecoh
