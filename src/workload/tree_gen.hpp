// Synthetic naming-tree workloads.
//
// Populates site trees with a controlled mix of *common* names (the same
// path exists on many sites — "/bin/cc", "/etc/passwd") and *site-unique*
// names. The mix matters because the §5 schemes fail differently on the
// two kinds: a common name resolving on both sites to different files gives
// the dangerous kDifferent verdict (silently the wrong file), while a
// unique name gives kOneUnresolved (an error the user at least sees).
#pragma once

#include <string>
#include <vector>

#include "fs/file_system.hpp"
#include "util/rng.hpp"

namespace namecoh {

struct TreeSpec {
  std::size_t depth = 3;          ///< directory nesting below the root
  std::size_t dirs_per_dir = 3;   ///< subdirectories per directory
  std::size_t files_per_dir = 4;  ///< files per directory
  /// Probability that a directory/file takes its name from the common
  /// vocabulary (same name at the same position on every site) rather than
  /// a site-unique one.
  double common_fraction = 0.5;
  /// Tag appended to site-unique names; set per site.
  std::string site_tag = "s0";
};

struct TreeStats {
  std::size_t directories = 0;
  std::size_t files = 0;
};

/// Populate `root` per the spec. Deterministic in (spec, seed): two sites
/// populated with the same spec and seed but different site_tags get
/// identical *common* structure and disjoint unique names — the standard
/// two-site fixture of the §5 experiments.
TreeStats populate_tree(FileSystem& fs, EntityId root, const TreeSpec& spec,
                        std::uint64_t seed);

/// A realistic fixed skeleton ("/bin", "/etc", "/usr/lib", home dirs …)
/// used by the example programs; returns the created file count.
TreeStats populate_unix_skeleton(FileSystem& fs, EntityId root,
                                 const std::string& site_tag);

/// Sample k probes (with replacement, Zipf-skewed toward short/hot names)
/// from a probe vocabulary.
std::vector<CompoundName> sample_probes(Rng& rng,
                                        const std::vector<CompoundName>& all,
                                        std::size_t k, double zipf_s = 0.8);

}  // namespace namecoh
