// A distributed name service: resolution of compound names across machines
// over the real message transport.
//
// The paper's model is deliberately location-free — a context is just a
// function — but in the distributed systems it analyses (Locus, Andrew,
// Newcastle, DCE) the context objects *live somewhere*, and resolving a
// compound name whose path crosses machines costs messages. This module
// supplies that substrate:
//
//   * HomeMap        — which machine is authoritative for each context
//                      object (directories of a machine's tree are homed on
//                      that machine; a shared tree is homed on its server);
//   * NameService    — one server endpoint per machine; servers walk the
//                      compound name through locally-homed contexts and
//                      answer with either a result or a *referral* (next
//                      authoritative machine + remaining path), the
//                      iterative style of DNS;
//   * ResolverClient — issues requests, follows referrals, and keeps an
//                      optional TTL cache of (context, path) → entity.
//
// The cache is where naming meets time: a cached binding that outlives a
// rebind makes the client resolve a name to an entity the authority no
// longer means — *temporal* incoherence, measured by bench_ns_cache.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "net/transport.hpp"

namespace namecoh {

/// Authority assignment: context object → machine.
class HomeMap {
 public:
  void set_home(EntityId ctx, MachineId machine);
  /// Assign `root` and every directory reachable from it (tree edges) to
  /// `machine`. Stops at directories that already have a different home,
  /// so shared subtrees keep their own authority.
  void set_home_subtree(const NamingGraph& graph, EntityId root,
                        MachineId machine);
  [[nodiscard]] Result<MachineId> home_of(EntityId ctx) const;
  [[nodiscard]] bool has_home(EntityId ctx) const;
  [[nodiscard]] std::size_t size() const { return homes_.size(); }

 private:
  std::unordered_map<EntityId, MachineId> homes_;
};

struct NameServiceStats {
  std::uint64_t requests = 0;    ///< server-side requests handled
  std::uint64_t answers = 0;     ///< final results returned
  std::uint64_t referrals = 0;   ///< referrals issued
  std::uint64_t failures = 0;    ///< resolution errors returned
};

/// Wire protocol message types (Transport Message::type).
struct NsWire {
  static constexpr std::uint32_t kResolveRequest = 100;
  static constexpr std::uint32_t kResolveReply = 101;
  // Reply dispositions.
  static constexpr std::uint64_t kAnswer = 0;
  static constexpr std::uint64_t kReferral = 1;
  static constexpr std::uint64_t kError = 2;
};

/// The server side: one endpoint per machine, walking names through
/// locally-homed context objects.
class NameService {
 public:
  NameService(const NamingGraph& graph, Internetwork& net,
              Transport& transport, const HomeMap& homes);

  /// Install a server on `machine`; returns its endpoint. A machine
  /// without a server cannot answer for contexts homed on it.
  EndpointId add_server(MachineId machine);

  [[nodiscard]] Result<EndpointId> server_on(MachineId machine) const;
  [[nodiscard]] const NameServiceStats& stats() const { return stats_; }

 private:
  void handle_request(EndpointId self, const Message& message);

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  const HomeMap& homes_;
  std::unordered_map<MachineId, EndpointId> servers_;
  NameServiceStats stats_;
};

struct ResolverClientStats {
  std::uint64_t resolutions = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t failures = 0;
};

struct ResolverClientConfig {
  /// Cache TTL in simulator ticks; 0 disables caching.
  SimDuration cache_ttl = 0;
  /// Referral-chase limit (cycle guard).
  std::size_t max_referrals = 32;
  /// Resend attempts per hop when a request or reply is lost (the
  /// transport reports nothing; loss shows up as silence). 0 = fail on
  /// first loss.
  std::size_t retries = 0;
};

/// The client side: a process endpoint that resolves names by talking to
/// the authoritative servers, following referrals.
class ResolverClient {
 public:
  ResolverClient(const NamingGraph& graph, Internetwork& net,
                 Transport& transport, Simulator& sim,
                 const NameService& service, MachineId machine,
                 std::string label, ResolverClientConfig config = {});
  ~ResolverClient();

  ResolverClient(const ResolverClient&) = delete;
  ResolverClient& operator=(const ResolverClient&) = delete;

  /// Resolve `name` starting at the context object `start`. Drives the
  /// simulator until the reply chain completes (the call is synchronous in
  /// simulated time; latency accumulates on the shared clock).
  Result<EntityId> resolve(EntityId start, const CompoundName& name);

  [[nodiscard]] const ResolverClientStats& stats() const { return stats_; }
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }

  void clear_cache() { cache_.clear(); }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct CacheKey {
    EntityId start;
    std::string path;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      return std::hash<EntityId>{}(key.start) ^
             (std::hash<std::string>{}(key.path) << 1);
    }
  };
  struct CacheEntry {
    EntityId entity;
    SimTime expires;
  };

  /// One request/reply round; fills the reply_* fields via the handler.
  /// The server is addressed by pid in this client's context.
  Status round_trip(const Pid& server, EntityId start,
                    const std::string& path);

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  Simulator& sim_;
  const NameService& service_;
  EndpointId endpoint_;
  ResolverClientConfig config_;
  ResolverClientStats stats_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;

  // In-flight state (single outstanding request; the resolver is
  // synchronous).
  bool reply_received_ = false;
  std::uint64_t reply_disposition_ = NsWire::kError;
  EntityId reply_entity_;
  std::string reply_remaining_;
  std::string reply_error_;
  Pid reply_next_server_;  ///< referral: the next authoritative server,
                           ///< already rebased into this client's context
                           ///< by the transport's R(sender) remap
};

}  // namespace namecoh
