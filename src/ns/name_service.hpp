// A distributed name service: resolution of compound names across machines
// over the real message transport.
//
// The paper's model is deliberately location-free — a context is just a
// function — but in the distributed systems it analyses (Locus, Andrew,
// Newcastle, DCE) the context objects *live somewhere*, and resolving a
// compound name whose path crosses machines costs messages. This module
// supplies that substrate:
//
//   * HomeMap        — which machine is authoritative for each context
//                      object (directories of a machine's tree are homed on
//                      that machine; a shared tree is homed on its server);
//   * NameService    — one server endpoint per machine; servers walk the
//                      compound name through locally-homed contexts and
//                      answer with either a result or a *referral* (next
//                      authoritative machine + remaining path), the
//                      iterative style of DNS;
//   * ResolverClient — issues requests, follows referrals, retries lost
//                      messages with a timed exponential backoff, and keeps
//                      a bounded-LRU TTL cache of (context, path) → entity
//                      with optional negative entries and epoch-based
//                      invalidation.
//
// The cache is where naming meets time: a cached binding that outlives a
// rebind makes the client resolve a name to an entity the authority no
// longer means — *temporal* incoherence, measured by bench_ns_cache. Every
// answer is therefore stamped with the authoritative context's *rebind
// epoch*; once a client learns (from any later reply) that the epoch moved
// on, it drops the superseded entries, shrinking the incoherence window
// from "TTL" to "time until the next contact with the authority".
#pragma once

#include <deque>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "net/transport.hpp"
#include "util/hash.hpp"

namespace namecoh {

/// Authority assignment: context object → ordered replica set of machines.
///
/// The first machine in a context's list is its *primary* — the one that
/// stamps rebind epochs and originates update propagation; the rest are
/// *secondaries* that serve from epoch-stamped snapshots
/// (docs/REPLICATION.md). A context configured through set_home has a
/// one-machine replica set, which makes the pre-replication single-
/// authority behaviour a special case rather than a separate code path.
class AuthorityMap {
 public:
  /// Single-authority compat: a one-machine replica set.
  void set_home(EntityId ctx, MachineId machine);
  /// Full form: `replicas` ordered, primary first, no duplicates.
  void set_replicas(EntityId ctx, std::vector<MachineId> replicas);
  /// Assign `root` and every directory reachable from it (tree edges) to
  /// `machine`. The root itself is always (re-)homed on `machine`, even if
  /// it previously had a different authority; the walk stops at
  /// *descendant* directories that already have a different home, so
  /// shared subtrees keep their own authority.
  void set_home_subtree(const NamingGraph& graph, EntityId root,
                        MachineId machine);
  /// Same walk, assigning the whole replica set to every claimed context.
  void set_replicas_subtree(const NamingGraph& graph, EntityId root,
                            std::vector<MachineId> replicas);
  /// The primary (first replica).
  [[nodiscard]] Result<MachineId> home_of(EntityId ctx) const;
  /// The full ordered replica set; empty when the context has no home.
  [[nodiscard]] std::span<const MachineId> replicas_of(EntityId ctx) const;
  [[nodiscard]] bool has_home(EntityId ctx) const;
  [[nodiscard]] bool is_replica(EntityId ctx, MachineId machine) const;
  [[nodiscard]] bool is_primary(EntityId ctx, MachineId machine) const;
  /// Contexts whose replica set has at least two members (the ones update
  /// propagation must service), in no particular order.
  [[nodiscard]] std::vector<EntityId> replicated_contexts() const;
  [[nodiscard]] std::size_t size() const { return homes_.size(); }

 private:
  std::unordered_map<EntityId, std::vector<MachineId>> homes_;
};

/// Pre-replication name for the single-authority special case; reads
/// "which machine is authoritative" where AuthorityMap reads "which
/// machines".
using HomeMap = AuthorityMap;

/// Compat view of the server-side registry counters (see stats()).
struct NameServiceStats {
  std::uint64_t requests = 0;    ///< distinct server-side requests handled
  std::uint64_t answers = 0;     ///< final results returned
  std::uint64_t referrals = 0;   ///< referrals issued
  std::uint64_t failures = 0;    ///< resolution errors returned
  std::uint64_t duplicates = 0;  ///< retransmissions (same correlation id);
                                 ///< re-answered but not re-counted above
  std::uint64_t update_pushes = 0;    ///< kUpdatePush messages sent
  std::uint64_t updates_applied = 0;  ///< pushes applied by secondaries
  std::uint64_t updates_stale = 0;    ///< pushes ignored: epoch not newer
  std::uint64_t store_answers = 0;    ///< lookups served from replica stores
};

/// Wire protocol message types and field conventions (Transport
/// Message::type). See docs/PROTOCOLS.md for the full layouts and the
/// protocol-version table.
struct NsWire {
  static constexpr std::uint32_t kResolveRequest = 100;
  static constexpr std::uint32_t kResolveReply = 101;
  /// Primary → secondary update propagation (epoch-stamped full snapshot
  /// of one context's bindings; idempotent, applied only if newer).
  static constexpr std::uint32_t kUpdatePush = 102;
  // Reply dispositions.
  static constexpr std::uint64_t kAnswer = 0;
  static constexpr std::uint64_t kReferral = 1;
  static constexpr std::uint64_t kError = 2;
  /// Sentinel for "no entity" in u64 entity fields on the wire.
  static constexpr std::uint64_t kNoEntity = ~0ULL;
  /// Sentinel for "machine unknown" in the reply's replica list.
  static constexpr std::uint64_t kNoMachine = ~0ULL;
};

/// Match `remaining` — the bare '/'-joined remaining-path text of a
/// referral reply — against a suffix of `sent`, the component slice this
/// client asked the server to resolve. Returns the matching suffix slice of
/// `sent` (empty text matches the empty suffix), or nullopt when the text
/// is not a component-wise suffix — a malformed or confused referral that
/// must not be forwarded. Compares piece-by-piece against interned texts;
/// allocation-free. Exposed for tests; the resolver's referral loop uses it
/// to forward a *slice of the original request* instead of re-parsing (and
/// re-copying) the server-rendered suffix at every hop.
[[nodiscard]] std::optional<NameSlice> referral_suffix(
    NameSlice sent, std::string_view remaining);

/// The server side: one endpoint per machine, walking names through
/// locally-homed context objects.
///
/// Replication (docs/REPLICATION.md): for a context with a multi-machine
/// replica set, the *primary* serves straight from the naming graph and
/// pushes epoch-stamped binding snapshots to the secondaries
/// (`publish_update`, or periodically via `start_anti_entropy`). A
/// secondary answers from the last snapshot it applied — possibly stale,
/// but stamped with the snapshot's epoch so clients can see exactly how
/// stale — and refers to the primary for contexts it has never synced.
class NameService {
 public:
  NameService(const NamingGraph& graph, Internetwork& net,
              Transport& transport, const AuthorityMap& homes);

  /// Install a server on `machine`; returns its endpoint. A machine
  /// without a server cannot answer for contexts homed on it.
  EndpointId add_server(MachineId machine);

  [[nodiscard]] Result<EndpointId> server_on(MachineId machine) const;
  [[nodiscard]] const AuthorityMap& authorities() const { return homes_; }

  /// Push `ctx`'s current bindings + rebind epoch from its primary's
  /// server to every secondary's server, as real kUpdatePush messages —
  /// subject to loss, partitions and crashes like any other traffic. A
  /// no-op for unreplicated contexts or when the primary has no server.
  void publish_update(EntityId ctx);

  /// Anti-entropy: every `interval` ticks, publish_update every
  /// replicated context. Repair traffic, in the §5 sense: it bounds how
  /// long a lagging secondary can stay behind once connectivity returns.
  void start_anti_entropy(SimDuration interval);
  void stop_anti_entropy();

  /// The epoch a machine's replica store has applied for `ctx`; nullopt
  /// when that machine never applied a snapshot of it. For staleness-bound
  /// assertions (tests, bench_x4_failover).
  [[nodiscard]] std::optional<std::uint64_t> replica_epoch(
      MachineId machine, EntityId ctx) const;

  /// Compat accessor: the counters live in the transport's registry
  /// ("ns.server.*"); this assembles the familiar struct on demand.
  [[nodiscard]] NameServiceStats stats() const;

 private:
  /// A secondary's applied snapshot of one context.
  struct ReplicaState {
    std::uint64_t epoch = 0;
    std::vector<Binding> bindings;
  };

  void handle_request(EndpointId self, const Message& message);
  void handle_update(EndpointId self, const Message& message);
  /// Record `corr` in the bounded recently-seen window; true if it was
  /// already there (i.e. this request is a retransmission).
  bool note_duplicate(std::uint64_t corr);
  void anti_entropy_tick();

  /// How many correlation ids the duplicate-suppression window remembers.
  static constexpr std::size_t kDuplicateWindow = 1024;

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  const AuthorityMap& homes_;
  std::unordered_map<MachineId, EndpointId> servers_;
  /// Per-machine replica stores: what each *secondary* has applied.
  std::unordered_map<MachineId,
                     std::unordered_map<EntityId, ReplicaState>>
      stores_;
  std::unordered_set<std::uint64_t> recent_corr_;
  std::deque<std::uint64_t> recent_corr_order_;  // FIFO eviction
  SimDuration anti_entropy_interval_ = 0;  ///< 0 = not running
  Counter* requests_;
  Counter* answers_;
  Counter* referrals_;
  Counter* failures_;
  Counter* duplicates_;
  Counter* update_pushes_;
  Counter* updates_applied_;
  Counter* updates_stale_;
  Counter* store_answers_;
};

/// Compat view of the client-side registry counters (see stats()).
struct ResolverClientStats {
  std::uint64_t resolutions = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t failures = 0;
  std::uint64_t evictions = 0;          ///< LRU entries displaced on insert
  std::uint64_t negative_hits = 0;      ///< cache hits on cached errors
  std::uint64_t stale_epoch_drops = 0;  ///< entries dropped: epoch superseded
  std::uint64_t timeouts = 0;           ///< per-hop waits that expired
  std::uint64_t backoff_retries = 0;    ///< resends after a timeout
  std::uint64_t stale_replies_dropped = 0;  ///< replies rejected by
                                            ///< correlation-id mismatch
  std::uint64_t failovers = 0;  ///< hops that moved on to another replica
                                ///< after exhausting one replica's budget
};

struct ResolverClientConfig {
  /// Positive-entry TTL in simulator ticks; 0 disables positive caching.
  SimDuration cache_ttl = 0;
  /// TTL for cached *errors* (negative caching, DNS-style); usually much
  /// shorter than cache_ttl. 0 disables negative caching.
  SimDuration negative_cache_ttl = 0;
  /// Maximum cached entries (positive + negative); the least recently used
  /// entry is evicted on insert. 0 = unbounded (not recommended).
  std::size_t cache_capacity = 1024;
  /// Drop cached entries whose authoritative context has answered (any
  /// later request) with a higher rebind epoch.
  bool epoch_invalidation = true;
  /// Referral-chase limit (cycle guard).
  std::size_t max_referrals = 32;
  /// Resend attempts per hop after a timeout (the transport reports
  /// nothing; loss shows up as silence). 0 = fail on first timeout.
  std::size_t retries = 0;
  /// How long (simulated ticks) to wait for a reply before declaring the
  /// hop lost. Must exceed the worst round trip of the topology.
  SimDuration request_timeout = 5000;
  /// Timeout multiplier applied after each loss (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Upper bound for the backed-off timeout. 0 = uncapped.
  SimDuration max_timeout = 60000;
  /// After a replica exhausts its retry budget, how long (simulated ticks)
  /// the client treats it as *suspect* — still usable as a last resort,
  /// but ordered after every live replica when a hop has alternatives.
  SimDuration replica_quarantine = 30000;
};

/// The client side: a process endpoint that resolves names by talking to
/// the authoritative servers, following referrals.
class ResolverClient {
 public:
  ResolverClient(const NamingGraph& graph, Internetwork& net,
                 Transport& transport, Simulator& sim,
                 const NameService& service, MachineId machine,
                 std::string label, ResolverClientConfig config = {});
  ~ResolverClient();

  ResolverClient(const ResolverClient&) = delete;
  ResolverClient& operator=(const ResolverClient&) = delete;

  /// Resolve `name` starting at the context object `start`. Drives the
  /// simulator until the reply chain completes. When the transport's tracer
  /// is enabled, the whole resolution — cache probes, every attempt of
  /// every hop, and the matching server-side events — is recorded under one
  /// span, findable by any of its correlation ids.
  Result<EntityId> resolve(EntityId start, const CompoundName& name);

  /// Compat accessor: the counters live in the transport's registry
  /// ("ns.client.<endpoint-id>.*"); this assembles the familiar struct.
  [[nodiscard]] ResolverClientStats stats() const;
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }

  void clear_cache() {
    cache_.clear();
    lru_.clear();
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  // Keys are (start context, name) with the name held as interned atoms:
  // hashing and equality are integer scans, and a key copy is a memcpy for
  // names that fit the inline buffer (no heap, unlike the path-string keys
  // this replaced).
  struct CacheKey {
    EntityId start;
    CompoundName name;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      std::size_t seed = 0;
      hash_combine(seed, key.start);
      hash_combine(seed, key.name);
      return seed;
    }
  };
  struct CacheEntry {
    EntityId entity;         ///< positive entries: the answer
    SimTime expires;         ///< entry is dead once now >= expires
    EntityId authority;      ///< context whose bindings produced the reply
    std::uint64_t epoch;     ///< authority's rebind epoch at answer time
    bool negative;           ///< true: a cached resolution error
    std::string error;       ///< negative entries: the server's message
    std::list<CacheKey>::iterator lru;  ///< position in lru_
  };

  /// One server a hop may talk to: its pid in this client's context, plus
  /// the machine it serves for (kNoMachine → invalid when unknown, e.g. a
  /// pre-replication referral with no replica list).
  struct ReplicaRef {
    Pid pid;
    MachineId machine;
  };

  /// The body of resolve(); the public wrapper owns the span lifecycle.
  Result<EntityId> resolve_inner(EntityId start, const CompoundName& name);

  /// One request/reply round with timeout + exponential-backoff resends;
  /// fills the reply_* fields via the handler. Servers are addressed by pid
  /// in this client's context. `candidates` is the hop's replica set,
  /// preference-ordered; replicas currently under quarantine are tried
  /// last. Each candidate gets a fresh backoff budget; when one candidate's
  /// budget is exhausted and another remains, the client *fails over*
  /// (kFailover, `failovers` counter, failover-latency histogram) instead
  /// of declaring the hop dead. Each attempt's fresh correlation id is
  /// bound to the active span before the request leaves, so transport and
  /// server events land in it.
  Status round_trip(std::span<const ReplicaRef> candidates, EntityId start,
                    const std::string& path);

  /// The hop's candidates for resolving `ctx`: the server reached through
  /// `via` first (the referral target / local machine), then the rest of
  /// ctx's replica set as known to the service's authority map, deduped.
  [[nodiscard]] std::vector<ReplicaRef> candidates_for(
      EntityId ctx, const ReplicaRef& via) const;
  [[nodiscard]] bool is_suspect(MachineId machine) const;

  /// Cache plumbing: TTL + epoch validation + LRU touch on hit; bounded
  /// insert with LRU eviction; high-water epoch bookkeeping.
  const CacheEntry* cache_lookup(const CacheKey& key);
  void cache_insert(const CacheKey& key, CacheEntry entry);
  void note_epoch(EntityId authority, std::uint64_t epoch);

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  Simulator& sim_;
  const NameService& service_;
  EndpointId endpoint_;
  ResolverClientConfig config_;
  Counter* resolutions_;
  Counter* messages_sent_;
  Counter* referrals_followed_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* failures_;
  Counter* evictions_;
  Counter* negative_hits_;
  Counter* stale_epoch_drops_;
  Counter* timeouts_;
  Counter* backoff_retries_;
  Counter* stale_replies_dropped_;
  Counter* failovers_;
  /// Simulated ticks from the first send of a hop to the first reply,
  /// recorded only for hops that failed over at least once.
  Histogram* failover_latency_;
  /// Replica health: machine → simulated time until which it is suspect.
  /// Entries are erased on a successful round trip to the machine.
  std::unordered_map<MachineId, SimTime> suspect_until_;
  /// Span of the resolve() in progress (0 when none / tracing disabled).
  std::uint64_t active_span_ = 0;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  ///< front = most recently used
  /// Highest rebind epoch seen per authoritative context; entries cached
  /// under an older epoch are superseded.
  std::unordered_map<EntityId, std::uint64_t> epochs_seen_;

  // In-flight state (single outstanding request; the resolver is
  // synchronous). A reply is accepted only while awaiting_reply_ and only
  // when it echoes expected_corr_ — a delayed reply from an earlier
  // attempt or an earlier referral hop can never be mis-taken for the
  // current answer.
  std::uint64_t next_corr_ = 1;
  std::uint64_t expected_corr_ = 0;
  bool awaiting_reply_ = false;
  bool reply_received_ = false;
  std::uint64_t reply_disposition_ = NsWire::kError;
  EntityId reply_entity_;
  std::string reply_remaining_;
  std::string reply_error_;
  Pid reply_next_server_;  ///< referral: the next authoritative server,
                           ///< already rebased into this client's context
                           ///< by the transport's R(sender) remap
  EntityId reply_authority_;        ///< context the answer depends on
  std::uint64_t reply_epoch_ = 0;  ///< its rebind epoch at the server
  /// The answering context's replica set from the reply tail (protocol v3):
  /// server pids already rebased by R(sender), machines by id. Empty when
  /// the peer sent a v2 reply. On a referral these are the *next* hop's
  /// candidates; MachineId also keys the health map.
  std::vector<ReplicaRef> reply_replicas_;
  MachineId client_machine_;  ///< where this client endpoint lives
};

}  // namespace namecoh
