// A distributed name service: resolution of compound names across machines
// over the real message transport.
//
// The paper's model is deliberately location-free — a context is just a
// function — but in the distributed systems it analyses (Locus, Andrew,
// Newcastle, DCE) the context objects *live somewhere*, and resolving a
// compound name whose path crosses machines costs messages. This module
// supplies that substrate:
//
//   * AuthorityMap   — which machines are authoritative for each context
//                      object: per-context replica sets plus shard-owned
//                      delegated subtrees (directories of a machine's tree
//                      are homed on that machine; a shared tree is homed on
//                      its server);
//   * NameService    — one server endpoint per machine; servers walk the
//                      compound name through locally-homed contexts and
//                      answer with either a result or a *referral* (next
//                      authoritative machine + remaining path), the
//                      iterative style of DNS;
//   * ResolverClient — issues requests, follows referrals, retries lost
//                      messages with a timed exponential backoff, and keeps
//                      a bounded-LRU TTL cache of (context, path) → entity
//                      with optional negative entries and epoch-based
//                      invalidation.
//
// Resolution is an *event-driven engine* (docs/ASYNC.md): resolve_async
// enqueues a per-request state machine whose sends, timeouts, backoff
// resends, failovers and referral chases are all simulator-scheduled
// continuations, so any number of resolutions progress concurrently on the
// one client endpoint. Identical in-flight lookups coalesce onto a single
// wire exchange. The blocking resolve() is a thin wrapper that drives the
// simulator until its own handle completes.
//
// The cache is where naming meets time: a cached binding that outlives a
// rebind makes the client resolve a name to an entity the authority no
// longer means — *temporal* incoherence, measured by bench_ns_cache. Every
// answer is therefore stamped with the authoritative context's *rebind
// epoch*; once a client learns (from any later reply) that the epoch moved
// on, it drops the superseded entries, shrinking the incoherence window
// from "TTL" to "time until the next contact with the authority".
#pragma once

#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "net/transport.hpp"
#include "ns/shard_ring.hpp"
#include "obs/snapshot.hpp"
#include "util/hash.hpp"

namespace namecoh {

class MembershipDirectory;  // src/ns/membership.hpp

/// Authority assignment: context object → ordered replica set of machines.
///
/// The first machine in a context's list is its *primary* — the one that
/// stamps rebind epochs and originates update propagation; the rest are
/// *secondaries* that serve from epoch-stamped snapshots
/// (docs/REPLICATION.md). A context configured through set_home has a
/// one-machine replica set, which makes the pre-replication single-
/// authority behaviour a special case rather than a separate code path.
///
/// Sharding (docs/SHARDING.md): at million-entity scale a per-context map
/// entry per context is the wrong shape, so the namespace is partitioned
/// into *shards* — registered replica sets that own whole delegated
/// subtrees at once. Ownership lives in one dense entity-indexed vector of
/// shard ids (4 bytes per entity), and every authority query resolves
/// explicit per-context assignments first, then the owning shard, so the
/// two mechanisms compose: a shared subtree inside a delegated region
/// keeps its own replica set.
class AuthorityMap {
 public:
  /// "No shard owns this context" sentinel in shard_of().
  static constexpr ShardId kNoShard = ~static_cast<ShardId>(0);

  /// Single-authority compat: a one-machine replica set.
  void set_home(EntityId ctx, MachineId machine);
  /// Full form: `replicas` ordered, primary first, no duplicates.
  void set_replicas(EntityId ctx, std::vector<MachineId> replicas);
  /// Assign `root` and every directory reachable from it (tree edges) to
  /// `machine`. The root itself is always (re-)homed on `machine`, even if
  /// it previously had a different authority; the walk stops at
  /// *descendant* directories that already have a different home, so
  /// shared subtrees keep their own authority.
  void set_home_subtree(const NamingGraph& graph, EntityId root,
                        MachineId machine);
  /// Same walk, assigning the whole replica set to every claimed context.
  void set_replicas_subtree(const NamingGraph& graph, EntityId root,
                            std::vector<MachineId> replicas);

  // --- Shards and delegation (docs/SHARDING.md) ----------------------------

  /// Register a shard: an ordered replica set (primary first, no
  /// duplicates) that can own whole delegated subtrees. Returns its dense
  /// id; ids are stable for the map's lifetime and travel on the wire in
  /// glue records.
  ShardId add_shard(std::vector<MachineId> replicas);
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// The replica set registered for `shard`; empty for an unknown id.
  [[nodiscard]] std::span<const MachineId> shard_replicas(ShardId shard) const;

  /// Delegate the subtree rooted at `root` to `shard`: the same
  /// always-reassign-the-root / stop-at-foreign-authority walk as
  /// set_replicas_subtree, recorded as one shard id per claimed context
  /// instead of a replica-set copy. Refuses (kInvalidArgument) a
  /// self-delegation or any delegation that would close a cycle in the
  /// shard-level delegation graph — a client chasing glue records through
  /// a cyclic delegation would never terminate.
  Status install_delegation(const NamingGraph& graph, EntityId root,
                            ShardId shard);

  /// Hash placement for flat namespaces: delegate every child context of
  /// `parent` to the shard the ring names for it. The ring must only name
  /// shards registered here. Returns the first refusal, if any.
  ///
  /// Idempotent under re-runs: a child already on its ring shard is left
  /// alone, and a child the ring now maps *elsewhere* (the ring changed
  /// since placement) is **not** silently re-claimed — moving live
  /// ownership is a migration, not a map write (docs/REBALANCING.md).
  /// When `moved` is non-null, every such ring-moved child is appended to
  /// it so the caller can plan migrations (see plan_ring_change in
  /// src/ns/rebalance.hpp).
  Status delegate_children_by_hash(const NamingGraph& graph, EntityId parent,
                                   const ShardRing& ring,
                                   std::vector<EntityId>* moved = nullptr);

  /// Every context the shard owning `root` owns in the subtree under
  /// `root` (tree edges, skipping `.`/`..`, stopping at contexts with a
  /// foreign authority — an explicit home or another shard). Empty when
  /// `root` is not shard-owned. This is the unit a migration transfers.
  [[nodiscard]] std::vector<EntityId> shard_subtree(const NamingGraph& graph,
                                                    EntityId root) const;

  /// Atomic cutover of a migration (docs/REBALANCING.md): reassign the
  /// whole shard_subtree(root) from its owning shard to `to` in one map
  /// write. Returns the number of contexts moved. Unlike
  /// install_delegation this records no delegation edge — a migration
  /// transfers the *existing* record rather than layering a new one, so a
  /// later migration back (A→B→A) stays legal where a delegation cycle
  /// would be refused. Fails (kInvalidArgument) on an unknown target
  /// shard, a root that is not shard-owned, or a self-migration.
  Result<std::size_t> migrate_subtree(const NamingGraph& graph, EntityId root,
                                      ShardId to);

  /// The shard owning `ctx` via delegation; kNoShard when none. Explicit
  /// per-context assignments are not reported here (they override shard
  /// ownership in every replica query but are not shard-owned).
  [[nodiscard]] ShardId shard_of(EntityId ctx) const;

  /// The primary (first replica).
  [[nodiscard]] Result<MachineId> home_of(EntityId ctx) const;
  /// The full ordered replica set; empty when the context has no home.
  /// Explicit per-context assignments take precedence over the owning
  /// shard's replica set.
  [[nodiscard]] std::span<const MachineId> replicas_of(EntityId ctx) const;
  [[nodiscard]] bool has_home(EntityId ctx) const;
  [[nodiscard]] bool is_replica(EntityId ctx, MachineId machine) const;
  [[nodiscard]] bool is_primary(EntityId ctx, MachineId machine) const;
  /// Contexts with an *explicit* replica set of at least two members, in
  /// no particular order. Introspection and tests only: this rebuilds a
  /// vector per call, so the anti-entropy hot path must never touch it
  /// (NameService keeps a dirty set instead; docs/REPLICATION.md).
  [[nodiscard]] std::vector<EntityId> replicated_contexts() const;
  /// Explicit per-context assignments (shard-owned contexts not counted).
  [[nodiscard]] std::size_t size() const { return homes_.size(); }

 private:
  /// True when `from` can reach `to` through recorded delegation edges.
  [[nodiscard]] bool delegation_reaches(ShardId from, ShardId to) const;
  void assign_shard(EntityId ctx, ShardId shard);

  std::unordered_map<EntityId, std::vector<MachineId>> homes_;
  /// Shard replica sets, indexed by ShardId.
  std::vector<std::vector<MachineId>> shards_;
  /// Dense ownership: entity id → owning shard (kNoShard = none). Sized
  /// on demand; 4 bytes per entity is what makes million-context maps fit.
  std::vector<ShardId> shard_of_;
  /// Shard-level delegation edges (owner at install time → delegate),
  /// for cycle refusal at install time.
  std::vector<std::vector<ShardId>> delegates_of_;
};

/// Wire protocol message types and field conventions (Transport
/// Message::type). See docs/PROTOCOLS.md for the full layouts and the
/// protocol-version table.
struct NsWire {
  static constexpr std::uint32_t kResolveRequest = 100;
  static constexpr std::uint32_t kResolveReply = 101;
  /// Primary → secondary update propagation (epoch-stamped full snapshot
  /// of one context's bindings; idempotent, applied only if newer).
  static constexpr std::uint32_t kUpdatePush = 102;
  /// Server → client callback push (protocol v4, docs/COHERENCE.md):
  /// a lease the server granted is void because the authority rebound.
  static constexpr std::uint32_t kInvalidate = 103;
  // Reply dispositions.
  static constexpr std::uint64_t kAnswer = 0;
  static constexpr std::uint64_t kReferral = 1;
  static constexpr std::uint64_t kError = 2;
  /// Request flags (optional fourth request field, protocol v4).
  static constexpr std::uint64_t kFlagLeaseRequested = 1;
  /// Protocol v5 (docs/SHARDING.md): the client understands glue records —
  /// the server may append a glue tail to referrals.
  static constexpr std::uint64_t kFlagShardGlue = 2;
  /// Sentinel for "no entity" in u64 entity fields on the wire.
  static constexpr std::uint64_t kNoEntity = ~0ULL;
  /// Sentinel for "machine unknown" in the reply's replica list.
  static constexpr std::uint64_t kNoMachine = ~0ULL;
  /// Sentinel for "shard unknown" in u64 shard fields on the wire.
  static constexpr std::uint64_t kNoShard = ~0ULL;
};

/// Decoded reply tail: the append-only optional fields after a reply's
/// eight fixed fields — replica list (v3), lease grant (v4), glue records
/// (v5). docs/PROTOCOLS.md has the layouts.
struct ReplyTail {
  struct Server {
    Pid pid;
    std::uint64_t machine = NsWire::kNoMachine;
  };
  /// One glue record: "context `ctx` is delegated to shard `shard`, whose
  /// replica servers are `servers`" — the delegate's replica set learned in
  /// the same round trip as the referral that crosses into it.
  struct Glue {
    std::uint64_t ctx = NsWire::kNoEntity;
    std::uint64_t shard = NsWire::kNoShard;
    std::vector<Server> servers;
  };

  /// False when the fields after `offset` do not parse as exactly the
  /// expected tails back-to-back; a reply with an invalid tail is treated
  /// as having no tail at all (replicas/lease/glue all empty), matching
  /// how pre-v5 parsers skip tails they do not understand.
  bool valid = false;
  std::vector<Server> replicas;
  std::uint64_t lease_duration = 0;
  std::uint64_t lease_id = 0;
  std::vector<Glue> glue;
};

/// Parse the optional tails of a kResolveReply payload starting at field
/// `offset` (the first field after the fixed ones). `expect_lease` /
/// `expect_glue` say which tails this client negotiated (request flags);
/// un-negotiated tails must not be present and make the parse invalid.
/// Strict: the cursor must consume every remaining field, else valid=false
/// and the caller ignores the whole tail. Exposed for tests — the
/// malformed-glue cases in tests/test_sharding.cpp drive it directly.
[[nodiscard]] ReplyTail parse_reply_tail(const Payload& payload,
                                         std::size_t offset,
                                         bool expect_lease, bool expect_glue);

/// Match `remaining` — the bare '/'-joined remaining-path text of a
/// referral reply — against a suffix of `sent`, the component slice this
/// client asked the server to resolve. Returns the matching suffix slice of
/// `sent` (empty text matches the empty suffix), or nullopt when the text
/// is not a component-wise suffix — a malformed or confused referral that
/// must not be forwarded. Compares piece-by-piece against interned texts;
/// allocation-free. Exposed for tests; the resolver's referral loop uses it
/// to forward a *slice of the original request* instead of re-parsing (and
/// re-copying) the server-rendered suffix at every hop.
[[nodiscard]] std::optional<NameSlice> referral_suffix(
    NameSlice sent, std::string_view remaining);

/// The server side: one endpoint per machine, walking names through
/// locally-homed context objects.
///
/// Replication (docs/REPLICATION.md): for a context with a multi-machine
/// replica set, the *primary* serves straight from the naming graph and
/// pushes epoch-stamped binding snapshots to the secondaries
/// (`publish_update`, or periodically via `start_anti_entropy`). A
/// secondary answers from the last snapshot it applied — possibly stale,
/// but stamped with the snapshot's epoch so clients can see exactly how
/// stale — and refers to the primary for contexts it has never synced.
class NameService {
 public:
  NameService(const NamingGraph& graph, Internetwork& net,
              Transport& transport, const AuthorityMap& homes);

  /// Install a server on `machine`; returns its endpoint. A machine
  /// without a server cannot answer for contexts homed on it.
  EndpointId add_server(MachineId machine);

  /// Tear the server on `machine` down: unregister its handler, remove
  /// its endpoint and void the leases it granted (a promise nobody can
  /// keep is dropped, not broken mid-flight). The machine's replica store
  /// survives — a later add_server resumes from the snapshots it had
  /// applied, the graceful-leave / rejoin cycle of docs/MEMBERSHIP.md.
  /// No-op for a machine without a server.
  void remove_server(MachineId machine);

  [[nodiscard]] Result<EndpointId> server_on(MachineId machine) const;
  [[nodiscard]] const AuthorityMap& authorities() const { return homes_; }

  /// Push `ctx`'s current bindings + rebind epoch from its primary's
  /// server to every secondary's server, as real kUpdatePush messages —
  /// subject to loss, partitions and crashes like any other traffic. A
  /// no-op for unreplicated contexts or when the primary has no server.
  void publish_update(EntityId ctx);

  /// Anti-entropy: every `interval` ticks, publish_update the contexts
  /// known to have a lagging secondary (the dirty set — see
  /// docs/REPLICATION.md; the first tick after a (re)start sweeps every
  /// replicated context once to seed it). Repair traffic, in the §5 sense:
  /// it bounds how long a lagging secondary can stay behind once
  /// connectivity returns — without re-pushing snapshots the secondaries
  /// already hold. Calling this while running re-times the next tick to
  /// the new interval immediately (the stale scheduled tick is abandoned
  /// by generation stamp).
  void start_anti_entropy(SimDuration interval);
  void stop_anti_entropy();

  /// Per-request service time on every server (0 = infinitely fast, the
  /// default). With a non-zero value each machine's server processes
  /// resolve requests one at a time, FIFO, each occupying the server for
  /// `per_request` ticks — so a hot authority saturates and sharding the
  /// namespace buys real throughput (bench_x7_shard).
  void set_service_time(SimDuration per_request);

  /// The epoch a machine's replica store has applied for `ctx`; nullopt
  /// when that machine never applied a snapshot of it. For staleness-bound
  /// assertions (tests, bench_x4_failover).
  [[nodiscard]] std::optional<std::uint64_t> replica_epoch(
      MachineId machine, EntityId ctx) const;

  /// Lease policy (docs/COHERENCE.md): `duration` is the term granted to
  /// clients that request one (0 disables granting); `capacity` bounds the
  /// per-machine lease table. When the table is full of unexpired leases
  /// the server grants nothing rather than break an outstanding promise
  /// ("lease_table_full").
  void set_lease_policy(SimDuration duration, std::size_t capacity = 4096);
  [[nodiscard]] SimDuration lease_duration() const { return lease_duration_; }
  /// Outstanding (possibly expired, not yet purged) leases granted by
  /// `machine`'s server. For tests and table-bound assertions.
  [[nodiscard]] std::size_t lease_count(MachineId machine) const;

  /// Point-in-time copy of this server group's counters ("ns.server.*");
  /// index by bare field name, e.g. snapshot()["answers"].
  [[nodiscard]] StatsSnapshot snapshot() const;

  /// The tracer / registry this service records into (the transport's).
  /// For the migration driver and planner (src/ns/rebalance.*), which
  /// share the service's observability without owning a transport.
  [[nodiscard]] Tracer& tracer() const { return transport_.tracer(); }
  [[nodiscard]] MetricsRegistry& metrics() const {
    return transport_.metrics();
  }

  // --- Online rebalancing hooks (docs/REBALANCING.md) ----------------------
  // Used by MigrationDriver; safe to ignore everywhere else.

  /// Let `target`'s server apply kUpdatePush snapshots for `ctxs` even
  /// though the authority map does not (yet) list it as a secondary — the
  /// copy phase of a migration fills the target's replica store *before*
  /// the cutover makes it authoritative. close_migration_intake drops the
  /// whole allowance (idempotent).
  void open_migration_intake(MachineId target,
                             const std::vector<EntityId>& ctxs);
  void close_migration_intake(MachineId target);

  /// Push one context's current bindings + rebind epoch to `to`'s server
  /// as a kUpdatePush, regardless of replica-set membership (the copy /
  /// catch-up phases of a migration; delivery is as lossy as any traffic).
  /// False when either end has no live server endpoint.
  bool push_snapshot(EntityId ctx, MachineId to);

  /// Arm forwarding tombstones: until `expires`, every server of
  /// `from_shard` that is asked about one of `ctxs` — which it no longer
  /// owns after a cutover — counts/traces the hit before referring the
  /// client onward to the new owner ("ns.server.forwarded", kForwarded).
  /// Tombstones self-purge at `expires`.
  void install_forwarding(ShardId from_shard,
                          const std::vector<EntityId>& ctxs, SimTime expires);
  /// Live (unexpired) tombstones held by `machine`'s server. For tests.
  [[nodiscard]] std::size_t forwarding_count(MachineId machine) const;

  /// Register per-subtree load attribution: each root in `roots` claims
  /// the contexts of its subtree (first registration wins), and every
  /// non-duplicate request *starting* at a claimed context bumps
  /// "ns.server.subtree.<root>.hits" — the signal RebalancePlanner uses
  /// to pick which subtree to split off a hot shard.
  void track_subtree_loads(const NamingGraph& graph,
                           const std::vector<EntityId>& roots);

 private:
  /// A secondary's applied snapshot of one context.
  struct ReplicaState {
    std::uint64_t epoch = 0;
    std::vector<Binding> bindings;
  };

  /// One callback promise: "holder may trust answers about `ctx` until
  /// `expires`; I will push kInvalidate if `ctx` rebinds before then."
  struct LeaseRecord {
    std::uint64_t id = 0;
    EntityId ctx;
    Pid holder;            ///< client address relative to the granting server
    SimTime expires = 0;
    std::uint64_t epoch = 0;  ///< authority epoch the holder was answered with
  };
  /// Per-machine lease table: id-keyed records plus a per-context index so
  /// a rebind finds its promises without scanning.
  struct LeaseTable {
    std::unordered_map<std::uint64_t, LeaseRecord> by_id;
    std::unordered_map<EntityId, std::vector<std::uint64_t>> by_ctx;
  };

  void handle_request(EndpointId self, const Message& message);
  void handle_update(EndpointId self, const Message& message);
  /// Record `corr` in the bounded recently-seen window; true if it was
  /// already there (i.e. this request is a retransmission).
  bool note_duplicate(std::uint64_t corr);
  /// One anti-entropy round. `gen` is the generation the round was
  /// scheduled under; a round whose generation is stale (start/stop was
  /// called since) returns without publishing or rescheduling, so an
  /// interval change takes effect immediately instead of after one more
  /// old-interval round.
  void anti_entropy_tick(std::uint64_t gen);
  /// Drop `ctx` from the dirty set once every secondary's applied epoch
  /// has caught up with the graph's rebind epoch.
  void maybe_clean(EntityId ctx);
  /// Grant (or renew) a lease on `ctx` to `holder` from `machine`'s
  /// server; returns {duration, lease id}, or {0, 0} when not granted
  /// (granting disabled, or the table is full of unexpired promises).
  std::pair<std::uint64_t, std::uint64_t> grant_lease(MachineId machine,
                                                      EntityId ctx,
                                                      const Pid& holder,
                                                      std::uint64_t epoch,
                                                      std::uint64_t corr);
  /// Push kInvalidate to every unexpired lease on `ctx` granted by
  /// `machine`'s server under an older epoch, then drop those records.
  void push_invalidations(MachineId machine, EntityId ctx);
  /// Drop `machine`'s lease records for `ctx` without pushing (a secondary
  /// applying a snapshot: its promises are superseded by the primary's).
  void drop_leases(MachineId machine, EntityId ctx);
  void erase_lease(LeaseTable& table, std::uint64_t id);

  /// How many correlation ids the duplicate-suppression window remembers.
  static constexpr std::size_t kDuplicateWindow = 1024;

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  const AuthorityMap& homes_;
  std::unordered_map<MachineId, EndpointId> servers_;
  /// Per-machine replica stores: what each *secondary* has applied.
  std::unordered_map<MachineId,
                     std::unordered_map<EntityId, ReplicaState>>
      stores_;
  std::unordered_set<std::uint64_t> recent_corr_;
  std::deque<std::uint64_t> recent_corr_order_;  // FIFO eviction
  SimDuration anti_entropy_interval_ = 0;  ///< 0 = not running
  /// Contexts with at least one secondary known to lag (publish_update saw
  /// an epoch gap, or the push could not be delivered). Anti-entropy
  /// rounds iterate only this set — the snapshot-storm fix.
  std::unordered_set<EntityId> ae_dirty_;
  /// First round after a (re)start sweeps all replicated contexts once, to
  /// pick up rebinds that predate the dirty set.
  bool ae_sweep_pending_ = false;
  /// Bumped by every start/stop; a scheduled tick carrying an older
  /// generation is stale and must do nothing.
  std::uint64_t ae_gen_ = 0;
  /// Service-time model: per-request occupancy and per-machine busy
  /// horizon (FIFO single server per machine).
  SimDuration service_time_ = 0;
  std::unordered_map<MachineId, SimTime> busy_until_;
  /// Lease policy and per-machine outstanding promises.
  SimDuration lease_duration_ = 5000;
  std::size_t lease_capacity_ = 4096;
  std::uint64_t next_lease_id_ = 1;
  std::unordered_map<MachineId, LeaseTable> leases_;
  /// Migration intake: target machine → contexts whose pushes it may
  /// apply despite not being a secondary (copy phase allowance).
  std::unordered_map<MachineId, std::unordered_set<EntityId>> intake_;
  /// Forwarding tombstones: old-owner machine → (context → expiry). A
  /// request for a tombstoned context is counted/traced as forwarded
  /// before the normal referral to the new owner goes out; entries are
  /// purged lazily on hit and eagerly at their expiry tick.
  std::unordered_map<MachineId, std::unordered_map<EntityId, SimTime>>
      forwarding_;
  /// Drop every tombstone whose window has closed.
  void purge_forwarding();
  /// Per-machine load signals for the rebalance planner
  /// ("ns.server.m<id>.served" / ".wait_ticks"): how many requests this
  /// machine's server processed, and the total ticks they waited in its
  /// FIFO queue before service began.
  struct MachineLoad {
    Counter* served = nullptr;
    Counter* wait_ticks = nullptr;
  };
  std::unordered_map<MachineId, MachineLoad> load_;
  /// Subtree load attribution (track_subtree_loads): dense entity →
  /// claiming-root slot (kNoSlot = unclaimed) and the per-root hit
  /// counters, indexed by slot.
  static constexpr std::uint32_t kNoSlot = ~static_cast<std::uint32_t>(0);
  std::vector<std::uint32_t> subtree_slot_;
  std::vector<Counter*> subtree_hits_;
  Counter* requests_;
  Counter* answers_;
  Counter* referrals_;
  Counter* failures_;
  Counter* duplicates_;
  Counter* update_pushes_;
  Counter* pushes_suppressed_;  ///< epoch-gated: secondary already current
  Counter* updates_applied_;
  Counter* updates_stale_;
  Counter* store_answers_;
  Counter* leases_granted_;
  Counter* lease_renewals_;
  Counter* invalidates_pushed_;
  Counter* lease_table_full_;
  Counter* forwarded_;         ///< tombstoned-context hits in the window
  Counter* migration_pushes_;  ///< push_snapshot copies sent
};

/// Loss-recovery knobs for one class of wire exchange: how often to
/// resend into silence, and how the per-attempt deadline grows. Grouped so
/// a policy travels as one value — the client's normal lookups and the
/// membership-aware rerouting path (docs/MEMBERSHIP.md) can each carry
/// their own. (Until PR 10 these four lived as flat fields directly on
/// ResolverClientConfig; see docs/ASYNC.md for the migration note.)
struct RetryPolicy {
  /// Resend attempts per hop after a timeout (the transport reports
  /// nothing; loss shows up as silence). 0 = fail on first timeout.
  std::size_t retries = 0;
  /// How long (simulated ticks) to wait for a reply before declaring the
  /// hop lost. Must exceed the worst round trip of the topology.
  SimDuration request_timeout = 5000;
  /// Timeout multiplier applied after each loss (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Upper bound for the backed-off timeout. 0 = uncapped.
  SimDuration max_timeout = 60000;
};

struct ResolverClientConfig {
  /// Positive-entry TTL in simulator ticks; 0 disables positive caching.
  SimDuration cache_ttl = 0;
  /// TTL for cached *errors* (negative caching, DNS-style); usually much
  /// shorter than cache_ttl. 0 disables negative caching.
  SimDuration negative_cache_ttl = 0;
  /// Maximum cached entries (positive + negative); the least recently used
  /// entry is evicted on insert. 0 = unbounded (not recommended).
  std::size_t cache_capacity = 1024;
  /// Drop cached entries whose authoritative context has answered (any
  /// later request) with a higher rebind epoch.
  bool epoch_invalidation = true;
  /// The unified resolution options (core/resolve.hpp). The client reads
  /// `resolve.max_referrals` (its referral-chase cycle guard); the local-
  /// walk fields are documented there and ignored here.
  ResolveOptions resolve;
  /// Loss recovery for this client's exchanges: resend attempts, attempt
  /// deadline and its exponential backoff.
  RetryPolicy retry;
  /// After a replica exhausts its retry budget, how long (simulated ticks)
  /// the client treats it as *suspect* — still usable as a last resort,
  /// but ordered after every live replica when a hop has alternatives.
  SimDuration replica_quarantine = 30000;
  /// Lease coherence (docs/COHERENCE.md): request leases on answers and
  /// honor server-pushed kInvalidate callbacks. Off by default — the wire
  /// format then stays byte-identical to protocol v3.
  bool lease_coherence = false;
  /// Renew a cache entry's lease when a hit finds less than this much of
  /// the term remaining. 0 = a quarter of the granted duration.
  SimDuration lease_renew_margin = 0;
  /// Bound on the per-authority high-water epoch table (epochs_seen_); the
  /// least recently touched authority is forgotten first. 0 = unbounded.
  std::size_t epoch_table_capacity = 4096;
  /// Shard-aware routing (protocol v5, docs/SHARDING.md): request glue
  /// records, remember shard → replica-set routes learned from them, and
  /// go straight to the owning shard's servers on later hops instead of
  /// re-walking through the delegating authority. Off by default — the
  /// wire format then never carries the glue flag or tail.
  bool shard_routing = false;
};

/// The caller's view of one asynchronous resolution (docs/ASYNC.md). A
/// small shared handle: the engine writes the outcome into the shared
/// state when the resolution settles; any number of handle copies observe
/// it. Handles never block — drive the simulator (or use the blocking
/// resolve()) to make progress.
class ResolveHandle {
 public:
  struct State {
    bool done = false;
    Result<EntityId> result =
        internal_error("resolution still in flight");
    std::uint64_t span = 0;  ///< this waiter's trace span (0 = tracing off)
  };

  ResolveHandle() = default;
  explicit ResolveHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ != nullptr && state_->done; }
  /// The settled outcome; requires done().
  [[nodiscard]] const Result<EntityId>& result() const {
    NAMECOH_CHECK(done(), "ResolveHandle::result() before completion");
    return state_->result;
  }
  /// The span id this waiter's resolution is recorded under (0 when the
  /// tracer was disabled at submission).
  [[nodiscard]] std::uint64_t span() const {
    return state_ == nullptr ? 0 : state_->span;
  }

 private:
  std::shared_ptr<State> state_;
};

/// Completion callback for resolve_async: invoked exactly once, inside the
/// simulator event that settles the resolution (or synchronously at
/// submission for cache hits and immediate errors).
using ResolveCallback = std::function<void(const Result<EntityId>&)>;

/// The client side: a process endpoint that resolves names by talking to
/// the authoritative servers, following referrals.
class ResolverClient {
 public:
  ResolverClient(const NamingGraph& graph, Internetwork& net,
                 Transport& transport, Simulator& sim,
                 const NameService& service, MachineId machine,
                 std::string label, ResolverClientConfig config = {});
  ~ResolverClient();

  ResolverClient(const ResolverClient&) = delete;
  ResolverClient& operator=(const ResolverClient&) = delete;

  /// Begin resolving `name` starting at the context object `start` and
  /// return immediately. The resolution progresses as the simulator runs:
  /// every send, timeout, backoff resend, failover and referral chase is a
  /// scheduled continuation, so many resolutions overlap on one client. A
  /// lookup identical to one already in flight (same start, same name
  /// atoms) *coalesces*: it attaches to the existing wire exchange instead
  /// of sending, and settles with it ("coalesced" counter, kCoalesced
  /// trace event). Cache hits and immediately-detectable errors settle
  /// synchronously, before this returns. When the transport's tracer is
  /// enabled, each waiter gets its own span; the wire-level events of a
  /// shared exchange are recorded under the owning (first) waiter's span.
  ResolveHandle resolve_async(EntityId start, const CompoundName& name);
  /// Callback form: `on_done` fires exactly once when the resolution
  /// settles (synchronously for cache hits; from inside a simulator event
  /// otherwise). The callback may submit new resolutions.
  ResolveHandle resolve_async(EntityId start, const CompoundName& name,
                              ResolveCallback on_done);
  /// Per-request options form: `options` overrides the config's
  /// `resolve` options for this lookup only. Lookups whose effective
  /// options differ in a way that changes the wire outcome
  /// (max_referrals) never coalesce with each other — a mismatched
  /// waiter runs its own exchange instead ("coalesce_rejected").
  ResolveHandle resolve_async(EntityId start, const CompoundName& name,
                              const ResolveOptions& options,
                              ResolveCallback on_done = {});

  /// Blocking form: submit via resolve_async, then drive the simulator
  /// until that handle settles. Byte-identical results, counters and span
  /// structure to the pre-async resolver; other in-flight work naturally
  /// progresses while this waits.
  Result<EntityId> resolve(EntityId start, const CompoundName& name);
  Result<EntityId> resolve(EntityId start, const CompoundName& name,
                           const ResolveOptions& options);

  /// Point-in-time copy of this client's counters
  /// ("ns.client.<endpoint-id>.*"); index by bare field name, e.g.
  /// snapshot()["cache_hits"].
  [[nodiscard]] StatsSnapshot snapshot() const;

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  /// Resolutions currently in flight (coalesced waiters share one entry).
  [[nodiscard]] std::size_t inflight() const { return requests_.size(); }

  void clear_cache() {
    cache_.clear();
    lru_.clear();
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

  /// Membership-aware route healing (docs/MEMBERSHIP.md): with a
  /// directory attached, every send first checks its target against the
  /// membership view. A target whose machine has *left* is skipped
  /// without burning its timeout budget (and the hop re-derives fresh
  /// candidates from the authority map once); a target whose machine was
  /// *renamed* since the route was learned gets its pid re-derived from
  /// the machine's current server address ("ns.member.routes_healed",
  /// kRouteHealed); a machine-less route (v2 referral) is matched against
  /// the directory's rename tombstones while their window is open.
  /// Detach (nullptr) restores the membership-blind behaviour.
  void attach_membership(const MembershipDirectory* directory) {
    membership_ = directory;
  }

 private:
  // Keys are (start context, name) with the name held as interned atoms:
  // hashing and equality are integer scans, and a key copy is a memcpy for
  // names that fit the inline buffer (no heap, unlike the path-string keys
  // this replaced). The same key identifies identical in-flight lookups
  // for coalescing.
  struct CacheKey {
    EntityId start;
    CompoundName name;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      std::size_t seed = 0;
      hash_combine(seed, key.start);
      hash_combine(seed, key.name);
      return seed;
    }
  };
  struct CacheEntry {
    EntityId entity;         ///< positive entries: the answer
    SimTime expires;         ///< entry is dead once now >= expires
    EntityId authority;      ///< context whose bindings produced the reply
    std::uint64_t epoch;     ///< authority's rebind epoch at answer time
    bool negative;           ///< true: a cached resolution error
    std::string error;       ///< negative entries: the server's message
    // Lease state (docs/COHERENCE.md); lease_id == 0 means no lease —
    // the entry is plain-TTL, exactly the pre-v4 behaviour.
    std::uint64_t lease_id = 0;
    SimTime lease_expires = 0;     ///< server's promise ends here
    SimDuration lease_duration = 0;  ///< granted term (for renew margin)
    std::list<CacheKey>::iterator lru;  ///< position in lru_
  };

  /// One server a hop may talk to: its pid in this client's context, plus
  /// the machine it serves for (kNoMachine → invalid when unknown, e.g. a
  /// pre-replication referral with no replica list). `incarnation` is the
  /// machine's membership incarnation when the route was minted (0 = no
  /// directory attached / unknown): a later rename bumps the directory's
  /// incarnation, marking this pid as minted against dead addresses.
  struct ReplicaRef {
    Pid pid;
    MachineId machine;
    std::uint64_t incarnation = 0;
  };

  /// One completion to deliver when a resolution settles.
  struct Waiter {
    std::shared_ptr<ResolveHandle::State> state;
    ResolveCallback callback;
  };

  /// A decoded kResolveReply (the per-request successor of the old
  /// client-wide reply_* scratch fields: overlapping resolutions never
  /// share decode state).
  struct Reply {
    std::uint64_t disposition = NsWire::kError;
    EntityId entity;
    std::string remaining;
    std::string error;
    Pid next_server;  ///< referral target, rebased into this client's
                      ///< context by the transport's R(sender) remap
    EntityId authority;        ///< context the answer depends on
    std::uint64_t epoch = 0;   ///< its rebind epoch at the server
    /// The authority's replica set from the reply tail (protocol v3);
    /// empty when the peer sent a v2 reply.
    std::vector<ReplicaRef> replicas;
    /// Lease tail (protocol v4): term granted and its id; 0/0 when the
    /// server granted nothing (or the reply predates v4).
    std::uint64_t lease_duration = 0;
    std::uint64_t lease_id = 0;
    /// Glue tail (protocol v5): delegate replica sets learned alongside a
    /// referral; empty unless this client negotiated kFlagShardGlue.
    std::vector<ReplyTail::Glue> glue;
  };

  /// The per-request state machine (docs/ASYNC.md). Heap-pinned for its
  /// whole life: `remaining` is a slice into `key.name`'s inline buffer
  /// and scheduled continuations hold the record's id, so the record must
  /// never move.
  struct PendingResolve {
    PendingResolve(std::uint64_t request_id, CacheKey request_key)
        : id(request_id), key(std::move(request_key)) {}

    std::uint64_t id;
    CacheKey key;          ///< owns the name the slices point into
    std::size_t max_referrals = 0;  ///< this exchange's referral budget —
                                    ///< part of the coalescing identity
    bool refresh = false;  ///< background lease renewal: no waiters, does
                           ///< not count as a resolution
    EntityId current;      ///< context the current hop asks about
    NameSlice remaining;   ///< unresolved tail, narrowed per referral
    std::string hop_text;  ///< wire text of `remaining`
    std::size_t hops_done = 0;  ///< replies processed (referral guard)
    std::vector<ReplicaRef> candidates;  ///< this hop's replica set
    std::vector<std::size_t> order;  ///< candidate indices, suspects last
    std::size_t candidate = 0;  ///< position in `order`
    std::size_t attempt = 0;    ///< resend attempt on this candidate
    SimDuration timeout = 0;    ///< current (backed-off) attempt timeout
    SimTime hop_begin = 0;
    bool failed_over = false;   ///< this hop moved past a replica
    Status last_error;          ///< best failure to report if all fail
    std::uint64_t expected_corr = 0;  ///< outstanding attempt's id (0=none)
    EventId timeout_event;      ///< pending deadline (invalid = none)
    bool timeout_deferred = false;  ///< deadline-tie deferral used up
    std::uint64_t owner_span = 0;  ///< first waiter's span: wire events
    /// Membership healing: this hop already re-derived its candidates
    /// from the authority map once after hitting a departed machine.
    bool rerouted = false;
    /// Shard the current hop's context belongs to, as far as this client
    /// knows (NsWire::kNoShard when unknown) — cross-shard hop accounting.
    std::uint64_t hop_shard = NsWire::kNoShard;
    std::vector<Waiter> waiters;   ///< everyone settled by this exchange
  };

  ResolveHandle resolve_async_impl(EntityId start, const CompoundName& name,
                                   const ResolveOptions& options,
                                   ResolveCallback callback);
  /// Create the wire exchange for `key` and index it in inflight_; the
  /// caller attaches waiters and then calls start_hop. Returns nullptr
  /// (with `*error` set) when the exchange cannot even start — no local
  /// server, dead endpoints.
  PendingResolve* launch_exchange(CacheKey key, std::size_t max_referrals,
                                  bool refresh, Status* error);

  // Engine continuations, in the order a lossless resolution runs them.
  void start_hop(PendingResolve& p);
  void begin_candidate(PendingResolve& p);
  void send_attempt(PendingResolve& p);
  void on_timeout(std::uint64_t id);
  void handle_reply(const Message& message);
  void on_reply(PendingResolve& p, const Reply& reply);
  /// Server-pushed kInvalidate (protocol v4): bump the epoch high-water
  /// mark and drop cache entries the voided lease covered.
  void handle_invalidate(const Message& message);
  /// Cache hit with the lease term nearly out: kick off a background
  /// refresh exchange (waiter-less) so the promise stays unbroken.
  void maybe_renew(const CacheKey& key, const CacheEntry& entry);
  void fail_candidate(PendingResolve& p, Status error);
  /// Membership healing (attach_membership). Checks the current target
  /// against the directory; may rewrite its pid in place, restart the hop
  /// with fresh candidates, or fail the candidate. True = control flow
  /// was taken over and send_attempt must return without sending.
  bool heal_target(PendingResolve& p);
  /// Re-derive this hop's candidates from the authority map (the
  /// departed-machine recovery path) and restart the hop.
  void reroute_hop(PendingResolve& p);
  /// Forget learned shard routes through `machine` (it left the fabric).
  void purge_routes(MachineId machine);
  /// Rewrite learned shard routes through `machine` to its fresh pid.
  void refresh_routes(MachineId machine, const Pid& pid,
                      std::uint64_t incarnation);
  /// The membership incarnation to stamp a freshly minted route with.
  [[nodiscard]] std::uint64_t member_incarnation(MachineId machine) const;
  /// Detach the request from every engine map, then settle all waiters.
  void complete(PendingResolve& p, const Result<EntityId>& result);
  /// Close the waiter's span, count failures, store the result, invoke the
  /// callback. The one funnel every outcome (sync or async) goes through.
  void settle_waiter(Waiter& waiter, const Result<EntityId>& result);

  /// The hop's candidates for resolving `ctx`: the server reached through
  /// `via` first (the referral target / local machine), then the rest of
  /// ctx's replica set as known to the service's authority map, deduped.
  [[nodiscard]] std::vector<ReplicaRef> candidates_for(
      EntityId ctx, const ReplicaRef& via) const;
  [[nodiscard]] bool is_suspect(MachineId machine) const;

  /// Cache plumbing: TTL + epoch validation + LRU touch on hit; bounded
  /// insert with LRU eviction; high-water epoch bookkeeping. `span` is the
  /// probing waiter's span, for kStaleEpochDrop attribution.
  const CacheEntry* cache_lookup(const CacheKey& key, std::uint64_t span);
  void cache_insert(const CacheKey& key, CacheEntry entry);
  void note_epoch(EntityId authority, std::uint64_t epoch);

  const NamingGraph& graph_;
  Internetwork& net_;
  Transport& transport_;
  Simulator& sim_;
  const NameService& service_;
  EndpointId endpoint_;
  ResolverClientConfig config_;
  std::string metrics_prefix_;  ///< "ns.client.<endpoint-id>."
  Counter* resolutions_;
  Counter* messages_sent_;
  Counter* referrals_followed_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* failures_;
  Counter* evictions_;
  Counter* negative_hits_;
  Counter* stale_epoch_drops_;
  Counter* timeouts_;
  Counter* backoff_retries_;
  Counter* stale_replies_dropped_;
  Counter* failovers_;
  Counter* coalesced_;
  Counter* coalesce_rejected_;  ///< identical key, incompatible options
  Counter* invalidates_received_;
  Counter* lease_renewals_;     ///< background refresh exchanges launched
  Counter* lease_degrades_;     ///< lease lapsed / renewal failed → TTL
  // Sharding counters (docs/SHARDING.md). Registered registry-wide as
  // "ns.shard.*" — one set shared by every client on the registry, since
  // the fabric-level question ("how many referrals crossed shards?") spans
  // clients.
  Counter* delegations_chased_;  ///< referrals that carried glue records
  Counter* glue_hits_;           ///< next hop's candidates came from glue
  Counter* cross_shard_hops_;    ///< hop moved to a different shard
  Counter* route_reuses_;        ///< first hop reused a learned shard route
  // Membership counters (docs/MEMBERSHIP.md). Registry-wide as
  // "ns.member.*", like the sharding set: route health is a fabric-level
  // question that spans clients.
  Counter* routes_healed_;       ///< stale pid re-derived before sending
  Counter* dead_route_skips_;    ///< candidate skipped: machine left
  Gauge* epochs_tracked_;       ///< live size of the epoch high-water table
  /// Simulated ticks from the first send of a hop to the first reply,
  /// recorded only for hops that failed over at least once.
  Histogram* failover_latency_;
  /// Staleness windows actually closed by a kInvalidate push: ticks from
  /// the rebind to the client dropping its superseded entries.
  Histogram* stale_window_;
  /// Replica health: machine → simulated time until which it is suspect.
  /// Entries are erased on a successful round trip to the machine.
  std::unordered_map<MachineId, SimTime> suspect_until_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  ///< front = most recently used
  /// Highest rebind epoch seen per authoritative context; entries cached
  /// under an older epoch are superseded. Bounded LRU
  /// (config.epoch_table_capacity): the least recently *touched* authority
  /// is forgotten first — forgetting only weakens invalidation back to
  /// plain TTL, it never serves wrong data.
  struct EpochRecord {
    std::uint64_t epoch = 0;
    std::list<EntityId>::iterator lru;
  };
  std::unordered_map<EntityId, EpochRecord> epochs_seen_;
  std::list<EntityId> epoch_lru_;  ///< front = most recently touched
  /// Shard routes learned from glue records: wire shard id → the delegate
  /// shard's replica servers. Trusted until a resolution through them
  /// fails over (the normal suspect machinery still applies per machine).
  std::unordered_map<std::uint64_t, std::vector<ReplicaRef>> shard_routes_;
  /// Delegation boundaries learned from glue: context → owning wire shard.
  std::unordered_map<EntityId, std::uint64_t> ctx_shards_;

  // Engine state. Requests are keyed by a client-local id; the unique_ptr
  // pins each record so slices and continuations stay valid. A reply is
  // accepted only when its correlation id is routed in corr_to_request_ —
  // the id is unrouted the moment an attempt times out or settles, so a
  // delayed reply from an earlier attempt, an earlier hop, or another
  // resolution can never be mis-taken for a current answer.
  std::uint64_t next_corr_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingResolve>>
      requests_;
  /// Identical-lookup index for coalescing: key → live requests. Usually
  /// one; more when per-request options forbade attaching to the first
  /// (each option variant runs its own exchange).
  std::unordered_map<CacheKey, std::vector<PendingResolve*>, CacheKeyHash>
      inflight_;
  /// Currently-awaited correlation ids → owning request id.
  std::unordered_map<std::uint64_t, std::uint64_t> corr_to_request_;
  MachineId client_machine_;  ///< where this client endpoint lives
  /// Membership view for route healing; nullptr = membership-blind.
  const MembershipDirectory* membership_ = nullptr;
};

}  // namespace namecoh
