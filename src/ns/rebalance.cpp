#include "ns/rebalance.hpp"

#include <algorithm>
#include <utility>

namespace namecoh {

std::string_view migration_phase_name(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kIdle: return "idle";
    case MigrationPhase::kCopy: return "copy";
    case MigrationPhase::kCatchUp: return "catch-up";
    case MigrationPhase::kForwarding: return "forwarding";
    case MigrationPhase::kDone: return "done";
    case MigrationPhase::kAborted: return "aborted";
  }
  return "unknown";
}

MigrationDriver::MigrationDriver(const NamingGraph& graph, AuthorityMap& homes,
                                 NameService& service, Simulator& sim)
    : graph_(graph), homes_(homes), service_(service), sim_(sim) {
  MetricsRegistry& metrics = service_.metrics();
  snapshots_pushed_ = &metrics.counter("ns.rebalance.snapshots_pushed");
  catchup_rounds_ = &metrics.counter("ns.rebalance.catchup_rounds");
  completed_ = &metrics.counter("ns.rebalance.migrations_completed");
  aborted_ = &metrics.counter("ns.rebalance.migrations_aborted");
}

void MigrationDriver::enter_phase(MigrationPhase phase) {
  report_.phase = phase;
  service_.tracer().record(sim_.now(), EventKind::kMigrationPhase, 0,
                           report_.root.valid() ? report_.root.value() : 0,
                           static_cast<std::uint64_t>(phase));
}

Status MigrationDriver::start(EntityId root, ShardId to,
                              MigrationOptions options,
                              MigrationCallback on_done) {
  if (active()) {
    return failed_precondition_error(
        "migration already in progress; one subtree at a time");
  }
  const ShardId from = homes_.shard_of(root);
  if (from == AuthorityMap::kNoShard) {
    return invalid_argument_error(
        "migration root is not shard-owned (nothing to migrate)");
  }
  if (homes_.shard_replicas(to).empty()) {
    return invalid_argument_error("unknown target shard");
  }
  if (from == to) {
    return invalid_argument_error("subtree already lives on the target shard");
  }
  ctxs_ = homes_.shard_subtree(graph_, root);
  auto replicas = homes_.shard_replicas(to);
  targets_.assign(replicas.begin(), replicas.end());
  // The copy phase fills the targets' replica stores before they are
  // authoritative; the intake allowance is what lets handle_update accept
  // those pushes.
  for (MachineId m : targets_) service_.open_migration_intake(m, ctxs_);
  cursor_ = 0;
  opts_ = options;
  if (opts_.copy_batch == 0) opts_.copy_batch = 1;
  on_done_ = std::move(on_done);
  report_ = MigrationReport{};
  report_.root = root;
  report_.from = from;
  report_.to = to;
  report_.contexts = ctxs_.size();
  enter_phase(MigrationPhase::kCopy);
  const std::uint64_t gen = ++gen_;
  sim_.schedule_in(opts_.copy_interval, [this, gen] { copy_round(gen); });
  return Status::ok();
}

void MigrationDriver::push_to_targets(EntityId ctx) {
  for (MachineId m : targets_) {
    if (service_.push_snapshot(ctx, m)) {
      ++report_.snapshots_pushed;
      snapshots_pushed_->inc();
    }
  }
}

bool MigrationDriver::converged(EntityId ctx) const {
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  for (MachineId m : targets_) {
    auto applied = service_.replica_epoch(m, ctx);
    if (!applied || *applied < epoch) return false;
  }
  return true;
}

void MigrationDriver::copy_round(std::uint64_t gen) {
  if (gen != gen_ || report_.phase != MigrationPhase::kCopy) return;
  const std::size_t end = std::min(cursor_ + opts_.copy_batch, ctxs_.size());
  for (; cursor_ < end; ++cursor_) push_to_targets(ctxs_[cursor_]);
  if (cursor_ < ctxs_.size()) {
    sim_.schedule_in(opts_.copy_interval, [this, gen] { copy_round(gen); });
    return;
  }
  enter_phase(MigrationPhase::kCatchUp);
  sim_.schedule_in(opts_.settle_delay, [this, gen] { catchup_check(gen); });
}

void MigrationDriver::catchup_check(std::uint64_t gen) {
  if (gen != gen_ || report_.phase != MigrationPhase::kCatchUp) return;
  // The dirty set of this migration: contexts some target still holds at
  // an older epoch — rebinds that raced the copy, or snapshots the lossy
  // network ate. Re-pushing only these makes catch-up cheap and
  // idempotent (apply-if-newer on the receiver).
  std::vector<EntityId> dirty;
  for (EntityId ctx : ctxs_) {
    if (!converged(ctx)) dirty.push_back(ctx);
  }
  if (dirty.empty()) {
    cutover(gen);
    return;
  }
  ++report_.catchup_rounds;
  catchup_rounds_->inc();
  if (report_.catchup_rounds > opts_.max_catchup_rounds) {
    finish(MigrationPhase::kAborted,
           "catch-up did not converge after " +
               std::to_string(opts_.max_catchup_rounds) +
               " round(s): " + std::to_string(dirty.size()) +
               " context(s) still behind (target partitioned or down?)");
    return;
  }
  for (EntityId ctx : dirty) push_to_targets(ctx);
  sim_.schedule_in(opts_.settle_delay, [this, gen] { catchup_check(gen); });
}

void MigrationDriver::cutover(std::uint64_t gen) {
  auto moved = homes_.migrate_subtree(graph_, report_.root, report_.to);
  if (!moved.is_ok()) {
    finish(MigrationPhase::kAborted,
           "cutover refused: " + moved.status().to_string());
    return;
  }
  report_.moved = moved.value();
  report_.cutover_at = sim_.now();
  // From this event on the shared authority map names the new owner, so
  // every referral (and its v5 glue) points there. The old owner keeps
  // tombstones for the window so stale-routed clients are observably
  // forwarded rather than silently bounced.
  service_.install_forwarding(report_.from, ctxs_,
                              sim_.now() + opts_.forward_window);
  for (MachineId m : targets_) service_.close_migration_intake(m);
  enter_phase(MigrationPhase::kForwarding);
  sim_.schedule_in(opts_.forward_window, [this, gen] {
    if (gen != gen_ || report_.phase != MigrationPhase::kForwarding) return;
    finish(MigrationPhase::kDone, "");
  });
}

void MigrationDriver::finish(MigrationPhase terminal, std::string error) {
  if (terminal == MigrationPhase::kAborted) {
    // Abort leaves the map exactly as it was; only the intake allowance
    // (and any partial target stores, which are harmless — apply-if-newer
    // snapshots, never served while unowned) needs tearing down.
    for (MachineId m : targets_) service_.close_migration_intake(m);
    aborted_->inc();
  } else {
    completed_->inc();
  }
  report_.error = std::move(error);
  enter_phase(terminal);
  if (on_done_) {
    // Move out first: the callback may start the next migration.
    MigrationCallback done = std::move(on_done_);
    on_done_ = {};
    done(report_);
  }
}

const MigrationReport& MigrationDriver::run_to_completion() {
  sim_.run_while([this] {
    return report_.phase == MigrationPhase::kCopy ||
           report_.phase == MigrationPhase::kCatchUp ||
           report_.phase == MigrationPhase::kForwarding;
  });
  return report_;
}

RebalancePlanner::RebalancePlanner(const AuthorityMap& homes,
                                   const MetricsRegistry& metrics)
    : homes_(homes), metrics_(metrics) {}

std::vector<ShardLoad> RebalancePlanner::shard_loads() const {
  std::vector<ShardLoad> loads;
  loads.reserve(homes_.shard_count());
  for (ShardId s = 0; s < homes_.shard_count(); ++s) {
    ShardLoad load;
    load.shard = s;
    for (MachineId m : homes_.shard_replicas(s)) {
      const std::string prefix =
          "ns.server.m" + std::to_string(m.value()) + ".";
      load.served += metrics_.counter_value(prefix + "served");
      load.wait_ticks += metrics_.counter_value(prefix + "wait_ticks");
    }
    load.mean_wait = load.served == 0
                         ? 0.0
                         : static_cast<double>(load.wait_ticks) /
                               static_cast<double>(load.served);
    loads.push_back(load);
  }
  return loads;
}

RebalancePlan RebalancePlanner::propose(std::span<const EntityId> candidates,
                                        PlannerOptions options) const {
  RebalancePlan plan;
  plan.loads = shard_loads();
  if (plan.loads.size() < 2) {
    plan.reason = "fewer than two shards: nothing to balance between";
    return plan;
  }
  // Hot = worst mean queue wait among shards with enough traffic to trust
  // the mean.
  const ShardLoad* hot = nullptr;
  for (const ShardLoad& load : plan.loads) {
    if (load.served < options.min_served) continue;
    if (hot == nullptr || load.mean_wait > hot->mean_wait) hot = &load;
  }
  if (hot == nullptr || hot->mean_wait <= 0.0) {
    plan.reason = "no shard shows queueing above the traffic floor";
    return plan;
  }
  // Dominance: the hot shard's mean wait must exceed hot_factor × the
  // median of the other sufficiently-served shards (a lone busy shard
  // with quiet peers still dominates: the median of waits below it is
  // smaller by construction).
  std::vector<double> others;
  for (const ShardLoad& load : plan.loads) {
    if (load.shard == hot->shard || load.served < options.min_served) continue;
    others.push_back(load.mean_wait);
  }
  if (others.empty()) {
    plan.reason = "only one shard carries traffic; comparison needs a peer";
    return plan;
  }
  std::sort(others.begin(), others.end());
  const double median = others[others.size() / 2];
  if (hot->mean_wait <= options.hot_factor * median) {
    plan.reason = "no shard dominates: hottest mean wait " +
                  std::to_string(hot->mean_wait) + " vs peer median " +
                  std::to_string(median);
    return plan;
  }
  // Coldest target: least mean wait (then least served) among the rest —
  // an idle shard that never cleared min_served is the best destination,
  // not an ineligible one.
  const ShardLoad* cold = nullptr;
  for (const ShardLoad& load : plan.loads) {
    if (load.shard == hot->shard) continue;
    if (cold == nullptr || load.mean_wait < cold->mean_wait ||
        (load.mean_wait == cold->mean_wait && load.served < cold->served)) {
      cold = &load;
    }
  }
  // The split unit: the hottest tracked subtree living on the hot shard.
  EntityId pick;
  std::uint64_t pick_hits = 0;
  for (EntityId root : candidates) {
    if (homes_.shard_of(root) != hot->shard) continue;
    const std::uint64_t hits = metrics_.counter_value(
        "ns.server.subtree." + std::to_string(root.value()) + ".hits");
    if (!pick.valid() || hits > pick_hits) {
      pick = root;
      pick_hits = hits;
    }
  }
  if (!pick.valid() || pick_hits == 0) {
    plan.reason = "shard " + std::to_string(hot->shard) +
                  " dominates but no tracked subtree with traffic lives on "
                  "it; register roots via track_subtree_loads";
    return plan;
  }
  plan.rebalance = true;
  plan.subtree = pick;
  plan.from = hot->shard;
  plan.to = cold->shard;
  plan.reason = "shard " + std::to_string(hot->shard) + " mean wait " +
                std::to_string(hot->mean_wait) + " > " +
                std::to_string(options.hot_factor) + "x peer median " +
                std::to_string(median) + "; split subtree " +
                std::to_string(pick.value()) + " (" +
                std::to_string(pick_hits) + " hits) onto shard " +
                std::to_string(cold->shard);
  return plan;
}

std::vector<MigrationStep> plan_ring_change(const NamingGraph& graph,
                                            const AuthorityMap& homes,
                                            EntityId parent,
                                            const ShardRing& ring) {
  std::vector<MigrationStep> steps;
  if (!graph.is_context_object(parent)) return steps;
  for (const auto& [name, target] : graph.context(parent).bindings()) {
    if (name.is_cwd() || name.is_parent()) continue;
    if (!graph.is_context_object(target)) continue;
    const ShardId want = ring.shard_for(target);
    const ShardId have = homes.shard_of(target);
    if (have == AuthorityMap::kNoShard || have == want) continue;
    steps.push_back(MigrationStep{target, have, want});
  }
  return steps;
}

}  // namespace namecoh
