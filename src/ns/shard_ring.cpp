#include "ns/shard_ring.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace namecoh {

namespace {

// splitmix64 finalizer: entity ids and (shard, vnode) pairs are dense
// small integers, so the ring needs a real avalanche mix — std::hash on
// libstdc++ is the identity for integers, which would lay every point in
// one arc.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRing::ShardRing(std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard) {
  NAMECOH_CHECK(vnodes_ > 0, "ShardRing needs at least one vnode per shard");
}

void ShardRing::add_shard(ShardId shard) {
  for (const Point& point : ring_) {
    if (point.shard == shard) return;  // already placed
  }
  ring_.reserve(ring_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Key each point on (shard, vnode) so a shard's points are fixed for
    // its id alone — adding shards later never moves existing points,
    // which is where the ~1/n remap bound comes from.
    const std::uint64_t position =
        mix64((static_cast<std::uint64_t>(shard) << 20) | v);
    ring_.push_back(Point{position, shard});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
  ++shard_count_;
}

void ShardRing::remove_shard(ShardId shard) {
  const std::size_t before = ring_.size();
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const Point& point) {
                               return point.shard == shard;
                             }),
              ring_.end());
  if (ring_.size() != before) --shard_count_;
}

ShardId ShardRing::shard_for(EntityId ctx) const {
  NAMECOH_CHECK(!ring_.empty(), "shard_for on an empty ring");
  // Domain-separate key hashes from point positions: without the xor tag,
  // entity ids below vnodes_per_shard hash to exactly shard 0's point
  // positions ((0 << 20) | v == v), landing *on* the point — those keys
  // stuck to shard 0 no matter how the ring changed.
  const std::uint64_t h = mix64(ctx.value() ^ 0x8f1db5a3u);
  // Successor point, wrapping past the top of the ring.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                             [](const Point& point, std::uint64_t value) {
                               return point.position < value;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

}  // namespace namecoh
