// Online shard rebalancing (docs/REBALANCING.md).
//
// PR 8's delegation fabric froze the shard map after setup: a hot subtree
// stayed where its first delegation put it, and a ShardRing change remapped
// placement without anything acting on it. This module makes authority
// *move* while lookups are in flight — the paper's coherence claim under
// the harshest condition: the name means the same thing before, during and
// after its authority relocates.
//
//   * MigrationDriver    — bulk-migrates one delegated subtree between
//                          shards in four phases: snapshot copy, catch-up
//                          of rebinds that raced the copy, atomic cutover
//                          of the delegation record, and a bounded
//                          forwarding window on the old owner;
//   * RebalancePlanner   — turns the per-machine FIFO load signals
//                          ("ns.server.m<id>.served"/".wait_ticks") and
//                          per-subtree hit counters into a migration
//                          proposal: split the hottest subtree off a shard
//                          whose mean queue wait dominates the others;
//   * plan_ring_change   — diffs current ownership against what a changed
//                          ShardRing now says and emits one MigrationStep
//                          per moved subtree, so ring add/remove becomes a
//                          plan to execute instead of a silent remap.
//
// The driver deliberately owns no wire protocol: copies ride the existing
// kUpdatePush snapshot path (NameService::push_snapshot + migration
// intake), the cutover is one AuthorityMap::migrate_subtree write, and
// lease invalidations keep flowing through publish_update's
// push-from-every-holder rule — which is why they survive migration
// unchanged (tests/test_sharding.cpp, LeaseInvalidationSurvivesMigration).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ns/name_service.hpp"

namespace namecoh {

/// Driver phases, in order. kForwarding means the cutover is done and the
/// old owner is answering stragglers; kDone/kAborted are terminal.
enum class MigrationPhase : std::uint8_t {
  kIdle,
  kCopy,
  kCatchUp,
  kForwarding,
  kDone,
  kAborted,
};

[[nodiscard]] std::string_view migration_phase_name(MigrationPhase phase);

struct MigrationOptions {
  /// Contexts snapshotted per copy round; bounds the per-tick burst the
  /// copy adds on top of foreground traffic.
  std::size_t copy_batch = 512;
  /// Ticks between copy rounds.
  SimDuration copy_interval = 10;
  /// Ticks to wait after the copy (and between catch-up rounds) before
  /// probing convergence — snapshots in flight need time to land.
  SimDuration settle_delay = 100;
  /// Catch-up rounds before the driver declares the target unreachable
  /// and aborts (each round re-pushes only the still-divergent contexts).
  std::size_t max_catchup_rounds = 8;
  /// How long the old owner keeps forwarding tombstones after cutover.
  SimDuration forward_window = 20000;
};

struct MigrationReport {
  MigrationPhase phase = MigrationPhase::kIdle;
  EntityId root;
  ShardId from = AuthorityMap::kNoShard;
  ShardId to = AuthorityMap::kNoShard;
  std::size_t contexts = 0;         ///< subtree size at start
  std::size_t snapshots_pushed = 0; ///< copy + catch-up pushes sent
  std::size_t catchup_rounds = 0;
  std::size_t moved = 0;            ///< contexts the cutover reassigned
  SimTime cutover_at = 0;
  std::string error;                ///< non-empty iff kAborted
};

using MigrationCallback = std::function<void(const MigrationReport&)>;

/// Drives one subtree migration at a time on the simulator clock. All
/// phases run as scheduled events, so closed-loop traffic keeps flowing
/// between rounds — the whole point.
class MigrationDriver {
 public:
  /// `homes` must be the same AuthorityMap `service` resolves against
  /// (non-const here: the driver performs the cutover write).
  MigrationDriver(const NamingGraph& graph, AuthorityMap& homes,
                  NameService& service, Simulator& sim);

  /// Begin migrating the subtree rooted at `root` from its owning shard to
  /// `to`. Fails (without touching anything) when a migration is already
  /// active, the root is not shard-owned, the target shard is unknown, or
  /// the move is a no-op. `on_done` (optional) fires once, with the final
  /// report, when the migration reaches kDone or kAborted.
  Status start(EntityId root, ShardId to, MigrationOptions options = {},
               MigrationCallback on_done = {});

  /// True while copy or catch-up is in progress (the map not yet cut
  /// over). The forwarding window does not count: the move is complete,
  /// only the tombstones are still draining.
  [[nodiscard]] bool active() const {
    return report_.phase == MigrationPhase::kCopy ||
           report_.phase == MigrationPhase::kCatchUp;
  }
  [[nodiscard]] MigrationPhase phase() const { return report_.phase; }
  [[nodiscard]] const MigrationReport& report() const { return report_; }

  /// Drive the simulator until the current migration (including its
  /// forwarding window) reaches a terminal phase; returns the report.
  const MigrationReport& run_to_completion();

 private:
  void copy_round(std::uint64_t gen);
  void catchup_check(std::uint64_t gen);
  void cutover(std::uint64_t gen);
  void finish(MigrationPhase terminal, std::string error);
  void enter_phase(MigrationPhase phase);
  /// Snapshot `ctx` to every target-shard machine; counts the pushes.
  void push_to_targets(EntityId ctx);
  /// Every target machine holds `ctx` at (or past) the graph's epoch.
  [[nodiscard]] bool converged(EntityId ctx) const;

  const NamingGraph& graph_;
  AuthorityMap& homes_;
  NameService& service_;
  Simulator& sim_;
  MigrationOptions opts_;
  MigrationCallback on_done_;
  std::vector<EntityId> ctxs_;      ///< the subtree being moved
  std::vector<MachineId> targets_;  ///< target shard's replica machines
  std::size_t cursor_ = 0;          ///< copy progress into ctxs_
  /// Stamped into every scheduled continuation; a stale generation means
  /// the migration it belonged to is over.
  std::uint64_t gen_ = 0;
  MigrationReport report_;
  Counter* snapshots_pushed_;
  Counter* catchup_rounds_;
  Counter* completed_;
  Counter* aborted_;
};

struct PlannerOptions {
  /// A shard is "hot" when its mean queue wait exceeds hot_factor × the
  /// median of the other shards' means.
  double hot_factor = 2.0;
  /// Shards that served fewer requests than this are ignored on both
  /// sides of the comparison (their means are noise).
  std::uint64_t min_served = 16;
};

/// One shard's load signals, summed over its replica machines.
struct ShardLoad {
  ShardId shard = AuthorityMap::kNoShard;
  std::uint64_t served = 0;
  std::uint64_t wait_ticks = 0;
  double mean_wait = 0.0;  ///< wait_ticks / served (0 when unserved)
};

struct RebalancePlan {
  bool rebalance = false;
  EntityId subtree;  ///< hottest tracked subtree on the hot shard
  ShardId from = AuthorityMap::kNoShard;
  ShardId to = AuthorityMap::kNoShard;
  std::string reason;  ///< human-readable: why this plan (or why none)
  std::vector<ShardLoad> loads;
};

/// Reads the load signals back out of the registry and proposes at most
/// one migration. Pure read-side: never mutates the map or the registry.
class RebalancePlanner {
 public:
  RebalancePlanner(const AuthorityMap& homes, const MetricsRegistry& metrics);

  /// Per-shard load, dense over every registered shard.
  [[nodiscard]] std::vector<ShardLoad> shard_loads() const;

  /// Propose splitting the hottest of `candidates` (roots registered with
  /// NameService::track_subtree_loads) off the dominating shard onto the
  /// least-loaded one. `plan.rebalance == false` (with `reason` set) when
  /// no shard dominates or no candidate lives on the hot shard.
  [[nodiscard]] RebalancePlan propose(std::span<const EntityId> candidates,
                                      PlannerOptions options = {}) const;

 private:
  const AuthorityMap& homes_;
  const MetricsRegistry& metrics_;
};

/// One subtree move a ring change calls for.
struct MigrationStep {
  EntityId root;
  ShardId from = AuthorityMap::kNoShard;
  ShardId to = AuthorityMap::kNoShard;
};

/// Diff current child ownership under `parent` against what `ring` now
/// says and return one step per child whose owning shard must change
/// (children the ring placement agrees with, and children never placed,
/// are skipped — delegate_children_by_hash handles the latter). Feed each
/// step to a MigrationDriver to act on the ring change.
[[nodiscard]] std::vector<MigrationStep> plan_ring_change(
    const NamingGraph& graph, const AuthorityMap& homes, EntityId parent,
    const ShardRing& ring);

}  // namespace namecoh
