// Dynamic membership for the naming fabric (docs/MEMBERSHIP.md).
//
// Everything below PR 9 assumed the machine population was fixed at setup:
// authority moved (rebalancing), but the machines themselves never joined,
// left, crashed or — the paper's §6 stress — *renumbered*. This module
// makes machine lifecycle a first-class runtime event:
//
//   * MembershipDirectory — tracks each machine's lifecycle state and
//     incarnation, and turns membership events into authority movement:
//     a graceful leave hands the machine's delegated subtrees to the
//     surviving shards through the PR 9 MigrationDriver (copy → catch-up
//     → cutover → forwarding window); a crash-leave re-delegates the
//     orphaned subtrees immediately (the dead owner cannot be copied
//     from — the survivors' primaries serve from the shared graph); a
//     rejoin hands the machine's ring share back.
//
//   * Renumbering (rename) — the §6 event. The machine keeps its stable
//     MachineId and its server keeps working, but every *address* minted
//     for it goes stale: a fully qualified pid held anywhere, and any
//     (0,m,l) pid held outside the machine, now names nothing (or, with
//     address reuse, the wrong thing). The directory bumps the machine's
//     incarnation and keeps a bounded-window *rename tombstone* mapping
//     the old address to the machine — the membership analogue of the
//     migration forwarding window: stale-routed clients that consult the
//     directory inside the window re-derive the route; after it closes,
//     the old address means nothing again.
//
// Placement planning is the ring (docs/REBALANCING.md): manage_subtrees
// hands the directory a ShardRing over the delegated children of one
// parent context. Membership events mutate the ring (remove_shard on
// leave/crash, add_shard on rejoin) and plan_ring_change diffs ownership
// against it — the ring's stability property guarantees a leave moves
// exactly the leaver's subtrees and a rejoin moves exactly them back.
//
// The client side of the story — route healing when a cached
// (pid, machine) target has left or been renamed — lives in
// ResolverClient::attach_membership (name_service.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ns/name_service.hpp"
#include "ns/rebalance.hpp"
#include "sim/faults.hpp"

namespace namecoh {

/// Machine lifecycle states. kLeaving is the graceful-leave handoff in
/// progress: the machine still serves (its subtrees are being copied off
/// it), but it accepts no new delegations and is skipped as a handoff
/// target.
enum class MemberState : std::uint8_t {
  kUnknown,  ///< never announced
  kUp,
  kLeaving,
  kDown,
};

[[nodiscard]] std::string_view member_state_name(MemberState state);

struct MembershipOptions {
  /// MigrationDriver options for graceful handoffs and rejoin handbacks.
  MigrationOptions handoff;
  /// How long a rename tombstone (old address → machine) stays
  /// consultable after a renumbering. Mirrors the migration forwarding
  /// window: inside it, stale routes heal; after it, they are dead.
  SimDuration rename_window = 20000;
  /// Hand a rejoining machine its ring share back (live migrations
  /// through the driver). Off = survivors keep everything they inherited.
  bool rebalance_on_join = true;
};

/// One planned or completed authority movement caused by a membership
/// event; surfaced for tests and the bench report.
struct HandoffRecord {
  EntityId root;
  ShardId from = AuthorityMap::kNoShard;
  ShardId to = AuthorityMap::kNoShard;
  bool live = false;  ///< true = driver-migrated; false = direct cutover
};

class MembershipDirectory {
 public:
  /// `homes` must be the map `service` resolves against (the directory
  /// performs cutover writes through the driver and directly).
  MembershipDirectory(const NamingGraph& graph, Internetwork& net,
                      AuthorityMap& homes, NameService& service,
                      Simulator& sim, MembershipOptions options = {});

  /// Crash-leave/rejoin drive this injector (crash/restart) when set, so
  /// membership scripts and fault scripts stay one timeline.
  void attach_faults(FaultInjector* faults) { faults_ = faults; }

  /// Enable authority movement: the delegated children of `parent` are
  /// the managed subtrees, placed by `ring` (normally the very ring that
  /// delegate_children_by_hash placed them with — anything else makes the
  /// first membership event "correct" placement toward the ring). Without
  /// this call the directory tracks lifecycle only and moves nothing.
  void manage_subtrees(EntityId parent, ShardRing ring);

  // --- Lifecycle events ----------------------------------------------------

  /// Register `machine` as a member serving `shard` (kNoShard for a
  /// client-only member). Installs a name server when the machine lacks
  /// one. First incarnation is 1.
  Status announce(MachineId machine, ShardId shard = AuthorityMap::kNoShard);

  /// Graceful leave: migrate every managed subtree owned by the member's
  /// shard to the surviving shards (live, through the MigrationDriver —
  /// foreground lookups keep completing; stragglers hit the old owner's
  /// forwarding window), then tear the server down and mark the machine
  /// kDown. `on_down` fires once, after the last handoff settles. A step
  /// whose driver migration aborts (e.g. the copy target is unreachable)
  /// falls back to a direct cutover so the leave always completes
  /// ("handoffs_forced").
  Status graceful_leave(MachineId machine, std::function<void()> on_down = {});

  /// Crash-leave: the machine dies *now* (FaultInjector::crash when
  /// attached). Managed subtrees orphaned by the death — owned by a shard
  /// with no remaining up member — are re-delegated to the surviving
  /// shards by direct cutover: there is nobody left to copy from or to
  /// install forwarding on, and the new owners' primaries serve straight
  /// from the shared graph.
  Status crash_leave(MachineId machine);

  /// Bring a kDown machine back: restart it (when it crash-left), bump
  /// its incarnation, reinstall its server, and — with rebalance_on_join —
  /// hand its ring share back through the driver.
  Status rejoin(MachineId machine);

  /// Renumber the machine (§6): its maddr changes, its MachineId and
  /// server survive, every address minted for it elsewhere goes stale.
  /// Bumps the incarnation and arms a rename tombstone for
  /// options.rename_window ticks.
  Status rename(MachineId machine);

  // --- Queries (the client's healing surface) ------------------------------

  [[nodiscard]] MemberState state(MachineId machine) const;
  [[nodiscard]] bool is_up(MachineId machine) const {
    return state(machine) == MemberState::kUp ||
           state(machine) == MemberState::kLeaving;
  }
  /// Bumped on announce, rejoin and rename: a route stamped with an older
  /// incarnation was minted against addresses that may no longer exist.
  [[nodiscard]] std::uint64_t incarnation(MachineId machine) const;
  /// Rename-tombstone lookup: the machine whose server lived at
  /// `old_address` before a rename, while the tombstone window is open.
  /// nullopt once the window closes — the address is then meaningless.
  [[nodiscard]] std::optional<MachineId> renamed_machine_at(
      const Location& old_address) const;

  /// Members currently kUp or kLeaving.
  [[nodiscard]] std::size_t up_count() const;
  /// The shard `machine` was announced for (kNoShard when none).
  [[nodiscard]] ShardId shard_of(MachineId machine) const;
  /// Every authority movement executed so far, in execution order.
  [[nodiscard]] const std::vector<HandoffRecord>& handoffs() const {
    return handoffs_;
  }
  /// True while a graceful handoff / rejoin handback queue is draining.
  [[nodiscard]] bool handoff_active() const {
    return step_in_flight_ || !queue_.empty();
  }
  /// Drive the simulator until the handoff queue is empty and the driver
  /// idle. For tests and sequential scripts.
  void run_handoffs_to_completion();

  /// Point-in-time copy of the directory's counters ("ns.membership.*").
  [[nodiscard]] StatsSnapshot snapshot() const;

 private:
  struct Member {
    MemberState state = MemberState::kUnknown;
    ShardId shard = AuthorityMap::kNoShard;
    std::uint64_t incarnation = 0;
  };
  struct RenameTombstone {
    Location old_address;
    MachineId machine;
    SimTime expires = 0;
  };
  /// One queued driver migration plus the completion that runs when the
  /// whole batch it belongs to has settled.
  struct QueuedStep {
    MigrationStep step;
    std::function<void()> on_batch_done;  ///< set on the last step only
  };

  /// Append `steps` to the driver queue (live migrations, in order) and
  /// arrange `done` to run after the last one settles. Runs `done`
  /// immediately when `steps` is empty.
  void enqueue_live(const std::vector<MigrationStep>& steps,
                    std::function<void()> done);
  void pump_queue();
  /// Cut `step` over directly (no copy, no forwarding) — the crash path
  /// and the abort fallback.
  void direct_cutover(const MigrationStep& step, bool forced);
  /// plan_ring_change against the current ring; empty when unmanaged.
  [[nodiscard]] std::vector<MigrationStep> plan() const;
  /// Whether any member of `shard` is still kUp (kLeaving excluded).
  [[nodiscard]] bool shard_has_live_member(ShardId shard) const;
  void drop_expired_tombstones() const;

  const NamingGraph& graph_;
  Internetwork& net_;
  AuthorityMap& homes_;
  NameService& service_;
  Simulator& sim_;
  MembershipOptions options_;
  FaultInjector* faults_ = nullptr;
  MigrationDriver driver_;

  bool managed_ = false;
  EntityId parent_;
  ShardRing ring_{64};

  std::unordered_map<MachineId, Member> members_;
  mutable std::vector<RenameTombstone> tombstones_;
  std::deque<QueuedStep> queue_;
  bool step_in_flight_ = false;
  std::vector<HandoffRecord> handoffs_;

  Counter* joins_;
  Counter* leaves_;
  Counter* crashes_;
  Counter* renames_;
  Counter* handoffs_live_;
  Counter* handoffs_forced_;
  Counter* redelegations_;
  Counter* tombstones_armed_;
};

}  // namespace namecoh
