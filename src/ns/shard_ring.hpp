// Consistent-hash shard placement for flat namespaces (docs/SHARDING.md).
//
// Prefix delegation (AuthorityMap::install_delegation) partitions a *tree*
// along its subtree boundaries. A flat namespace — one huge context with a
// million sibling bindings, the paper's §7 "shared name space attached
// under a common name" taken to its degenerate shape — has no subtrees to
// cut at, so placement hashes each child context onto a ring of shard
// points instead. The ring gives the two properties a growing fabric
// needs:
//
//   * balance: each shard carries vnodes_per_shard points, so keys spread
//     within a few percent of uniform without any placement table;
//   * stability: adding the (n+1)th shard remaps only ~1/(n+1) of the
//     keys — the ones whose successor point changed — instead of
//     rehashing the world (tested in tests/test_sharding.cpp).
//
// The ring is pure placement policy: it decides *which* shard should own a
// context; AuthorityMap::install_delegation (or delegate_children_by_hash)
// records the decision as an ordinary delegation, so resolution, glue
// records and lease routing never know which policy placed a context.
#pragma once

#include <cstdint>
#include <vector>

#include "core/entity.hpp"

namespace namecoh {

/// Dense shard index (AuthorityMap::add_shard order). Plain integer, not a
/// StrongId: shard ids travel on the wire as u64 glue fields.
using ShardId = std::uint32_t;

class ShardRing {
 public:
  /// `vnodes_per_shard` points are placed per shard; more points = tighter
  /// balance at a little more ring memory. 64 keeps the spread under a few
  /// percent for the shard counts the fabric targets (1–64).
  explicit ShardRing(std::size_t vnodes_per_shard = 64);

  /// Place `shard`'s vnodes on the ring. Idempotent per shard id.
  void add_shard(ShardId shard);

  /// Take `shard`'s vnodes off the ring: keys it owned fall through to
  /// their successor points (~1/n of all keys), everything else keeps its
  /// shard. No-op for a shard that was never added. Like add_shard this
  /// only changes *placement policy* — nothing moves until the caller
  /// turns the remap into migrations (plan_ring_change,
  /// docs/REBALANCING.md).
  void remove_shard(ShardId shard);

  /// The shard owning `ctx`: successor point of hash(ctx) on the ring.
  /// Precondition: at least one shard was added.
  [[nodiscard]] ShardId shard_for(EntityId ctx) const;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::size_t point_count() const { return ring_.size(); }

 private:
  struct Point {
    std::uint64_t position;
    ShardId shard;
  };

  std::size_t vnodes_;
  std::size_t shard_count_ = 0;
  std::vector<Point> ring_;  ///< sorted by position
};

}  // namespace namecoh
