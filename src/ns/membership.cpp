#include "ns/membership.hpp"

#include <algorithm>
#include <utility>

namespace namecoh {

std::string_view member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kUnknown: return "unknown";
    case MemberState::kUp: return "up";
    case MemberState::kLeaving: return "leaving";
    case MemberState::kDown: return "down";
  }
  return "?";
}

MembershipDirectory::MembershipDirectory(const NamingGraph& graph,
                                         Internetwork& net,
                                         AuthorityMap& homes,
                                         NameService& service, Simulator& sim,
                                         MembershipOptions options)
    : graph_(graph),
      net_(net),
      homes_(homes),
      service_(service),
      sim_(sim),
      options_(options),
      driver_(graph, homes, service, sim) {
  MetricsRegistry& metrics = service_.metrics();
  joins_ = &metrics.counter("ns.membership.joins");
  leaves_ = &metrics.counter("ns.membership.leaves");
  crashes_ = &metrics.counter("ns.membership.crashes");
  renames_ = &metrics.counter("ns.membership.renames");
  handoffs_live_ = &metrics.counter("ns.membership.handoffs_live");
  handoffs_forced_ = &metrics.counter("ns.membership.handoffs_forced");
  redelegations_ = &metrics.counter("ns.membership.redelegations");
  tombstones_armed_ = &metrics.counter("ns.membership.tombstones_armed");
}

void MembershipDirectory::manage_subtrees(EntityId parent, ShardRing ring) {
  managed_ = true;
  parent_ = parent;
  ring_ = std::move(ring);
}

Status MembershipDirectory::announce(MachineId machine, ShardId shard) {
  Member& member = members_[machine];
  if (member.state != MemberState::kUnknown) {
    return invalid_argument_error(
        "machine already announced; use rejoin after a leave");
  }
  member.state = MemberState::kUp;
  member.shard = shard;
  member.incarnation = 1;
  if (shard != AuthorityMap::kNoShard &&
      !service_.server_on(machine).is_ok()) {
    service_.add_server(machine);
  }
  joins_->inc();
  service_.tracer().record(sim_.now(), EventKind::kMemberJoin, 0,
                           machine.value(), member.incarnation);
  return Status::ok();
}

std::vector<MigrationStep> MembershipDirectory::plan() const {
  if (!managed_ || ring_.shard_count() == 0) return {};
  return plan_ring_change(graph_, homes_, parent_, ring_);
}

bool MembershipDirectory::shard_has_live_member(ShardId shard) const {
  if (shard == AuthorityMap::kNoShard) return false;
  for (const auto& [machine, member] : members_) {
    if (member.shard == shard && member.state == MemberState::kUp) {
      return true;
    }
  }
  return false;
}

Status MembershipDirectory::graceful_leave(MachineId machine,
                                           std::function<void()> on_down) {
  auto it = members_.find(machine);
  if (it == members_.end() || it->second.state != MemberState::kUp) {
    return invalid_argument_error("graceful_leave needs an up member");
  }
  Member& member = it->second;
  member.state = MemberState::kLeaving;
  std::vector<MigrationStep> steps;
  if (managed_ && member.shard != AuthorityMap::kNoShard &&
      !shard_has_live_member(member.shard)) {
    // Last member of its shard: the shard leaves the ring and its
    // subtrees migrate live to the survivors. (With a co-member still
    // up, authority stays put — the replica set keeps serving.)
    ring_.remove_shard(member.shard);
    steps = plan();
  }
  const std::size_t handed_off = steps.size();
  enqueue_live(steps, [this, machine, handed_off,
                       on_down = std::move(on_down)] {
    auto member_it = members_.find(machine);
    if (member_it != members_.end()) {
      member_it->second.state = MemberState::kDown;
    }
    service_.remove_server(machine);
    leaves_->inc();
    service_.tracer().record(sim_.now(), EventKind::kMemberLeave, 0,
                             machine.value(), handed_off);
    if (on_down) on_down();
  });
  return Status::ok();
}

Status MembershipDirectory::crash_leave(MachineId machine) {
  auto it = members_.find(machine);
  if (it == members_.end() || it->second.state == MemberState::kUnknown ||
      it->second.state == MemberState::kDown) {
    return invalid_argument_error("crash_leave needs a live member");
  }
  Member& member = it->second;
  member.state = MemberState::kDown;
  if (faults_ != nullptr) faults_->crash(machine.value());
  std::size_t redelegated = 0;
  if (managed_ && member.shard != AuthorityMap::kNoShard &&
      !shard_has_live_member(member.shard)) {
    // Orphaned subtrees: nobody left to copy from, nobody to install
    // forwarding on. Re-delegate by direct cutover; the survivors'
    // primaries serve straight from the shared graph.
    ring_.remove_shard(member.shard);
    for (const MigrationStep& step : plan()) {
      direct_cutover(step, /*forced=*/false);
      ++redelegated;
    }
  }
  crashes_->inc();
  service_.tracer().record(sim_.now(), EventKind::kMemberCrash, 0,
                           machine.value(), redelegated);
  return Status::ok();
}

Status MembershipDirectory::rejoin(MachineId machine) {
  auto it = members_.find(machine);
  if (it == members_.end() || it->second.state != MemberState::kDown) {
    return invalid_argument_error("rejoin needs a down member");
  }
  Member& member = it->second;
  member.state = MemberState::kUp;
  ++member.incarnation;
  if (faults_ != nullptr && faults_->is_crashed(machine.value())) {
    faults_->restart(machine.value());
  }
  if (member.shard != AuthorityMap::kNoShard &&
      !service_.server_on(machine).is_ok()) {
    service_.add_server(machine);
  }
  joins_->inc();
  service_.tracer().record(sim_.now(), EventKind::kMemberJoin, 0,
                           machine.value(), member.incarnation);
  if (managed_ && options_.rebalance_on_join &&
      member.shard != AuthorityMap::kNoShard) {
    // The ring hands the rejoined shard exactly its old share back
    // (hash stability), as live migrations — the reverse of its leave.
    ring_.add_shard(member.shard);
    enqueue_live(plan(), {});
  }
  return Status::ok();
}

Status MembershipDirectory::rename(MachineId machine) {
  auto it = members_.find(machine);
  if (it == members_.end() || (it->second.state != MemberState::kUp &&
                               it->second.state != MemberState::kLeaving)) {
    return invalid_argument_error("rename needs a live member");
  }
  // Remember where the server *was*: inside the rename window this is the
  // address stale routes still point at, and the tombstone maps it back
  // to the machine so those routes can heal (docs/MEMBERSHIP.md).
  std::optional<Location> old_address;
  if (auto server = service_.server_on(machine); server.is_ok()) {
    if (auto loc = net_.location_of(server.value()); loc.is_ok()) {
      old_address = loc.value();
    }
  }
  Status renumbered = net_.renumber_machine(machine);
  if (!renumbered.is_ok()) return renumbered;
  Member& member = it->second;
  ++member.incarnation;
  if (old_address) {
    tombstones_.push_back(RenameTombstone{
        *old_address, machine, sim_.now() + options_.rename_window});
    tombstones_armed_->inc();
  }
  renames_->inc();
  service_.tracer().record(sim_.now(), EventKind::kMemberRename, 0,
                           machine.value(), member.incarnation);
  return Status::ok();
}

MemberState MembershipDirectory::state(MachineId machine) const {
  auto it = members_.find(machine);
  return it == members_.end() ? MemberState::kUnknown : it->second.state;
}

std::uint64_t MembershipDirectory::incarnation(MachineId machine) const {
  auto it = members_.find(machine);
  return it == members_.end() ? 0 : it->second.incarnation;
}

void MembershipDirectory::drop_expired_tombstones() const {
  const SimTime now = sim_.now();
  std::erase_if(tombstones_, [now](const RenameTombstone& tombstone) {
    return tombstone.expires <= now;
  });
}

std::optional<MachineId> MembershipDirectory::renamed_machine_at(
    const Location& old_address) const {
  drop_expired_tombstones();
  // Newest match wins: a machine renamed twice inside one window leaves
  // two tombstones, and the later one reflects the later truth.
  for (auto it = tombstones_.rbegin(); it != tombstones_.rend(); ++it) {
    if (it->old_address == old_address) return it->machine;
  }
  return std::nullopt;
}

std::size_t MembershipDirectory::up_count() const {
  std::size_t count = 0;
  for (const auto& [machine, member] : members_) {
    if (member.state == MemberState::kUp ||
        member.state == MemberState::kLeaving) {
      ++count;
    }
  }
  return count;
}

ShardId MembershipDirectory::shard_of(MachineId machine) const {
  auto it = members_.find(machine);
  return it == members_.end() ? AuthorityMap::kNoShard : it->second.shard;
}

void MembershipDirectory::run_handoffs_to_completion() {
  sim_.run_while([this] { return handoff_active(); });
}

StatsSnapshot MembershipDirectory::snapshot() const {
  return StatsSnapshot(service_.metrics(), "ns.membership.");
}

void MembershipDirectory::enqueue_live(const std::vector<MigrationStep>& steps,
                                       std::function<void()> done) {
  if (steps.empty()) {
    if (done) done();
    return;
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    QueuedStep queued;
    queued.step = steps[i];
    if (i + 1 == steps.size()) queued.on_batch_done = std::move(done);
    queue_.push_back(std::move(queued));
  }
  pump_queue();
}

void MembershipDirectory::pump_queue() {
  if (step_in_flight_ || queue_.empty()) return;
  QueuedStep queued = std::move(queue_.front());
  queue_.pop_front();
  const MigrationStep step = queued.step;
  auto finish_step = [this, batch_done = std::move(queued.on_batch_done)] {
    step_in_flight_ = false;
    if (batch_done) batch_done();
    pump_queue();
  };
  // A step may have been overtaken by queue order (its root already moved
  // on); the driver refuses it and the direct path shrugs it off too.
  if (homes_.shard_of(step.root) != step.from) {
    finish_step();
    return;
  }
  step_in_flight_ = true;
  Status started = driver_.start(
      step.root, step.to, options_.handoff,
      [this, step, finish_step](const MigrationReport& report) {
        if (report.phase == MigrationPhase::kDone) {
          handoffs_live_->inc();
          handoffs_.push_back(
              HandoffRecord{step.root, step.from, step.to, /*live=*/true});
        } else {
          // Copy could not converge (target unreachable?): the leave must
          // still complete, so cut over without the copy.
          direct_cutover(step, /*forced=*/true);
        }
        finish_step();
      });
  if (!started.is_ok()) {
    // Driver busy with an external migration or the step degenerated:
    // force the cutover rather than wedging the leave forever.
    direct_cutover(step, /*forced=*/true);
    finish_step();
  }
}

void MembershipDirectory::direct_cutover(const MigrationStep& step,
                                         bool forced) {
  auto moved = homes_.migrate_subtree(graph_, step.root, step.to);
  if (!moved.is_ok()) return;  // stale step (already moved); nothing to do
  if (forced) {
    handoffs_forced_->inc();
  } else {
    redelegations_->inc();
  }
  handoffs_.push_back(
      HandoffRecord{step.root, step.from, step.to, /*live=*/false});
}

}  // namespace namecoh
