#include "ns/name_service.hpp"

#include <algorithm>
#include <utility>

#include "util/strings.hpp"

namespace namecoh {

std::optional<NameSlice> referral_suffix(NameSlice sent,
                                         std::string_view remaining) {
  if (remaining.empty()) return sent.subslice(sent.size());
  // Count components first so the candidate suffix is known before any
  // text is compared.
  std::size_t count = 1;
  for (char c : remaining) {
    if (c == '/') ++count;
  }
  if (count > sent.size()) return std::nullopt;
  const NameSlice candidate = sent.subslice(sent.size() - count);
  std::size_t start = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t slash = remaining.find('/', start);
    const std::string_view piece =
        slash == std::string_view::npos
            ? remaining.substr(start)
            : remaining.substr(start, slash - start);
    if (piece != candidate[i].text()) return std::nullopt;
    start = slash + 1;
  }
  return candidate;
}

void AuthorityMap::set_home(EntityId ctx, MachineId machine) {
  NAMECOH_CHECK(ctx.valid() && machine.valid(), "invalid home assignment");
  homes_[ctx] = {machine};
}

void AuthorityMap::set_replicas(EntityId ctx,
                                std::vector<MachineId> replicas) {
  NAMECOH_CHECK(ctx.valid() && !replicas.empty(),
                "invalid replica assignment");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    NAMECOH_CHECK(replicas[i].valid(), "invalid replica machine");
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      NAMECOH_CHECK(replicas[i] != replicas[j], "duplicate replica machine");
    }
  }
  homes_[ctx] = std::move(replicas);
}

void AuthorityMap::set_home_subtree(const NamingGraph& graph, EntityId root,
                                    MachineId machine) {
  set_replicas_subtree(graph, root, {machine});
}

void AuthorityMap::set_replicas_subtree(const NamingGraph& graph,
                                        EntityId root,
                                        std::vector<MachineId> replicas) {
  NAMECOH_CHECK(graph.is_context_object(root),
                "set_replicas_subtree: root is not a context object");
  NAMECOH_CHECK(!replicas.empty(), "empty replica set");
  // The root is always re-assigned, per the contract; a silent no-op when
  // it already belonged to another authority would leave the caller with a
  // partitioned map and no error. Descendants with a foreign authority are
  // left alone (shared subtrees keep their own).
  homes_.insert_or_assign(root, replicas);
  std::deque<EntityId> frontier{root};
  while (!frontier.empty()) {
    EntityId ctx = frontier.front();
    frontier.pop_front();
    if (homes_.at(ctx) != replicas) continue;  // foreign authority: stop
    for (const auto& [name, target] : graph.context(ctx).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (graph.is_context_object(target) &&
          homes_.try_emplace(target, replicas).second) {
        frontier.push_back(target);
      }
    }
  }
}

Result<MachineId> AuthorityMap::home_of(EntityId ctx) const {
  auto it = homes_.find(ctx);
  if (it == homes_.end()) {
    return not_found_error("context has no authoritative home");
  }
  return it->second.front();
}

std::span<const MachineId> AuthorityMap::replicas_of(EntityId ctx) const {
  auto it = homes_.find(ctx);
  if (it == homes_.end()) return {};
  return it->second;
}

bool AuthorityMap::has_home(EntityId ctx) const {
  return homes_.contains(ctx);
}

bool AuthorityMap::is_replica(EntityId ctx, MachineId machine) const {
  auto it = homes_.find(ctx);
  if (it == homes_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), machine) !=
         it->second.end();
}

bool AuthorityMap::is_primary(EntityId ctx, MachineId machine) const {
  auto it = homes_.find(ctx);
  return it != homes_.end() && it->second.front() == machine;
}

std::vector<EntityId> AuthorityMap::replicated_contexts() const {
  std::vector<EntityId> out;
  for (const auto& [ctx, replicas] : homes_) {
    if (replicas.size() >= 2) out.push_back(ctx);
  }
  return out;
}

NameService::NameService(const NamingGraph& graph, Internetwork& net,
                         Transport& transport, const AuthorityMap& homes)
    : graph_(graph), net_(net), transport_(transport), homes_(homes) {
  MetricsRegistry& metrics = transport_.metrics();
  requests_ = &metrics.counter("ns.server.requests");
  answers_ = &metrics.counter("ns.server.answers");
  referrals_ = &metrics.counter("ns.server.referrals");
  failures_ = &metrics.counter("ns.server.failures");
  duplicates_ = &metrics.counter("ns.server.duplicates");
  update_pushes_ = &metrics.counter("ns.server.update_pushes");
  updates_applied_ = &metrics.counter("ns.server.updates_applied");
  updates_stale_ = &metrics.counter("ns.server.updates_stale");
  store_answers_ = &metrics.counter("ns.server.store_answers");
}

NameServiceStats NameService::stats() const {
  return NameServiceStats{requests_->value(),       answers_->value(),
                          referrals_->value(),      failures_->value(),
                          duplicates_->value(),     update_pushes_->value(),
                          updates_applied_->value(), updates_stale_->value(),
                          store_answers_->value()};
}

EndpointId NameService::add_server(MachineId machine) {
  NAMECOH_CHECK(!servers_.contains(machine),
                "machine already has a name server");
  EndpointId server = net_.add_endpoint(machine, "nameserver");
  servers_[machine] = server;
  transport_.set_handler(server,
                         [this](EndpointId self, const Message& message) {
                           if (message.type == NsWire::kUpdatePush) {
                             handle_update(self, message);
                           } else {
                             handle_request(self, message);
                           }
                         });
  return server;
}

Result<EndpointId> NameService::server_on(MachineId machine) const {
  auto it = servers_.find(machine);
  if (it == servers_.end()) {
    return unreachable_error("no name server on machine");
  }
  return it->second;
}

void NameService::publish_update(EntityId ctx) {
  auto replicas = homes_.replicas_of(ctx);
  if (replicas.size() < 2) return;
  if (!graph_.is_context_object(ctx)) return;
  auto primary = servers_.find(replicas.front());
  if (primary == servers_.end()) return;
  auto primary_loc = net_.location_of(primary->second);
  if (!primary_loc.is_ok()) return;
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  const auto bindings = graph_.context(ctx).bindings();
  Tracer& tracer = transport_.tracer();
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    auto secondary = servers_.find(replicas[i]);
    if (secondary == servers_.end()) continue;
    auto secondary_loc = net_.location_of(secondary->second);
    if (!secondary_loc.is_ok()) continue;
    // Full-snapshot push: [ctx, epoch, n, (name, target) × n]. Snapshots
    // rather than deltas keep the apply idempotent — any newer snapshot
    // supersedes the store wholesale, so loss and reordering can delay
    // convergence but never corrupt it.
    Message push;
    push.type = NsWire::kUpdatePush;
    push.payload.add_u64(ctx.value());
    push.payload.add_u64(epoch);
    push.payload.add_u64(bindings.size());
    for (const Binding& b : bindings) {
      push.payload.add_name(b.name.text());
      push.payload.add_u64(b.entity.value());
    }
    update_pushes_->inc();
    tracer.record(transport_.simulator().now(), EventKind::kUpdatePush, 0,
                  ctx.value(), epoch);
    (void)transport_.send(
        primary->second,
        relativize(secondary_loc.value(), primary_loc.value()),
        std::move(push));
  }
}

void NameService::start_anti_entropy(SimDuration interval) {
  NAMECOH_CHECK(interval > 0, "anti-entropy interval must be positive");
  const bool was_running = anti_entropy_interval_ != 0;
  anti_entropy_interval_ = interval;
  if (!was_running) {
    transport_.simulator().schedule_in(interval,
                                       [this] { anti_entropy_tick(); });
  }
}

void NameService::stop_anti_entropy() { anti_entropy_interval_ = 0; }

void NameService::anti_entropy_tick() {
  if (anti_entropy_interval_ == 0) return;  // stopped while scheduled
  for (EntityId ctx : homes_.replicated_contexts()) publish_update(ctx);
  transport_.simulator().schedule_in(anti_entropy_interval_,
                                     [this] { anti_entropy_tick(); });
}

std::optional<std::uint64_t> NameService::replica_epoch(MachineId machine,
                                                        EntityId ctx) const {
  auto store = stores_.find(machine);
  if (store == stores_.end()) return std::nullopt;
  auto it = store->second.find(ctx);
  if (it == store->second.end()) return std::nullopt;
  return it->second.epoch;
}

bool NameService::note_duplicate(std::uint64_t corr) {
  if (!recent_corr_.insert(corr).second) return true;
  recent_corr_order_.push_back(corr);
  if (recent_corr_order_.size() > kDuplicateWindow) {
    recent_corr_.erase(recent_corr_order_.front());
    recent_corr_order_.pop_front();
  }
  return false;
}

void NameService::handle_update(EndpointId self, const Message& message) {
  const Payload& p = message.payload;
  if (p.size() < 3 || p.type_at(0) != FieldType::kU64 ||
      p.type_at(1) != FieldType::kU64 || p.type_at(2) != FieldType::kU64) {
    return;  // malformed
  }
  EntityId ctx(p.u64_at(0));
  const std::uint64_t epoch = p.u64_at(1);
  const std::uint64_t n = p.u64_at(2);
  if (n > (p.size() - 3) / 2 || p.size() != 3 + 2 * n) return;
  auto my_machine = net_.machine_of(self);
  if (!my_machine.is_ok()) return;
  // Only a secondary for this context applies pushes; anything else —
  // e.g. a push delayed across a replica-set change — is a stray.
  if (!homes_.is_replica(ctx, my_machine.value()) ||
      homes_.is_primary(ctx, my_machine.value())) {
    return;
  }
  Tracer& tracer = transport_.tracer();
  const SimTime now = transport_.simulator().now();
  auto& store = stores_[my_machine.value()];
  auto it = store.find(ctx);
  if (it != store.end() && epoch <= it->second.epoch) {
    // Apply-if-newer: re-deliveries and reordered pushes of an older
    // snapshot must never roll the store backwards.
    updates_stale_->inc();
    tracer.record(now, EventKind::kUpdateStale, 0, ctx.value(), epoch);
    return;
  }
  ReplicaState state;
  state.epoch = epoch;
  state.bindings.reserve(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    if (p.type_at(3 + 2 * j) != FieldType::kName ||
        p.type_at(4 + 2 * j) != FieldType::kU64) {
      return;  // malformed: apply nothing rather than half a snapshot
    }
    auto name = Name::make(p.name_at(3 + 2 * j));
    if (!name.is_ok()) return;
    state.bindings.push_back(
        Binding{name.value(), EntityId(p.u64_at(4 + 2 * j))});
  }
  store[ctx] = std::move(state);
  updates_applied_->inc();
  tracer.record(now, EventKind::kUpdateApply, 0, ctx.value(), epoch);
}

void NameService::handle_request(EndpointId self, const Message& message) {
  if (message.type != NsWire::kResolveRequest ||
      message.payload.size() < 3 ||
      message.payload.type_at(0) != FieldType::kU64 ||
      message.payload.type_at(1) != FieldType::kU64 ||
      message.payload.type_at(2) != FieldType::kName) {
    return;  // not ours / malformed
  }
  const std::uint64_t corr = message.payload.u64_at(0);
  EntityId ctx(message.payload.u64_at(1));
  const std::string& path = message.payload.name_at(2);

  Tracer& tracer = transport_.tracer();
  const SimTime now = transport_.simulator().now();

  // At-most-once accounting: a retransmission (same correlation id within
  // the window) is still answered — the original reply may have been lost —
  // but must not count as a second resolution in the stats.
  const bool duplicate = note_duplicate(corr);
  if (duplicate) {
    duplicates_->inc();
    tracer.record(now, EventKind::kServerDuplicate, corr, self.value());
  } else {
    requests_->inc();
  }
  tracer.record(now, EventKind::kServerHandle, corr, self.value(),
                ctx.value());
  auto count = [&](Counter* counter) {
    if (!duplicate) counter->inc();
  };

  auto my_machine = net_.machine_of(self);
  if (!my_machine.is_ok()) return;
  auto my_loc = net_.location_of(self);
  if (!my_loc.is_ok()) return;

  // Reply layout (protocol v3): the fixed v2 prefix [corr, disposition,
  // entity, remaining, error, next-server pid, authority-ctx, epoch]
  // followed by the authority's replica list [n, (server pid, machine) × n]
  // so clients can fail over without out-of-band topology knowledge. All
  // pids are in *this server's* context; the transport rebases them into
  // the receiver's context in flight (R(sender)). `authority` is the
  // context whose bindings the reply depends on; the epoch stamped is the
  // graph's current rebind epoch, or — when a secondary answered from its
  // replica store — the *snapshot's* epoch, so staleness is visible.
  auto send_reply = [&](std::uint64_t disposition, EntityId entity,
                        std::string remaining, std::string error,
                        Pid next_server, EntityId authority,
                        std::optional<std::uint64_t> epoch_override =
                            std::nullopt) {
    const EventKind kind = disposition == NsWire::kAnswer
                               ? EventKind::kServerAnswer
                               : disposition == NsWire::kReferral
                                     ? EventKind::kServerReferral
                                     : EventKind::kServerError;
    tracer.record(transport_.simulator().now(), kind, corr, self.value(),
                  entity.valid() ? entity.value() : 0);
    Message reply;
    reply.type = NsWire::kResolveReply;
    reply.trace_corr = corr;
    reply.payload.add_u64(corr);
    reply.payload.add_u64(disposition);
    reply.payload.add_u64(entity.valid() ? entity.value() : NsWire::kNoEntity);
    reply.payload.add_name(std::move(remaining));
    reply.payload.add_string(std::move(error));
    reply.payload.add_pid(next_server);
    const bool stamp =
        authority.valid() && graph_.is_context_object(authority);
    reply.payload.add_u64(stamp ? authority.value() : NsWire::kNoEntity);
    reply.payload.add_u64(stamp ? (epoch_override
                                       ? *epoch_override
                                       : graph_.rebind_epoch(authority))
                                : 0);
    std::vector<std::pair<Pid, std::uint64_t>> tail;
    if (stamp) {
      for (MachineId m : homes_.replicas_of(authority)) {
        auto sit = servers_.find(m);
        if (sit == servers_.end()) continue;
        auto loc = net_.location_of(sit->second);
        if (!loc.is_ok()) continue;
        tail.emplace_back(relativize(loc.value(), my_loc.value()),
                          m.value());
      }
    }
    reply.payload.add_u64(tail.size());
    for (auto& [pid, machine] : tail) {
      reply.payload.add_pid(pid);
      reply.payload.add_u64(machine);
    }
    (void)transport_.send(self, message.reply_to, std::move(reply));
  };
  auto send_error = [&](std::string error, EntityId authority = {},
                        std::optional<std::uint64_t> epoch_override =
                            std::nullopt) {
    count(failures_);
    send_reply(NsWire::kError, {}, "", std::move(error), Pid::self(),
               authority, epoch_override);
  };

  std::optional<CompoundName> parsed;
  NameSlice components;
  if (!path.empty()) {
    // Decode = intern: the text entered this node here; from now on the
    // walk is all atom compares.
    auto result = message.payload.compound_at(2);
    if (!result.is_ok()) {
      send_error(result.status().to_string());
      return;
    }
    parsed = std::move(result).value();
    components = parsed->slice();
  }

  // Zero components resolve to the start entity itself (the identity
  // resolution). This case must answer explicitly: falling through the
  // walk loop without a reply would strand the client through every retry
  // and surface as a bogus "message lost" error.
  if (components.empty()) {
    if (!graph_.contains(ctx)) {
      send_error("unknown start entity in empty-path request");
      return;
    }
    count(answers_);
    send_reply(NsWire::kAnswer, ctx, "", "", Pid::self(), ctx);
    return;
  }

  // Refer the client to the primary for `ctx` at component `i`.
  auto refer_to_primary = [&](MachineId primary, std::size_t i) {
    auto next_server = server_on(primary);
    if (!next_server.is_ok()) {
      send_error("authoritative machine has no name server");
      return;
    }
    auto next_loc = net_.location_of(next_server.value());
    if (!next_loc.is_ok()) {
      send_error("authoritative server endpoint is dead");
      return;
    }
    count(referrals_);
    send_reply(NsWire::kReferral, ctx, components.subslice(i).joined(), "",
               relativize(next_loc.value(), my_loc.value()), ctx);
  };

  // Walk while the current context is replicated here; refer onward
  // otherwise. The primary serves straight from the naming graph; a
  // secondary serves from the last snapshot it applied (stamping the
  // snapshot's epoch), or refers to the primary if it never synced.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!graph_.is_context_object(ctx)) {
      send_error("NOT_A_CONTEXT at '" + components[i].text() + "'");
      return;
    }
    auto replicas = homes_.replicas_of(ctx);
    if (replicas.empty()) {
      send_error("context has no authoritative home");
      return;
    }
    if (!homes_.is_replica(ctx, my_machine.value())) {
      refer_to_primary(replicas.front(), i);
      return;
    }
    Result<EntityId> next = not_found_error("unresolved");
    std::optional<std::uint64_t> store_epoch;
    if (homes_.is_primary(ctx, my_machine.value())) {
      next = graph_.lookup(ctx, components[i]);
    } else {
      const ReplicaState* state = nullptr;
      auto sit = stores_.find(my_machine.value());
      if (sit != stores_.end()) {
        auto cit = sit->second.find(ctx);
        if (cit != sit->second.end()) state = &cit->second;
      }
      if (state == nullptr) {
        // Never synced: answering from nothing would turn "no snapshot
        // yet" into a spurious NOT_FOUND. Refer to the primary instead.
        refer_to_primary(replicas.front(), i);
        return;
      }
      store_epoch = state->epoch;
      next = not_found_error("NOT_FOUND: no binding for '" +
                             components[i].text() + "'");
      for (const Binding& b : state->bindings) {
        if (b.name == components[i]) {
          next = b.entity;
          break;
        }
      }
    }
    if (!next.is_ok()) {
      if (store_epoch) {
        count(store_answers_);
        tracer.record(transport_.simulator().now(), EventKind::kStoreAnswer,
                      corr, ctx.value(), *store_epoch);
      }
      // Stamp the context where the lookup failed so negative cache
      // entries are invalidated when it is rebound.
      send_error(next.status().to_string(), ctx, store_epoch);
      return;
    }
    if (i + 1 == components.size()) {
      count(answers_);
      if (store_epoch) {
        count(store_answers_);
        tracer.record(transport_.simulator().now(), EventKind::kStoreAnswer,
                      corr, ctx.value(), *store_epoch);
      }
      send_reply(NsWire::kAnswer, next.value(), "", "", Pid::self(), ctx,
                 store_epoch);
      return;
    }
    ctx = next.value();
  }
  // Defensive: every branch above replies. Never exit silently — silence
  // costs the client its full retry budget.
  send_error("internal: request fell through the resolution walk");
}

ResolverClient::ResolverClient(const NamingGraph& graph, Internetwork& net,
                               Transport& transport, Simulator& sim,
                               const NameService& service, MachineId machine,
                               std::string label,
                               ResolverClientConfig config)
    : graph_(graph),
      net_(net),
      transport_(transport),
      sim_(sim),
      service_(service),
      endpoint_(net.add_endpoint(machine, std::move(label))),
      config_(config),
      client_machine_(machine) {
  // Per-client counter names: several clients can share one transport (and
  // hence one registry), so the endpoint id keeps their metrics apart.
  MetricsRegistry& metrics = transport_.metrics();
  const std::string prefix =
      "ns.client." + std::to_string(endpoint_.value()) + ".";
  resolutions_ = &metrics.counter(prefix + "resolutions");
  messages_sent_ = &metrics.counter(prefix + "messages_sent");
  referrals_followed_ = &metrics.counter(prefix + "referrals_followed");
  cache_hits_ = &metrics.counter(prefix + "cache_hits");
  cache_misses_ = &metrics.counter(prefix + "cache_misses");
  failures_ = &metrics.counter(prefix + "failures");
  evictions_ = &metrics.counter(prefix + "evictions");
  negative_hits_ = &metrics.counter(prefix + "negative_hits");
  stale_epoch_drops_ = &metrics.counter(prefix + "stale_epoch_drops");
  timeouts_ = &metrics.counter(prefix + "timeouts");
  backoff_retries_ = &metrics.counter(prefix + "backoff_retries");
  stale_replies_dropped_ = &metrics.counter(prefix + "stale_replies_dropped");
  failovers_ = &metrics.counter(prefix + "failovers");
  // Ticks from a hop's first send to its first reply, recorded only when
  // the hop failed over; buckets sized for timeout-dominated latencies.
  failover_latency_ = &metrics.histogram(
      prefix + "failover_latency",
      {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000});
  // Correlation ids are unique per client *and* per attempt: the endpoint
  // id seeds the high bits so two clients never share an id space (the
  // server's duplicate window is keyed by raw correlation id).
  next_corr_ = ((endpoint_.value() + 1) << 32) | 1;
  transport_.set_handler(
      endpoint_, [this](EndpointId, const Message& message) {
        if (message.type != NsWire::kResolveReply ||
            message.payload.size() < 8 ||
            message.payload.type_at(0) != FieldType::kU64 ||
            message.payload.type_at(1) != FieldType::kU64 ||
            message.payload.type_at(2) != FieldType::kU64 ||
            message.payload.type_at(3) != FieldType::kName ||
            message.payload.type_at(4) != FieldType::kString ||
            message.payload.type_at(5) != FieldType::kPid ||
            message.payload.type_at(6) != FieldType::kU64 ||
            message.payload.type_at(7) != FieldType::kU64) {
          return;
        }
        if (!awaiting_reply_ ||
            message.payload.u64_at(0) != expected_corr_) {
          // A delayed duplicate from an earlier attempt or referral hop
          // (or a reply when nothing is outstanding). Accepting it would
          // resolve the wrong question.
          stale_replies_dropped_->inc();
          transport_.tracer().record(sim_.now(),
                                     EventKind::kStaleReplyDropped,
                                     message.payload.u64_at(0),
                                     endpoint_.value());
          return;
        }
        awaiting_reply_ = false;
        reply_received_ = true;
        reply_disposition_ = message.payload.u64_at(1);
        std::uint64_t raw = message.payload.u64_at(2);
        reply_entity_ =
            raw == NsWire::kNoEntity ? EntityId::invalid() : EntityId(raw);
        reply_remaining_ = message.payload.name_at(3);
        reply_error_ = message.payload.string_at(4);
        reply_next_server_ = message.payload.pid_at(5);
        std::uint64_t auth = message.payload.u64_at(6);
        reply_authority_ =
            auth == NsWire::kNoEntity ? EntityId::invalid() : EntityId(auth);
        reply_epoch_ = message.payload.u64_at(7);
        // Protocol v3 tail: the authority's replica set. A v2 peer stops
        // at field 8; a malformed tail is ignored rather than trusted.
        reply_replicas_.clear();
        const std::size_t fields = message.payload.size();
        if (fields > 8 && message.payload.type_at(8) == FieldType::kU64) {
          const std::uint64_t n = message.payload.u64_at(8);
          if (n <= (fields - 9) / 2 && fields == 9 + 2 * n) {
            bool well_formed = true;
            for (std::uint64_t j = 0; j < n && well_formed; ++j) {
              well_formed =
                  message.payload.type_at(9 + 2 * j) == FieldType::kPid &&
                  message.payload.type_at(10 + 2 * j) == FieldType::kU64;
            }
            if (well_formed) {
              for (std::uint64_t j = 0; j < n; ++j) {
                const std::uint64_t m = message.payload.u64_at(10 + 2 * j);
                reply_replicas_.push_back(ReplicaRef{
                    message.payload.pid_at(9 + 2 * j),
                    m == NsWire::kNoMachine ? MachineId::invalid()
                                            : MachineId(m)});
              }
            }
          }
        }
      });
}

ResolverClient::~ResolverClient() {
  transport_.clear_handler(endpoint_);
  (void)net_.remove_endpoint(endpoint_);
}

ResolverClientStats ResolverClient::stats() const {
  ResolverClientStats s;
  s.resolutions = resolutions_->value();
  s.messages_sent = messages_sent_->value();
  s.referrals_followed = referrals_followed_->value();
  s.cache_hits = cache_hits_->value();
  s.cache_misses = cache_misses_->value();
  s.failures = failures_->value();
  s.evictions = evictions_->value();
  s.negative_hits = negative_hits_->value();
  s.stale_epoch_drops = stale_epoch_drops_->value();
  s.timeouts = timeouts_->value();
  s.backoff_retries = backoff_retries_->value();
  s.stale_replies_dropped = stale_replies_dropped_->value();
  s.failovers = failovers_->value();
  return s;
}

const ResolverClient::CacheEntry* ResolverClient::cache_lookup(
    const CacheKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  CacheEntry& entry = it->second;
  // Expiry at the exact boundary counts: an entry stamped `expires == now`
  // has lived its full TTL.
  if (entry.expires <= sim_.now()) {
    lru_.erase(entry.lru);
    cache_.erase(it);
    return nullptr;
  }
  if (config_.epoch_invalidation && entry.authority.valid()) {
    auto seen = epochs_seen_.find(entry.authority);
    if (seen != epochs_seen_.end() && seen->second > entry.epoch) {
      stale_epoch_drops_->inc();
      transport_.tracer().record_in_span(active_span_, sim_.now(),
                                         EventKind::kStaleEpochDrop,
                                         entry.authority.value(), entry.epoch);
      lru_.erase(entry.lru);
      cache_.erase(it);
      return nullptr;
    }
  }
  lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
  return &entry;
}

void ResolverClient::cache_insert(const CacheKey& key, CacheEntry entry) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    entry.lru = it->second.lru;
    lru_.splice(lru_.begin(), lru_, entry.lru);
    it->second = std::move(entry);
    return;
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  cache_.emplace(key, std::move(entry));
  if (config_.cache_capacity > 0 && cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    evictions_->inc();
  }
}

void ResolverClient::note_epoch(EntityId authority, std::uint64_t epoch) {
  if (!authority.valid()) return;
  auto [it, inserted] = epochs_seen_.try_emplace(authority, epoch);
  if (!inserted && it->second < epoch) it->second = epoch;
}

bool ResolverClient::is_suspect(MachineId machine) const {
  if (!machine.valid()) return false;
  auto it = suspect_until_.find(machine);
  return it != suspect_until_.end() && it->second > sim_.now();
}

std::vector<ResolverClient::ReplicaRef> ResolverClient::candidates_for(
    EntityId ctx, const ReplicaRef& via) const {
  std::vector<ReplicaRef> out{via};
  auto my_loc = net_.location_of(endpoint_);
  if (!my_loc.is_ok()) return out;
  for (MachineId m : service_.authorities().replicas_of(ctx)) {
    if (via.machine.valid() && m == via.machine) continue;
    auto server = service_.server_on(m);
    if (!server.is_ok()) continue;
    auto loc = net_.location_of(server.value());
    if (!loc.is_ok()) continue;
    out.push_back(ReplicaRef{relativize(loc.value(), my_loc.value()), m});
  }
  return out;
}

Status ResolverClient::round_trip(std::span<const ReplicaRef> candidates,
                                  EntityId start, const std::string& path) {
  NAMECOH_CHECK(!candidates.empty(), "round_trip with no candidates");
  Tracer& tracer = transport_.tracer();

  // One full timeout/backoff budget against a single server.
  auto attempt_server = [&](const Pid& server) -> Status {
    SimDuration timeout = std::max<SimDuration>(1, config_.request_timeout);
    for (std::size_t attempt = 0; attempt <= config_.retries; ++attempt) {
      Message request;
      request.type = NsWire::kResolveRequest;
      expected_corr_ = next_corr_++;
      // Each attempt gets a fresh correlation id; bind it to the span
      // before the request leaves so the transport's send/drop/deliver
      // events — and the server's handling of this very id — attach to
      // this resolution.
      tracer.bind_corr(active_span_, expected_corr_);
      request.trace_corr = expected_corr_;
      if (attempt > 0) {
        backoff_retries_->inc();
        tracer.record_in_span(active_span_, sim_.now(),
                              EventKind::kBackoffRetry, attempt, timeout);
      }
      request.payload.add_u64(expected_corr_);
      request.payload.add_u64(start.value());
      request.payload.add_name(path);
      reply_received_ = false;
      awaiting_reply_ = true;
      messages_sent_->inc();
      Status sent = transport_.send(endpoint_, server, request);
      if (!sent.is_ok()) {
        awaiting_reply_ = false;
        return sent;  // hard failure: no point retrying
      }
      // Drive the simulator up to this attempt's deadline; stop early when
      // our reply lands. Events past the deadline stay queued — they
      // belong to the future, and firing them would let a reply slower
      // than the timeout still win. Delayed replies from earlier attempts
      // carry old correlation ids and are dropped by the handler.
      const SimTime deadline = sim_.now() + timeout;
      while (!reply_received_) {
        auto next = sim_.next_event_time();
        if (!next || *next > deadline) break;
        sim_.run(1);
      }
      if (reply_received_) return Status::ok();
      // Silence: the request or the reply was lost (or is slower than the
      // timeout). Let the rest of the window elapse on the shared clock,
      // back off, and resend.
      awaiting_reply_ = false;
      timeouts_->inc();
      tracer.record_in_span(active_span_, sim_.now(), EventKind::kTimeout,
                            expected_corr_, timeout);
      sim_.run_until(deadline);
      auto scaled = static_cast<SimDuration>(
          static_cast<double>(timeout) *
          std::max(1.0, config_.backoff_multiplier));
      timeout = config_.max_timeout > 0
                    ? std::min(scaled, config_.max_timeout)
                    : scaled;
    }
    return unreachable_error("no reply from name server after " +
                             std::to_string(config_.retries + 1) +
                             " attempt(s) (message lost or too slow)");
  };

  // Preference order: live replicas first (stable within each class), then
  // quarantined ones as a last resort — a suspect replica is still better
  // than failing the hop outright.
  std::vector<const ReplicaRef*> order;
  order.reserve(candidates.size());
  for (const ReplicaRef& r : candidates) {
    if (!is_suspect(r.machine)) order.push_back(&r);
  }
  for (const ReplicaRef& r : candidates) {
    if (is_suspect(r.machine)) order.push_back(&r);
  }

  const SimTime hop_begin = sim_.now();
  bool failed_over = false;
  Status last = unreachable_error("no reachable replica for this hop");
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) {
      // The previous candidate exhausted its whole backoff budget: fail
      // over. Each candidate starts from the base timeout again.
      failed_over = true;
      failovers_->inc();
      const ReplicaRef* prev = order[i - 1];
      tracer.record_in_span(
          active_span_, sim_.now(), EventKind::kFailover,
          prev->machine.valid() ? prev->machine.value() : 0,
          order[i]->machine.valid() ? order[i]->machine.value() : 0);
    }
    Status result = attempt_server(order[i]->pid);
    if (result.is_ok()) {
      if (order[i]->machine.valid()) {
        suspect_until_.erase(order[i]->machine);
      }
      if (failed_over) {
        failover_latency_->add(static_cast<double>(sim_.now() - hop_begin));
      }
      return result;
    }
    last = result;
    if (order[i]->machine.valid()) {
      suspect_until_[order[i]->machine] =
          sim_.now() + config_.replica_quarantine;
    }
  }
  return last;
}

Result<EntityId> ResolverClient::resolve(EntityId start,
                                         const CompoundName& name) {
  Tracer& tracer = transport_.tracer();
  // The span (and the path string it labels) exists only when tracing is
  // on; the disabled path costs one branch.
  if (tracer.enabled()) {
    active_span_ = tracer.open_span(sim_.now(), start.value(), name.to_path());
  }
  auto result = resolve_inner(start, name);
  if (active_span_ != 0) {
    tracer.close_span(active_span_, sim_.now(), result.is_ok());
    active_span_ = 0;
  }
  return result;
}

Result<EntityId> ResolverClient::resolve_inner(EntityId start,
                                               const CompoundName& name) {
  Tracer& tracer = transport_.tracer();
  resolutions_->inc();
  if (name.front().is_root()) {
    failures_->inc();
    return invalid_argument_error(
        "remote resolution takes names relative to a context object; "
        "resolve the root binding locally first");
  }

  CacheKey key{start, name};
  const bool use_cache =
      config_.cache_ttl > 0 || config_.negative_cache_ttl > 0;
  if (use_cache) {
    if (const CacheEntry* hit = cache_lookup(key)) {
      if (hit->negative) {
        negative_hits_->inc();
        failures_->inc();
        tracer.record_in_span(active_span_, sim_.now(),
                              EventKind::kNegativeHit, start.value());
        return not_found_error(hit->error);
      }
      cache_hits_->inc();
      tracer.record_in_span(active_span_, sim_.now(), EventKind::kCacheHit,
                            start.value(), hit->entity.value());
      return hit->entity;
    }
    cache_misses_->inc();
    tracer.record_in_span(active_span_, sim_.now(), EventKind::kCacheMiss,
                          start.value());
  }

  // First hop: this machine's own server (DNS-style "local recursive"),
  // then — should it stay silent — the rest of the start context's replica
  // set, straight from the authority map (the client's bootstrap
  // knowledge; later hops learn their candidates from reply replica
  // lists).
  auto local_server = service_.server_on(client_machine_);
  if (!local_server.is_ok()) {
    failures_->inc();
    return local_server.status();
  }
  auto my_loc = net_.location_of(endpoint_);
  auto server_loc = net_.location_of(local_server.value());
  if (!my_loc.is_ok() || !server_loc.is_ok()) {
    failures_->inc();
    return unreachable_error("client or server endpoint is dead");
  }
  std::vector<ReplicaRef> candidates = candidates_for(
      start, ReplicaRef{relativize(server_loc.value(), my_loc.value()),
                        client_machine_});

  EntityId current = start;
  // The unresolved tail is a borrowed slice of the caller's name; each
  // referral narrows it in place (after verifying the server's remaining
  // text really is a suffix), so no per-hop name copies are made. The text
  // for the wire is rendered from the slice only when a hop is actually
  // sent — the cache-hit path above never renders at all.
  NameSlice remaining = name;
  std::string hop_text = name.to_path();
  for (std::size_t chase = 0; chase <= config_.max_referrals; ++chase) {
    Status rt = round_trip(candidates, current, hop_text);
    if (!rt.is_ok()) {
      failures_->inc();
      return rt;
    }
    // Every reply carries the authoritative context's rebind epoch; track
    // the high-water mark so superseded cache entries die on next lookup.
    note_epoch(reply_authority_, reply_epoch_);
    switch (reply_disposition_) {
      case NsWire::kAnswer:
        if (config_.cache_ttl > 0) {
          cache_insert(key, CacheEntry{reply_entity_,
                                       sim_.now() + config_.cache_ttl,
                                       reply_authority_, reply_epoch_,
                                       /*negative=*/false, "", {}});
        }
        return reply_entity_;
      case NsWire::kError:
        failures_->inc();
        if (config_.negative_cache_ttl > 0) {
          cache_insert(key,
                       CacheEntry{EntityId::invalid(),
                                  sim_.now() + config_.negative_cache_ttl,
                                  reply_authority_, reply_epoch_,
                                  /*negative=*/true, reply_error_, {}});
        }
        return not_found_error(reply_error_);
      case NsWire::kReferral: {
        auto suffix = referral_suffix(remaining, reply_remaining_);
        if (!suffix) {
          // The server handed back a remaining path that is not a suffix
          // of what we asked it to resolve. Forwarding it would resolve a
          // name the caller never named; fail instead.
          failures_->inc();
          return internal_error("referral remaining path '" +
                                reply_remaining_ +
                                "' is not a suffix of the request");
        }
        referrals_followed_->inc();
        tracer.record_in_span(active_span_, sim_.now(),
                              EventKind::kReferralFollowed,
                              reply_entity_.valid() ? reply_entity_.value()
                                                    : 0);
        current = reply_entity_;
        remaining = *suffix;
        hop_text = remaining.joined();
        // The next hop's candidates are the referred-to context's replica
        // set from the reply tail (pids already rebased by the
        // transport); a v2 peer sends no tail, leaving the single
        // referral target.
        if (!reply_replicas_.empty()) {
          candidates.assign(reply_replicas_.begin(), reply_replicas_.end());
        } else {
          candidates.assign(
              1, ReplicaRef{reply_next_server_, MachineId::invalid()});
        }
        break;
      }
      default:
        failures_->inc();
        return internal_error("unknown reply disposition");
    }
  }
  failures_->inc();
  return depth_exceeded_error("referral chase exceeded limit");
}

}  // namespace namecoh
