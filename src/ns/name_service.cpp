#include "ns/name_service.hpp"

#include <deque>

#include "util/strings.hpp"

namespace namecoh {
namespace {

std::string encode_components(std::span<const Name> components) {
  std::string out;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i > 0) out += '/';
    out += components[i].text();
  }
  return out;
}

}  // namespace

void HomeMap::set_home(EntityId ctx, MachineId machine) {
  NAMECOH_CHECK(ctx.valid() && machine.valid(), "invalid home assignment");
  homes_[ctx] = machine;
}

void HomeMap::set_home_subtree(const NamingGraph& graph, EntityId root,
                               MachineId machine) {
  NAMECOH_CHECK(graph.is_context_object(root),
                "set_home_subtree: root is not a context object");
  std::deque<EntityId> frontier{root};
  homes_.try_emplace(root, machine);
  while (!frontier.empty()) {
    EntityId ctx = frontier.front();
    frontier.pop_front();
    if (homes_.at(ctx) != machine) continue;  // foreign authority: stop
    for (const auto& [name, target] : graph.context(ctx).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (graph.is_context_object(target) &&
          homes_.try_emplace(target, machine).second) {
        frontier.push_back(target);
      }
    }
  }
}

Result<MachineId> HomeMap::home_of(EntityId ctx) const {
  auto it = homes_.find(ctx);
  if (it == homes_.end()) {
    return not_found_error("context has no authoritative home");
  }
  return it->second;
}

bool HomeMap::has_home(EntityId ctx) const { return homes_.contains(ctx); }

NameService::NameService(const NamingGraph& graph, Internetwork& net,
                         Transport& transport, const HomeMap& homes)
    : graph_(graph), net_(net), transport_(transport), homes_(homes) {}

EndpointId NameService::add_server(MachineId machine) {
  NAMECOH_CHECK(!servers_.contains(machine),
                "machine already has a name server");
  EndpointId server = net_.add_endpoint(machine, "nameserver");
  servers_[machine] = server;
  transport_.set_handler(server,
                         [this](EndpointId self, const Message& message) {
                           handle_request(self, message);
                         });
  return server;
}

Result<EndpointId> NameService::server_on(MachineId machine) const {
  auto it = servers_.find(machine);
  if (it == servers_.end()) {
    return unreachable_error("no name server on machine");
  }
  return it->second;
}

void NameService::handle_request(EndpointId self, const Message& message) {
  if (message.type != NsWire::kResolveRequest ||
      message.payload.size() < 2 ||
      message.payload.type_at(0) != FieldType::kU64 ||
      message.payload.type_at(1) != FieldType::kName) {
    return;  // not ours / malformed
  }
  ++stats_.requests;
  EntityId ctx(message.payload.u64_at(0));
  const std::string& path = message.payload.name_at(1);

  // Reply layout (fixed): [disposition, entity, remaining, error,
  // next-server pid]. The pid is in *this server's* context; the transport
  // rebases it into the receiver's context in flight (R(sender)).
  auto send_reply = [&](std::uint64_t disposition, EntityId entity,
                        std::string remaining, std::string error,
                        Pid next_server) {
    Message reply;
    reply.type = NsWire::kResolveReply;
    reply.payload.add_u64(disposition);
    reply.payload.add_u64(entity.valid() ? entity.value() : ~0ULL);
    reply.payload.add_name(std::move(remaining));
    reply.payload.add_string(std::move(error));
    reply.payload.add_pid(next_server);
    (void)transport_.send(self, message.reply_to, std::move(reply));
  };
  auto send_error = [&](std::string error) {
    ++stats_.failures;
    send_reply(NsWire::kError, {}, "", std::move(error), Pid::self());
  };

  auto my_machine = net_.machine_of(self);
  if (!my_machine.is_ok()) return;
  auto my_loc = net_.location_of(self);
  if (!my_loc.is_ok()) return;

  auto parsed = CompoundName::parse_relative(path);
  if (!parsed.is_ok()) {
    send_error(parsed.status().to_string());
    return;
  }
  std::span<const Name> components = parsed.value().components();

  // Walk while the current context is homed here; refer onward otherwise.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!graph_.is_context_object(ctx)) {
      send_error("NOT_A_CONTEXT at '" + components[i].text() + "'");
      return;
    }
    auto home = homes_.home_of(ctx);
    if (!home.is_ok()) {
      send_error("context has no authoritative home");
      return;
    }
    if (home.value() != my_machine.value()) {
      auto next_server = server_on(home.value());
      if (!next_server.is_ok()) {
        send_error("authoritative machine has no name server");
        return;
      }
      auto next_loc = net_.location_of(next_server.value());
      if (!next_loc.is_ok()) {
        send_error("authoritative server endpoint is dead");
        return;
      }
      ++stats_.referrals;
      send_reply(NsWire::kReferral, ctx,
                 encode_components(components.subspan(i)), "",
                 relativize(next_loc.value(), my_loc.value()));
      return;
    }
    auto next = graph_.lookup(ctx, components[i]);
    if (!next.is_ok()) {
      send_error(next.status().to_string());
      return;
    }
    if (i + 1 == components.size()) {
      ++stats_.answers;
      send_reply(NsWire::kAnswer, next.value(), "", "", Pid::self());
      return;
    }
    ctx = next.value();
  }
}

ResolverClient::ResolverClient(const NamingGraph& graph, Internetwork& net,
                               Transport& transport, Simulator& sim,
                               const NameService& service, MachineId machine,
                               std::string label,
                               ResolverClientConfig config)
    : graph_(graph),
      net_(net),
      transport_(transport),
      sim_(sim),
      service_(service),
      endpoint_(net.add_endpoint(machine, std::move(label))),
      config_(config) {
  transport_.set_handler(
      endpoint_, [this](EndpointId, const Message& message) {
        if (message.type != NsWire::kResolveReply ||
            message.payload.size() < 5 ||
            message.payload.type_at(0) != FieldType::kU64 ||
            message.payload.type_at(1) != FieldType::kU64 ||
            message.payload.type_at(2) != FieldType::kName ||
            message.payload.type_at(3) != FieldType::kString ||
            message.payload.type_at(4) != FieldType::kPid) {
          return;
        }
        reply_received_ = true;
        reply_disposition_ = message.payload.u64_at(0);
        std::uint64_t raw = message.payload.u64_at(1);
        reply_entity_ = raw == ~0ULL ? EntityId::invalid() : EntityId(raw);
        reply_remaining_ = message.payload.name_at(2);
        reply_error_ = message.payload.string_at(3);
        reply_next_server_ = message.payload.pid_at(4);
      });
}

ResolverClient::~ResolverClient() {
  transport_.clear_handler(endpoint_);
  (void)net_.remove_endpoint(endpoint_);
}

Status ResolverClient::round_trip(const Pid& server, EntityId start,
                                  const std::string& path) {
  for (std::size_t attempt = 0; attempt <= config_.retries; ++attempt) {
    Message request;
    request.type = NsWire::kResolveRequest;
    request.payload.add_u64(start.value());
    request.payload.add_name(path);
    reply_received_ = false;
    ++stats_.messages_sent;
    Status sent = transport_.send(endpoint_, server, request);
    if (!sent.is_ok()) return sent;  // hard failure: no point retrying
    // Drive the simulator until our reply lands (single outstanding
    // request; other traffic may interleave but cannot consume our reply).
    while (!reply_received_ && sim_.pending() > 0) {
      sim_.run(1);
    }
    if (reply_received_) return Status::ok();
    // Silence: the request or the reply was dropped. Try again.
  }
  return unreachable_error("no reply from name server (message lost)");
}

Result<EntityId> ResolverClient::resolve(EntityId start,
                                         const CompoundName& name) {
  ++stats_.resolutions;
  if (name.front().is_root()) {
    ++stats_.failures;
    return invalid_argument_error(
        "remote resolution takes names relative to a context object; "
        "resolve the root binding locally first");
  }
  std::string path = name.to_path();

  CacheKey key{start, path};
  if (config_.cache_ttl > 0) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (it->second.expires > sim_.now()) {
        ++stats_.cache_hits;
        return it->second.entity;
      }
      cache_.erase(it);
    }
    ++stats_.cache_misses;
  }

  // First hop: this machine's own server (DNS-style "local recursive").
  auto my_machine = net_.machine_of(endpoint_);
  if (!my_machine.is_ok()) {
    ++stats_.failures;
    return my_machine.status();
  }
  auto local_server = service_.server_on(my_machine.value());
  if (!local_server.is_ok()) {
    ++stats_.failures;
    return local_server.status();
  }
  auto my_loc = net_.location_of(endpoint_);
  auto server_loc = net_.location_of(local_server.value());
  if (!my_loc.is_ok() || !server_loc.is_ok()) {
    ++stats_.failures;
    return unreachable_error("client or server endpoint is dead");
  }
  Pid server_pid = relativize(server_loc.value(), my_loc.value());

  EntityId current = start;
  std::string remaining = path;
  for (std::size_t chase = 0; chase <= config_.max_referrals; ++chase) {
    Status rt = round_trip(server_pid, current, remaining);
    if (!rt.is_ok()) {
      ++stats_.failures;
      return rt;
    }
    switch (reply_disposition_) {
      case NsWire::kAnswer:
        if (config_.cache_ttl > 0) {
          cache_[key] =
              CacheEntry{reply_entity_, sim_.now() + config_.cache_ttl};
        }
        return reply_entity_;
      case NsWire::kError:
        ++stats_.failures;
        return not_found_error(reply_error_);
      case NsWire::kReferral:
        ++stats_.referrals_followed;
        current = reply_entity_;
        remaining = reply_remaining_;
        server_pid = reply_next_server_;  // already rebased by the transport
        break;
      default:
        ++stats_.failures;
        return internal_error("unknown reply disposition");
    }
  }
  ++stats_.failures;
  return depth_exceeded_error("referral chase exceeded limit");
}

}  // namespace namecoh
