#include "ns/name_service.hpp"

#include <algorithm>
#include <utility>

#include "ns/membership.hpp"
#include "util/strings.hpp"

namespace namecoh {

std::optional<NameSlice> referral_suffix(NameSlice sent,
                                         std::string_view remaining) {
  if (remaining.empty()) return sent.subslice(sent.size());
  // Count components first so the candidate suffix is known before any
  // text is compared.
  std::size_t count = 1;
  for (char c : remaining) {
    if (c == '/') ++count;
  }
  if (count > sent.size()) return std::nullopt;
  const NameSlice candidate = sent.subslice(sent.size() - count);
  std::size_t start = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t slash = remaining.find('/', start);
    const std::string_view piece =
        slash == std::string_view::npos
            ? remaining.substr(start)
            : remaining.substr(start, slash - start);
    if (piece != candidate[i].text()) return std::nullopt;
    start = slash + 1;
  }
  return candidate;
}

ReplyTail parse_reply_tail(const Payload& payload, std::size_t offset,
                           bool expect_lease, bool expect_glue) {
  ReplyTail tail;
  const std::size_t fields = payload.size();
  std::size_t cursor = offset;
  // A v2 peer stops at the fixed fields: no tail is a valid (empty) tail.
  if (cursor >= fields) {
    tail.valid = true;
    return tail;
  }
  auto u64_field = [&](std::uint64_t* out) {
    if (cursor >= fields || payload.type_at(cursor) != FieldType::kU64) {
      return false;
    }
    *out = payload.u64_at(cursor++);
    return true;
  };
  auto server_list = [&](std::uint64_t count,
                         std::vector<ReplyTail::Server>* out) {
    if (count > (fields - cursor) / 2) return false;  // would overrun
    for (std::uint64_t j = 0; j < count; ++j) {
      if (payload.type_at(cursor) != FieldType::kPid ||
          payload.type_at(cursor + 1) != FieldType::kU64) {
        return false;
      }
      ReplyTail::Server server;
      server.pid = payload.pid_at(cursor);
      server.machine = payload.u64_at(cursor + 1);
      out->push_back(std::move(server));
      cursor += 2;
    }
    return true;
  };
  // Replica tail (v3): [n, (pid, machine) × n].
  std::uint64_t n = 0;
  if (!u64_field(&n) || !server_list(n, &tail.replicas)) return tail;
  // Lease tail (v4): [duration, id] — optional even when negotiated, so a
  // v3 server's replies still parse. Consumed greedily; a tail that was
  // really something else fails the exact-consumption check below and the
  // whole parse is discarded, never half-trusted.
  if (expect_lease && fields - cursor >= 2 &&
      payload.type_at(cursor) == FieldType::kU64 &&
      payload.type_at(cursor + 1) == FieldType::kU64) {
    tail.lease_duration = payload.u64_at(cursor);
    tail.lease_id = payload.u64_at(cursor + 1);
    cursor += 2;
  }
  // Glue tail (v5): [g, (ctx, shard, r, (pid, machine) × r) × g] —
  // likewise optional when negotiated (pre-v5 servers send none).
  if (expect_glue && cursor < fields) {
    std::uint64_t g = 0;
    if (!u64_field(&g)) return tail;
    for (std::uint64_t j = 0; j < g; ++j) {
      ReplyTail::Glue glue;
      std::uint64_t r = 0;
      if (!u64_field(&glue.ctx) || !u64_field(&glue.shard) ||
          !u64_field(&r) || !server_list(r, &glue.servers)) {
        tail = ReplyTail();  // discard everything, not half a tail
        return tail;
      }
      tail.glue.push_back(std::move(glue));
    }
  }
  // Strict: every remaining field must have been consumed. Leftovers mean
  // a layout this parser does not understand — ignore the whole tail, the
  // same posture every earlier protocol rev took toward newer tails.
  if (cursor != fields) {
    tail = ReplyTail();
    return tail;
  }
  tail.valid = true;
  return tail;
}

void AuthorityMap::set_home(EntityId ctx, MachineId machine) {
  NAMECOH_CHECK(ctx.valid() && machine.valid(), "invalid home assignment");
  homes_[ctx] = {machine};
}

void AuthorityMap::set_replicas(EntityId ctx,
                                std::vector<MachineId> replicas) {
  NAMECOH_CHECK(ctx.valid() && !replicas.empty(),
                "invalid replica assignment");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    NAMECOH_CHECK(replicas[i].valid(), "invalid replica machine");
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      NAMECOH_CHECK(replicas[i] != replicas[j], "duplicate replica machine");
    }
  }
  homes_[ctx] = std::move(replicas);
}

void AuthorityMap::set_home_subtree(const NamingGraph& graph, EntityId root,
                                    MachineId machine) {
  set_replicas_subtree(graph, root, {machine});
}

void AuthorityMap::set_replicas_subtree(const NamingGraph& graph,
                                        EntityId root,
                                        std::vector<MachineId> replicas) {
  NAMECOH_CHECK(graph.is_context_object(root),
                "set_replicas_subtree: root is not a context object");
  NAMECOH_CHECK(!replicas.empty(), "empty replica set");
  // The root is always re-assigned, per the contract; a silent no-op when
  // it already belonged to another authority would leave the caller with a
  // partitioned map and no error. Descendants with a foreign authority are
  // left alone (shared subtrees keep their own).
  homes_.insert_or_assign(root, replicas);
  std::deque<EntityId> frontier{root};
  while (!frontier.empty()) {
    EntityId ctx = frontier.front();
    frontier.pop_front();
    if (homes_.at(ctx) != replicas) continue;  // foreign authority: stop
    for (const auto& [name, target] : graph.context(ctx).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (!graph.is_context_object(target)) continue;
      // Shard-owned descendants keep their shard, symmetric with
      // install_delegation stopping at explicit homes.
      if (shard_of(target) != kNoShard) continue;
      if (homes_.try_emplace(target, replicas).second) {
        frontier.push_back(target);
      }
    }
  }
}

ShardId AuthorityMap::add_shard(std::vector<MachineId> replicas) {
  NAMECOH_CHECK(!replicas.empty(), "empty shard replica set");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    NAMECOH_CHECK(replicas[i].valid(), "invalid shard replica machine");
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      NAMECOH_CHECK(replicas[i] != replicas[j],
                    "duplicate shard replica machine");
    }
  }
  shards_.push_back(std::move(replicas));
  delegates_of_.emplace_back();
  return static_cast<ShardId>(shards_.size() - 1);
}

std::span<const MachineId> AuthorityMap::shard_replicas(ShardId shard) const {
  if (shard >= shards_.size()) return {};
  return shards_[shard];
}

ShardId AuthorityMap::shard_of(EntityId ctx) const {
  if (!ctx.valid() || ctx.value() >= shard_of_.size()) return kNoShard;
  return shard_of_[ctx.value()];
}

void AuthorityMap::assign_shard(EntityId ctx, ShardId shard) {
  if (ctx.value() >= shard_of_.size()) {
    shard_of_.resize(ctx.value() + 1, kNoShard);
  }
  shard_of_[ctx.value()] = shard;
}

bool AuthorityMap::delegation_reaches(ShardId from, ShardId to) const {
  if (from == to) return true;
  std::vector<bool> visited(shards_.size(), false);
  std::vector<ShardId> stack{from};
  visited[from] = true;
  while (!stack.empty()) {
    const ShardId s = stack.back();
    stack.pop_back();
    for (ShardId d : delegates_of_[s]) {
      if (d == to) return true;
      if (!visited[d]) {
        visited[d] = true;
        stack.push_back(d);
      }
    }
  }
  return false;
}

Status AuthorityMap::install_delegation(const NamingGraph& graph,
                                        EntityId root, ShardId shard) {
  if (shard >= shards_.size()) {
    return invalid_argument_error("install_delegation: unknown shard");
  }
  if (!graph.is_context_object(root)) {
    return invalid_argument_error(
        "install_delegation: root is not a context object");
  }
  const ShardId owner = shard_of(root);
  if (owner == shard) {
    return invalid_argument_error(
        "install_delegation: shard already owns the root (self-delegation)");
  }
  // Cycle refusal: a client chasing glue through a delegation chain that
  // re-enters an earlier shard would never terminate. If the new delegate
  // already reaches the owner through recorded edges, owner → delegate
  // would close the loop.
  if (owner != kNoShard && delegation_reaches(shard, owner)) {
    return invalid_argument_error(
        "install_delegation: delegation would close a cycle");
  }
  if (owner != kNoShard) {
    auto& edges = delegates_of_[owner];
    if (std::find(edges.begin(), edges.end(), shard) == edges.end()) {
      edges.push_back(shard);
    }
  }
  // Same walk contract as set_replicas_subtree: the root is always
  // re-assigned; descendants are claimed only while unowned (no shard and
  // no explicit home), so foreign regions keep their authority.
  assign_shard(root, shard);
  std::deque<EntityId> frontier{root};
  while (!frontier.empty()) {
    EntityId ctx = frontier.front();
    frontier.pop_front();
    if (shard_of(ctx) != shard) continue;
    for (const auto& [name, target] : graph.context(ctx).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (!graph.is_context_object(target)) continue;
      if (shard_of(target) != kNoShard || homes_.contains(target)) continue;
      assign_shard(target, shard);
      frontier.push_back(target);
    }
  }
  return Status::ok();
}

Status AuthorityMap::delegate_children_by_hash(const NamingGraph& graph,
                                               EntityId parent,
                                               const ShardRing& ring,
                                               std::vector<EntityId>* moved) {
  if (!graph.is_context_object(parent)) {
    return invalid_argument_error(
        "delegate_children_by_hash: parent is not a context object");
  }
  for (const auto& [name, target] : graph.context(parent).bindings()) {
    if (name.is_cwd() || name.is_parent()) continue;
    if (!graph.is_context_object(target)) continue;
    const ShardId shard = ring.shard_for(target);
    const ShardId owner = shard_of(target);
    if (owner == shard) continue;  // idempotent re-run: already placed
    if (owner != kNoShard || homes_.contains(target)) {
      // Already owned, but the ring now says elsewhere: a re-run must not
      // silently re-claim live ownership — that is a migration
      // (docs/REBALANCING.md). Report it and leave the map untouched.
      if (moved != nullptr) moved->push_back(target);
      continue;
    }
    Status placed = install_delegation(graph, target, shard);
    if (!placed.is_ok()) return placed;
  }
  return Status::ok();
}

std::vector<EntityId> AuthorityMap::shard_subtree(const NamingGraph& graph,
                                                  EntityId root) const {
  std::vector<EntityId> out;
  const ShardId owner = shard_of(root);
  if (owner == kNoShard || !graph.is_context_object(root)) return out;
  // The same walk shape as install_delegation, read-only: collect every
  // context the owning shard holds under `root`, stopping at foreign
  // authorities (another shard, or an explicit per-context home).
  std::unordered_set<EntityId> seen{root};
  out.push_back(root);
  std::deque<EntityId> frontier{root};
  while (!frontier.empty()) {
    EntityId ctx = frontier.front();
    frontier.pop_front();
    for (const auto& [name, target] : graph.context(ctx).bindings()) {
      if (name.is_cwd() || name.is_parent()) continue;
      if (!graph.is_context_object(target)) continue;
      if (shard_of(target) != owner || homes_.contains(target)) continue;
      if (!seen.insert(target).second) continue;
      out.push_back(target);
      frontier.push_back(target);
    }
  }
  return out;
}

Result<std::size_t> AuthorityMap::migrate_subtree(const NamingGraph& graph,
                                                  EntityId root, ShardId to) {
  if (to >= shards_.size()) {
    return invalid_argument_error("migrate_subtree: unknown target shard");
  }
  if (!graph.is_context_object(root)) {
    return invalid_argument_error(
        "migrate_subtree: root is not a context object");
  }
  const ShardId from = shard_of(root);
  if (from == kNoShard) {
    return invalid_argument_error("migrate_subtree: root is not shard-owned");
  }
  if (from == to) {
    return invalid_argument_error(
        "migrate_subtree: root already lives on the target shard");
  }
  const std::vector<EntityId> ctxs = shard_subtree(graph, root);
  for (EntityId ctx : ctxs) assign_shard(ctx, to);
  return ctxs.size();
}

Result<MachineId> AuthorityMap::home_of(EntityId ctx) const {
  auto it = homes_.find(ctx);
  if (it != homes_.end()) return it->second.front();
  const ShardId shard = shard_of(ctx);
  if (shard != kNoShard) return shards_[shard].front();
  return not_found_error("context has no authoritative home");
}

std::span<const MachineId> AuthorityMap::replicas_of(EntityId ctx) const {
  auto it = homes_.find(ctx);
  if (it != homes_.end()) return it->second;
  const ShardId shard = shard_of(ctx);
  if (shard != kNoShard) return shards_[shard];
  return {};
}

bool AuthorityMap::has_home(EntityId ctx) const {
  return homes_.contains(ctx) || shard_of(ctx) != kNoShard;
}

bool AuthorityMap::is_replica(EntityId ctx, MachineId machine) const {
  auto replicas = replicas_of(ctx);
  return std::find(replicas.begin(), replicas.end(), machine) !=
         replicas.end();
}

bool AuthorityMap::is_primary(EntityId ctx, MachineId machine) const {
  auto replicas = replicas_of(ctx);
  return !replicas.empty() && replicas.front() == machine;
}

std::vector<EntityId> AuthorityMap::replicated_contexts() const {
  std::vector<EntityId> out;
  for (const auto& [ctx, replicas] : homes_) {
    if (replicas.size() >= 2) out.push_back(ctx);
  }
  return out;
}

NameService::NameService(const NamingGraph& graph, Internetwork& net,
                         Transport& transport, const AuthorityMap& homes)
    : graph_(graph), net_(net), transport_(transport), homes_(homes) {
  MetricsRegistry& metrics = transport_.metrics();
  requests_ = &metrics.counter("ns.server.requests");
  answers_ = &metrics.counter("ns.server.answers");
  referrals_ = &metrics.counter("ns.server.referrals");
  failures_ = &metrics.counter("ns.server.failures");
  duplicates_ = &metrics.counter("ns.server.duplicates");
  update_pushes_ = &metrics.counter("ns.server.update_pushes");
  pushes_suppressed_ = &metrics.counter("ns.server.pushes_suppressed");
  updates_applied_ = &metrics.counter("ns.server.updates_applied");
  updates_stale_ = &metrics.counter("ns.server.updates_stale");
  store_answers_ = &metrics.counter("ns.server.store_answers");
  leases_granted_ = &metrics.counter("ns.server.leases_granted");
  lease_renewals_ = &metrics.counter("ns.server.lease_renewals");
  invalidates_pushed_ = &metrics.counter("ns.server.invalidates_pushed");
  lease_table_full_ = &metrics.counter("ns.server.lease_table_full");
  forwarded_ = &metrics.counter("ns.server.forwarded");
  migration_pushes_ = &metrics.counter("ns.server.migration_pushes");
}

StatsSnapshot NameService::snapshot() const {
  return StatsSnapshot(transport_.metrics(), "ns.server.");
}

void NameService::set_lease_policy(SimDuration duration,
                                   std::size_t capacity) {
  lease_duration_ = duration;
  lease_capacity_ = capacity;
}

std::size_t NameService::lease_count(MachineId machine) const {
  auto it = leases_.find(machine);
  return it == leases_.end() ? 0 : it->second.by_id.size();
}

void NameService::erase_lease(LeaseTable& table, std::uint64_t id) {
  auto it = table.by_id.find(id);
  if (it == table.by_id.end()) return;
  auto ctx_it = table.by_ctx.find(it->second.ctx);
  if (ctx_it != table.by_ctx.end()) {
    auto& ids = ctx_it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) table.by_ctx.erase(ctx_it);
  }
  table.by_id.erase(it);
}

std::pair<std::uint64_t, std::uint64_t> NameService::grant_lease(
    MachineId machine, EntityId ctx, const Pid& holder, std::uint64_t epoch,
    std::uint64_t corr) {
  if (lease_duration_ == 0) return {0, 0};
  const SimTime now = transport_.simulator().now();
  LeaseTable& table = leases_[machine];
  // Renewal: the holder already has a promise on this context — refresh
  // its term under the same id instead of stacking a second record.
  auto ctx_it = table.by_ctx.find(ctx);
  if (ctx_it != table.by_ctx.end()) {
    for (std::uint64_t id : ctx_it->second) {
      LeaseRecord& record = table.by_id.at(id);
      if (record.holder == holder) {
        record.expires = now + lease_duration_;
        record.epoch = epoch;
        lease_renewals_->inc();
        transport_.tracer().record(now, EventKind::kLeaseGrant, corr,
                                   ctx.value(), id);
        return {lease_duration_, id};
      }
    }
  }
  if (lease_capacity_ > 0 && table.by_id.size() >= lease_capacity_) {
    // Purge lapsed promises first; a table genuinely full of *unexpired*
    // leases grants nothing — breaking an outstanding promise silently
    // would forfeit the coherence the lease bought.
    std::vector<std::uint64_t> lapsed;
    for (const auto& [id, record] : table.by_id) {
      if (record.expires <= now) lapsed.push_back(id);
    }
    for (std::uint64_t id : lapsed) erase_lease(table, id);
    if (table.by_id.size() >= lease_capacity_) {
      lease_table_full_->inc();
      return {0, 0};
    }
  }
  const std::uint64_t id = next_lease_id_++;
  LeaseRecord record;
  record.id = id;
  record.ctx = ctx;
  record.holder = holder;
  record.expires = now + lease_duration_;
  record.epoch = epoch;
  table.by_id.emplace(id, record);
  table.by_ctx[ctx].push_back(id);
  leases_granted_->inc();
  transport_.tracer().record(now, EventKind::kLeaseGrant, corr, ctx.value(),
                             id);
  return {lease_duration_, id};
}

void NameService::push_invalidations(MachineId machine, EntityId ctx) {
  auto lease_it = leases_.find(machine);
  if (lease_it == leases_.end()) return;
  LeaseTable& table = lease_it->second;
  auto ctx_it = table.by_ctx.find(ctx);
  if (ctx_it == table.by_ctx.end()) return;
  auto server = servers_.find(machine);
  if (server == servers_.end()) return;
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  const SimTime now = transport_.simulator().now();
  Tracer& tracer = transport_.tracer();
  std::vector<std::uint64_t> voided;
  for (std::uint64_t id : ctx_it->second) {
    const LeaseRecord& record = table.by_id.at(id);
    // Promises answered under the current epoch are still good (e.g. an
    // anti-entropy sweep with no rebind since the grant).
    if (record.epoch >= epoch) continue;
    voided.push_back(id);
    if (record.expires <= now) continue;  // lapsed on its own: no push owed
    // Callback push: [lease id, ctx, epoch now in force, rebind time]. The
    // rebind time lets the holder measure the staleness window this push
    // closed. Subject to loss/partition like all traffic — the lease term
    // itself is the holder's fallback bound.
    Message push;
    push.type = NsWire::kInvalidate;
    push.payload.add_u64(id);
    push.payload.add_u64(ctx.value());
    push.payload.add_u64(epoch);
    push.payload.add_u64(now);
    invalidates_pushed_->inc();
    tracer.record(now, EventKind::kInvalidate, 0, ctx.value(), epoch);
    (void)transport_.send(server->second, record.holder, std::move(push));
  }
  for (std::uint64_t id : voided) erase_lease(table, id);
}

void NameService::drop_leases(MachineId machine, EntityId ctx) {
  auto lease_it = leases_.find(machine);
  if (lease_it == leases_.end()) return;
  LeaseTable& table = lease_it->second;
  auto ctx_it = table.by_ctx.find(ctx);
  if (ctx_it == table.by_ctx.end()) return;
  std::vector<std::uint64_t> ids = ctx_it->second;
  for (std::uint64_t id : ids) erase_lease(table, id);
}

void NameService::open_migration_intake(MachineId target,
                                        const std::vector<EntityId>& ctxs) {
  auto& allowed = intake_[target];
  allowed.insert(ctxs.begin(), ctxs.end());
}

void NameService::close_migration_intake(MachineId target) {
  intake_.erase(target);
}

bool NameService::push_snapshot(EntityId ctx, MachineId to) {
  if (!graph_.is_context_object(ctx)) return false;
  auto replicas = homes_.replicas_of(ctx);
  if (replicas.empty()) return false;
  auto origin = servers_.find(replicas.front());
  if (origin == servers_.end()) return false;
  auto origin_loc = net_.location_of(origin->second);
  if (!origin_loc.is_ok()) return false;
  auto target = servers_.find(to);
  if (target == servers_.end()) return false;
  auto target_loc = net_.location_of(target->second);
  if (!target_loc.is_ok()) return false;
  // Same full-snapshot layout as publish_update — the receiver cannot
  // tell a migration copy from a replication push, which is the point:
  // apply-if-newer makes loss and reordering harmless either way.
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  const auto bindings = graph_.context(ctx).bindings();
  Message push;
  push.type = NsWire::kUpdatePush;
  push.payload.add_u64(ctx.value());
  push.payload.add_u64(epoch);
  push.payload.add_u64(bindings.size());
  for (const Binding& b : bindings) {
    push.payload.add_name(b.name.text());
    push.payload.add_u64(b.entity.value());
  }
  migration_pushes_->inc();
  transport_.tracer().record(transport_.simulator().now(),
                             EventKind::kUpdatePush, 0, ctx.value(), epoch);
  return transport_
      .send(origin->second,
            relativize(target_loc.value(), origin_loc.value()),
            std::move(push))
      .is_ok();
}

void NameService::install_forwarding(ShardId from_shard,
                                     const std::vector<EntityId>& ctxs,
                                     SimTime expires) {
  auto machines = homes_.shard_replicas(from_shard);
  if (machines.empty() || ctxs.empty()) return;
  for (MachineId m : machines) {
    auto& slots = forwarding_[m];
    for (EntityId ctx : ctxs) {
      SimTime& slot = slots[ctx];
      slot = std::max(slot, expires);
    }
  }
  transport_.simulator().schedule_at(expires, [this] { purge_forwarding(); });
}

void NameService::purge_forwarding() {
  const SimTime now = transport_.simulator().now();
  for (auto it = forwarding_.begin(); it != forwarding_.end();) {
    auto& slots = it->second;
    for (auto slot = slots.begin(); slot != slots.end();) {
      slot = slot->second <= now ? slots.erase(slot) : std::next(slot);
    }
    it = slots.empty() ? forwarding_.erase(it) : std::next(it);
  }
}

std::size_t NameService::forwarding_count(MachineId machine) const {
  auto it = forwarding_.find(machine);
  if (it == forwarding_.end()) return 0;
  const SimTime now = transport_.simulator().now();
  std::size_t live = 0;
  for (const auto& [ctx, expires] : it->second) {
    if (expires > now) ++live;
  }
  return live;
}

void NameService::track_subtree_loads(const NamingGraph& graph,
                                      const std::vector<EntityId>& roots) {
  MetricsRegistry& metrics = transport_.metrics();
  for (EntityId root : roots) {
    if (!graph.is_context_object(root)) continue;
    const auto slot = static_cast<std::uint32_t>(subtree_hits_.size());
    subtree_hits_.push_back(&metrics.counter(
        "ns.server.subtree." + std::to_string(root.value()) + ".hits"));
    // Claim the subtree for this slot; first registration wins, so
    // overlapping roots attribute shared contexts to the earlier one.
    std::deque<EntityId> frontier{root};
    auto claim = [&](EntityId ctx) {
      if (ctx.value() >= subtree_slot_.size()) {
        subtree_slot_.resize(ctx.value() + 1, kNoSlot);
      }
      if (subtree_slot_[ctx.value()] != kNoSlot) return false;
      subtree_slot_[ctx.value()] = slot;
      return true;
    };
    if (!claim(root)) continue;
    while (!frontier.empty()) {
      EntityId ctx = frontier.front();
      frontier.pop_front();
      for (const auto& [name, target] : graph.context(ctx).bindings()) {
        if (name.is_cwd() || name.is_parent()) continue;
        if (!graph.is_context_object(target)) continue;
        if (claim(target)) frontier.push_back(target);
      }
    }
  }
}

EndpointId NameService::add_server(MachineId machine) {
  NAMECOH_CHECK(!servers_.contains(machine),
                "machine already has a name server");
  EndpointId server = net_.add_endpoint(machine, "nameserver");
  servers_[machine] = server;
  // Per-machine load signals for the rebalance planner: requests served
  // and FIFO queue-wait ticks (docs/REBALANCING.md, "Planner signals").
  MetricsRegistry& metrics = transport_.metrics();
  const std::string mprefix =
      "ns.server.m" + std::to_string(machine.value()) + ".";
  load_[machine] = MachineLoad{&metrics.counter(mprefix + "served"),
                               &metrics.counter(mprefix + "wait_ticks")};
  transport_.set_handler(
      server, [this, machine](EndpointId self, const Message& message) {
        if (message.type == NsWire::kUpdatePush) {
          handle_update(self, message);
          return;
        }
        const MachineLoad& load = load_.at(machine);
        if (service_time_ == 0) {
          load.served->inc();
          handle_request(self, message);
          return;
        }
        // Service-time model: one FIFO server per machine. The request
        // waits behind everything already queued, occupies the server for
        // service_time_ ticks, and replies at completion — so a hot
        // authority's latency grows with its queue and sharding the
        // namespace buys real throughput.
        Simulator& sim = transport_.simulator();
        SimTime& busy = busy_until_[machine];
        const SimTime begin = std::max(busy, sim.now());
        busy = begin + service_time_;
        load.served->inc();
        load.wait_ticks->inc(begin - sim.now());
        sim.schedule_in(busy - sim.now(), [this, self, message] {
          handle_request(self, message);
        });
      });
  return server;
}

void NameService::remove_server(MachineId machine) {
  auto it = servers_.find(machine);
  if (it == servers_.end()) return;
  transport_.clear_handler(it->second);
  net_.remove_endpoint(it->second);
  servers_.erase(it);
  // The departed server can honor no promise and answer no straggler:
  // its lease table and forwarding tombstones go with it. busy_until_ is
  // reset so a re-added server starts with an empty FIFO.
  leases_.erase(machine);
  forwarding_.erase(machine);
  busy_until_.erase(machine);
}

void NameService::set_service_time(SimDuration per_request) {
  service_time_ = per_request;
}

Result<EndpointId> NameService::server_on(MachineId machine) const {
  auto it = servers_.find(machine);
  if (it == servers_.end()) {
    return unreachable_error("no name server on machine");
  }
  return it->second;
}

void NameService::publish_update(EntityId ctx) {
  if (!graph_.is_context_object(ctx)) return;
  auto replicas = homes_.replicas_of(ctx);
  if (replicas.empty()) return;
  // Callback promises void first. Invalidations go out from *every*
  // machine holding promises on this context, not just the current
  // primary: after a delegation migrates the context to another shard,
  // the old authority still owes kInvalidate pushes for the leases it
  // granted — routing only through the new primary would strand them.
  // Collect holders first; delivery is scheduled, so no table mutates
  // under this iteration.
  std::vector<MachineId> holders;
  for (const auto& [machine, table] : leases_) {
    if (table.by_ctx.contains(ctx)) holders.push_back(machine);
  }
  for (MachineId machine : holders) push_invalidations(machine, ctx);
  if (replicas.size() < 2) return;
  auto primary = servers_.find(replicas.front());
  if (primary == servers_.end() || !net_.location_of(primary->second).is_ok()) {
    // The publish was owed but cannot go out; remember the debt so a
    // later anti-entropy round retries once the primary is back.
    ae_dirty_.insert(ctx);
    return;
  }
  auto primary_loc = net_.location_of(primary->second);
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  const auto bindings = graph_.context(ctx).bindings();
  Tracer& tracer = transport_.tracer();
  bool lagging = false;
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    // Epoch gate (the snapshot-storm fix): a secondary whose applied
    // epoch already matches the primary's has the current snapshot —
    // re-pushing it is pure waste, O(contexts × replicas × bindings) of
    // it under the old per-tick full sweep.
    auto applied = replica_epoch(replicas[i], ctx);
    if (applied && *applied >= epoch) {
      pushes_suppressed_->inc();
      continue;
    }
    lagging = true;
    auto secondary = servers_.find(replicas[i]);
    if (secondary == servers_.end()) continue;
    auto secondary_loc = net_.location_of(secondary->second);
    if (!secondary_loc.is_ok()) continue;
    // Full-snapshot push: [ctx, epoch, n, (name, target) × n]. Snapshots
    // rather than deltas keep the apply idempotent — any newer snapshot
    // supersedes the store wholesale, so loss and reordering can delay
    // convergence but never corrupt it.
    Message push;
    push.type = NsWire::kUpdatePush;
    push.payload.add_u64(ctx.value());
    push.payload.add_u64(epoch);
    push.payload.add_u64(bindings.size());
    for (const Binding& b : bindings) {
      push.payload.add_name(b.name.text());
      push.payload.add_u64(b.entity.value());
    }
    update_pushes_->inc();
    tracer.record(transport_.simulator().now(), EventKind::kUpdatePush, 0,
                  ctx.value(), epoch);
    (void)transport_.send(
        primary->second,
        relativize(secondary_loc.value(), primary_loc.value()),
        std::move(push));
  }
  // Dirty while any secondary lags (it may need a re-push: the snapshot
  // just sent rides the same lossy network as everything else); clean the
  // moment every secondary is current, so quiescent contexts cost
  // anti-entropy nothing.
  if (lagging) {
    ae_dirty_.insert(ctx);
  } else {
    ae_dirty_.erase(ctx);
  }
}

void NameService::start_anti_entropy(SimDuration interval) {
  NAMECOH_CHECK(interval > 0, "anti-entropy interval must be positive");
  anti_entropy_interval_ = interval;
  // One full sweep per (re)start seeds the dirty set with rebinds that
  // predate it (e.g. everything that happened before anti-entropy was
  // switched on); later rounds iterate only the dirty set.
  ae_sweep_pending_ = true;
  // Generation-stamp the scheduled round: bumping the generation orphans
  // any round already in the queue, so a restart re-times the next round
  // to the *new* interval now instead of after one more old-interval
  // round.
  const std::uint64_t gen = ++ae_gen_;
  transport_.simulator().schedule_in(interval,
                                     [this, gen] { anti_entropy_tick(gen); });
}

void NameService::stop_anti_entropy() {
  anti_entropy_interval_ = 0;
  ++ae_gen_;
}

void NameService::anti_entropy_tick(std::uint64_t gen) {
  if (gen != ae_gen_ || anti_entropy_interval_ == 0) return;  // stale round
  if (ae_sweep_pending_) {
    ae_sweep_pending_ = false;
    for (EntityId ctx : homes_.replicated_contexts()) publish_update(ctx);
  } else {
    // publish_update inserts into and erases from ae_dirty_; iterate a
    // copy so the round sees a stable set.
    const std::vector<EntityId> dirty(ae_dirty_.begin(), ae_dirty_.end());
    for (EntityId ctx : dirty) publish_update(ctx);
  }
  transport_.simulator().schedule_in(anti_entropy_interval_,
                                     [this, gen] { anti_entropy_tick(gen); });
}

void NameService::maybe_clean(EntityId ctx) {
  if (!ae_dirty_.contains(ctx)) return;
  const std::uint64_t epoch = graph_.rebind_epoch(ctx);
  auto replicas = homes_.replicas_of(ctx);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    auto applied = replica_epoch(replicas[i], ctx);
    if (!applied || *applied < epoch) return;
  }
  ae_dirty_.erase(ctx);
}

std::optional<std::uint64_t> NameService::replica_epoch(MachineId machine,
                                                        EntityId ctx) const {
  auto store = stores_.find(machine);
  if (store == stores_.end()) return std::nullopt;
  auto it = store->second.find(ctx);
  if (it == store->second.end()) return std::nullopt;
  return it->second.epoch;
}

bool NameService::note_duplicate(std::uint64_t corr) {
  if (!recent_corr_.insert(corr).second) return true;
  recent_corr_order_.push_back(corr);
  if (recent_corr_order_.size() > kDuplicateWindow) {
    recent_corr_.erase(recent_corr_order_.front());
    recent_corr_order_.pop_front();
  }
  return false;
}

void NameService::handle_update(EndpointId self, const Message& message) {
  const Payload& p = message.payload;
  if (p.size() < 3 || p.type_at(0) != FieldType::kU64 ||
      p.type_at(1) != FieldType::kU64 || p.type_at(2) != FieldType::kU64) {
    return;  // malformed
  }
  EntityId ctx(p.u64_at(0));
  const std::uint64_t epoch = p.u64_at(1);
  const std::uint64_t n = p.u64_at(2);
  if (n > (p.size() - 3) / 2 || p.size() != 3 + 2 * n) return;
  auto my_machine = net_.machine_of(self);
  if (!my_machine.is_ok()) return;
  // Only a secondary for this context applies pushes — or a migration
  // target with an open intake for it (the copy phase fills the store
  // *before* the cutover makes the machine authoritative;
  // docs/REBALANCING.md). Anything else — e.g. a push delayed across a
  // replica-set change — is a stray.
  const bool secondary = homes_.is_replica(ctx, my_machine.value()) &&
                         !homes_.is_primary(ctx, my_machine.value());
  if (!secondary) {
    auto open = intake_.find(my_machine.value());
    if (open == intake_.end() || !open->second.contains(ctx)) return;
  }
  Tracer& tracer = transport_.tracer();
  const SimTime now = transport_.simulator().now();
  auto& store = stores_[my_machine.value()];
  auto it = store.find(ctx);
  if (it != store.end() && epoch <= it->second.epoch) {
    // Apply-if-newer: re-deliveries and reordered pushes of an older
    // snapshot must never roll the store backwards.
    updates_stale_->inc();
    tracer.record(now, EventKind::kUpdateStale, 0, ctx.value(), epoch);
    return;
  }
  ReplicaState state;
  state.epoch = epoch;
  state.bindings.reserve(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    if (p.type_at(3 + 2 * j) != FieldType::kName ||
        p.type_at(4 + 2 * j) != FieldType::kU64) {
      return;  // malformed: apply nothing rather than half a snapshot
    }
    auto name = Name::make(p.name_at(3 + 2 * j));
    if (!name.is_ok()) return;
    state.bindings.push_back(
        Binding{name.value(), EntityId(p.u64_at(4 + 2 * j))});
  }
  store[ctx] = std::move(state);
  updates_applied_->inc();
  tracer.record(now, EventKind::kUpdateApply, 0, ctx.value(), epoch);
  // A secondary's lease state (if it ever granted any) is superseded by
  // the snapshot: the primary owns invalidation, so stale local promises
  // are dropped rather than pushed.
  drop_leases(my_machine.value(), ctx);
  // This apply may have been the last laggard; keep the dirty set tight.
  maybe_clean(ctx);
}

void NameService::handle_request(EndpointId self, const Message& message) {
  if (message.type != NsWire::kResolveRequest ||
      message.payload.size() < 3 ||
      message.payload.type_at(0) != FieldType::kU64 ||
      message.payload.type_at(1) != FieldType::kU64 ||
      message.payload.type_at(2) != FieldType::kName) {
    return;  // not ours / malformed
  }
  const std::uint64_t corr = message.payload.u64_at(0);
  EntityId ctx(message.payload.u64_at(1));
  const std::string& path = message.payload.name_at(2);
  // Optional request flags (protocol v4). A v3 request stops at field 2;
  // an unrecognised extra field is ignored, not rejected.
  std::uint64_t flags = 0;
  if (message.payload.size() > 3 &&
      message.payload.type_at(3) == FieldType::kU64) {
    flags = message.payload.u64_at(3);
  }

  Tracer& tracer = transport_.tracer();
  const SimTime now = transport_.simulator().now();

  // At-most-once accounting: a retransmission (same correlation id within
  // the window) is still answered — the original reply may have been lost —
  // but must not count as a second resolution in the stats.
  const bool duplicate = note_duplicate(corr);
  if (duplicate) {
    duplicates_->inc();
    tracer.record(now, EventKind::kServerDuplicate, corr, self.value());
  } else {
    requests_->inc();
  }
  tracer.record(now, EventKind::kServerHandle, corr, self.value(),
                ctx.value());
  auto count = [&](Counter* counter) {
    if (!duplicate) counter->inc();
  };

  auto my_machine = net_.machine_of(self);
  if (!my_machine.is_ok()) return;
  auto my_loc = net_.location_of(self);
  if (!my_loc.is_ok()) return;

  // Subtree load attribution (track_subtree_loads): charge the request to
  // the registered subtree its *start* context belongs to, before the walk
  // advances `ctx`.
  if (!duplicate && ctx.valid() && ctx.value() < subtree_slot_.size()) {
    const std::uint32_t slot = subtree_slot_[ctx.value()];
    if (slot != kNoSlot) subtree_hits_[slot]->inc();
  }

  // Reply layout (protocol v3): the fixed v2 prefix [corr, disposition,
  // entity, remaining, error, next-server pid, authority-ctx, epoch]
  // followed by the authority's replica list [n, (server pid, machine) × n]
  // so clients can fail over without out-of-band topology knowledge. All
  // pids are in *this server's* context; the transport rebases them into
  // the receiver's context in flight (R(sender)). `authority` is the
  // context whose bindings the reply depends on; the epoch stamped is the
  // graph's current rebind epoch, or — when a secondary answered from its
  // replica store — the *snapshot's* epoch, so staleness is visible.
  auto send_reply = [&](std::uint64_t disposition, EntityId entity,
                        std::string remaining, std::string error,
                        Pid next_server, EntityId authority,
                        std::optional<std::uint64_t> epoch_override =
                            std::nullopt) {
    const EventKind kind = disposition == NsWire::kAnswer
                               ? EventKind::kServerAnswer
                               : disposition == NsWire::kReferral
                                     ? EventKind::kServerReferral
                                     : EventKind::kServerError;
    tracer.record(transport_.simulator().now(), kind, corr, self.value(),
                  entity.valid() ? entity.value() : 0);
    Message reply;
    reply.type = NsWire::kResolveReply;
    reply.trace_corr = corr;
    reply.payload.add_u64(corr);
    reply.payload.add_u64(disposition);
    reply.payload.add_u64(entity.valid() ? entity.value() : NsWire::kNoEntity);
    reply.payload.add_name(std::move(remaining));
    reply.payload.add_string(std::move(error));
    reply.payload.add_pid(next_server);
    const bool stamp =
        authority.valid() && graph_.is_context_object(authority);
    reply.payload.add_u64(stamp ? authority.value() : NsWire::kNoEntity);
    reply.payload.add_u64(stamp ? (epoch_override
                                       ? *epoch_override
                                       : graph_.rebind_epoch(authority))
                                : 0);
    std::vector<std::pair<Pid, std::uint64_t>> tail;
    if (stamp) {
      for (MachineId m : homes_.replicas_of(authority)) {
        auto sit = servers_.find(m);
        if (sit == servers_.end()) continue;
        auto loc = net_.location_of(sit->second);
        if (!loc.is_ok()) continue;
        tail.emplace_back(relativize(loc.value(), my_loc.value()),
                          m.value());
      }
    }
    reply.payload.add_u64(tail.size());
    for (auto& [pid, machine] : tail) {
      reply.payload.add_pid(pid);
      reply.payload.add_u64(machine);
    }
    // Protocol v4 lease tail, appended only when the client asked for a
    // lease (a v3 client's replies stay byte-identical). Only the primary
    // grants — it is where invalidations originate, so a secondary's
    // promise could never be kept. Referrals carry no binding to promise
    // about; they (and non-grants) ship the [0, 0] sentinel.
    if ((flags & NsWire::kFlagLeaseRequested) != 0) {
      std::uint64_t lease_duration = 0;
      std::uint64_t lease_id = 0;
      if (stamp && disposition != NsWire::kReferral &&
          homes_.is_primary(authority, my_machine.value())) {
        const auto granted = grant_lease(
            my_machine.value(), authority, message.reply_to,
            epoch_override ? *epoch_override : graph_.rebind_epoch(authority),
            corr);
        lease_duration = granted.first;
        lease_id = granted.second;
      }
      reply.payload.add_u64(lease_duration);
      reply.payload.add_u64(lease_id);
    }
    // Protocol v5 glue tail (docs/SHARDING.md), appended only when the
    // client negotiated it: [g, (ctx, shard, r, (pid, machine) × r) × g].
    // A referral that crosses into a delegated shard carries the
    // delegate's replica set, so the client reaches the owning shard in
    // the next hop without a second round trip for topology.
    if ((flags & NsWire::kFlagShardGlue) != 0) {
      std::vector<std::pair<Pid, std::uint64_t>> glue_servers;
      ShardId glue_shard = AuthorityMap::kNoShard;
      if (disposition == NsWire::kReferral && stamp) {
        glue_shard = homes_.shard_of(authority);
        if (glue_shard != AuthorityMap::kNoShard) {
          for (MachineId m : homes_.shard_replicas(glue_shard)) {
            auto sit = servers_.find(m);
            if (sit == servers_.end()) continue;
            auto loc = net_.location_of(sit->second);
            if (!loc.is_ok()) continue;
            glue_servers.emplace_back(
                relativize(loc.value(), my_loc.value()), m.value());
          }
        }
      }
      const bool have_glue =
          glue_shard != AuthorityMap::kNoShard && !glue_servers.empty();
      reply.payload.add_u64(have_glue ? 1 : 0);
      if (have_glue) {
        reply.payload.add_u64(authority.value());
        reply.payload.add_u64(glue_shard);
        reply.payload.add_u64(glue_servers.size());
        for (auto& [pid, machine] : glue_servers) {
          reply.payload.add_pid(pid);
          reply.payload.add_u64(machine);
        }
      }
    }
    (void)transport_.send(self, message.reply_to, std::move(reply));
  };
  auto send_error = [&](std::string error, EntityId authority = {},
                        std::optional<std::uint64_t> epoch_override =
                            std::nullopt) {
    count(failures_);
    send_reply(NsWire::kError, {}, "", std::move(error), Pid::self(),
               authority, epoch_override);
  };

  std::optional<CompoundName> parsed;
  NameSlice components;
  if (!path.empty()) {
    // Decode = intern: the text entered this node here; from now on the
    // walk is all atom compares.
    auto result = message.payload.compound_at(2);
    if (!result.is_ok()) {
      send_error(result.status().to_string());
      return;
    }
    parsed = std::move(result).value();
    components = parsed->slice();
  }

  // Zero components resolve to the start entity itself (the identity
  // resolution). This case must answer explicitly: falling through the
  // walk loop without a reply would strand the client through every retry
  // and surface as a bogus "message lost" error.
  if (components.empty()) {
    if (!graph_.contains(ctx)) {
      send_error("unknown start entity in empty-path request");
      return;
    }
    count(answers_);
    send_reply(NsWire::kAnswer, ctx, "", "", Pid::self(), ctx);
    return;
  }

  // Refer the client to the primary for `ctx` at component `i`.
  auto refer_to_primary = [&](MachineId primary, std::size_t i) {
    auto next_server = server_on(primary);
    if (!next_server.is_ok()) {
      send_error("authoritative machine has no name server");
      return;
    }
    auto next_loc = net_.location_of(next_server.value());
    if (!next_loc.is_ok()) {
      send_error("authoritative server endpoint is dead");
      return;
    }
    count(referrals_);
    send_reply(NsWire::kReferral, ctx, components.subslice(i).joined(), "",
               relativize(next_loc.value(), my_loc.value()), ctx);
  };

  // Walk while the current context is replicated here; refer onward
  // otherwise. The primary serves straight from the naming graph; a
  // secondary serves from the last snapshot it applied (stamping the
  // snapshot's epoch), or refers to the primary if it never synced.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!graph_.is_context_object(ctx)) {
      send_error("NOT_A_CONTEXT at '" + components[i].text() + "'");
      return;
    }
    auto replicas = homes_.replicas_of(ctx);
    if (replicas.empty()) {
      send_error("context has no authoritative home");
      return;
    }
    if (!homes_.is_replica(ctx, my_machine.value())) {
      // Forwarding window (docs/REBALANCING.md): this server owned `ctx`
      // until a recent cutover. The referral below already points at the
      // new owner (the shared authority map was rewritten at cutover, and
      // v5 glue rides along) — the tombstone just makes the window
      // observable and bounded.
      auto held = forwarding_.find(my_machine.value());
      if (held != forwarding_.end()) {
        auto slot = held->second.find(ctx);
        if (slot != held->second.end()) {
          if (slot->second > now) {
            count(forwarded_);
            const ShardId owner = homes_.shard_of(ctx);
            tracer.record(transport_.simulator().now(), EventKind::kForwarded,
                          corr, ctx.value(),
                          owner == AuthorityMap::kNoShard ? 0 : owner);
          } else {
            held->second.erase(slot);  // lazy purge: the window closed
          }
        }
      }
      refer_to_primary(replicas.front(), i);
      return;
    }
    Result<EntityId> next = not_found_error("unresolved");
    std::optional<std::uint64_t> store_epoch;
    if (homes_.is_primary(ctx, my_machine.value())) {
      next = graph_.lookup(ctx, components[i]);
    } else {
      const ReplicaState* state = nullptr;
      auto sit = stores_.find(my_machine.value());
      if (sit != stores_.end()) {
        auto cit = sit->second.find(ctx);
        if (cit != sit->second.end()) state = &cit->second;
      }
      if (state == nullptr) {
        // Never synced: answering from nothing would turn "no snapshot
        // yet" into a spurious NOT_FOUND. Refer to the primary instead.
        refer_to_primary(replicas.front(), i);
        return;
      }
      store_epoch = state->epoch;
      next = not_found_error("NOT_FOUND: no binding for '" +
                             components[i].text() + "'");
      for (const Binding& b : state->bindings) {
        if (b.name == components[i]) {
          next = b.entity;
          break;
        }
      }
    }
    if (!next.is_ok()) {
      if (store_epoch) {
        count(store_answers_);
        tracer.record(transport_.simulator().now(), EventKind::kStoreAnswer,
                      corr, ctx.value(), *store_epoch);
      }
      // Stamp the context where the lookup failed so negative cache
      // entries are invalidated when it is rebound.
      send_error(next.status().to_string(), ctx, store_epoch);
      return;
    }
    if (i + 1 == components.size()) {
      count(answers_);
      if (store_epoch) {
        count(store_answers_);
        tracer.record(transport_.simulator().now(), EventKind::kStoreAnswer,
                      corr, ctx.value(), *store_epoch);
      }
      send_reply(NsWire::kAnswer, next.value(), "", "", Pid::self(), ctx,
                 store_epoch);
      return;
    }
    ctx = next.value();
  }
  // Defensive: every branch above replies. Never exit silently — silence
  // costs the client its full retry budget.
  send_error("internal: request fell through the resolution walk");
}

ResolverClient::ResolverClient(const NamingGraph& graph, Internetwork& net,
                               Transport& transport, Simulator& sim,
                               const NameService& service, MachineId machine,
                               std::string label,
                               ResolverClientConfig config)
    : graph_(graph),
      net_(net),
      transport_(transport),
      sim_(sim),
      service_(service),
      endpoint_(net.add_endpoint(machine, std::move(label))),
      config_(config),
      client_machine_(machine) {
  // Per-client counter names: several clients can share one transport (and
  // hence one registry), so the endpoint id keeps their metrics apart.
  MetricsRegistry& metrics = transport_.metrics();
  metrics_prefix_ = "ns.client." + std::to_string(endpoint_.value()) + ".";
  const std::string& prefix = metrics_prefix_;
  resolutions_ = &metrics.counter(prefix + "resolutions");
  messages_sent_ = &metrics.counter(prefix + "messages_sent");
  referrals_followed_ = &metrics.counter(prefix + "referrals_followed");
  cache_hits_ = &metrics.counter(prefix + "cache_hits");
  cache_misses_ = &metrics.counter(prefix + "cache_misses");
  failures_ = &metrics.counter(prefix + "failures");
  evictions_ = &metrics.counter(prefix + "evictions");
  negative_hits_ = &metrics.counter(prefix + "negative_hits");
  stale_epoch_drops_ = &metrics.counter(prefix + "stale_epoch_drops");
  timeouts_ = &metrics.counter(prefix + "timeouts");
  backoff_retries_ = &metrics.counter(prefix + "backoff_retries");
  stale_replies_dropped_ = &metrics.counter(prefix + "stale_replies_dropped");
  failovers_ = &metrics.counter(prefix + "failovers");
  coalesced_ = &metrics.counter(prefix + "coalesced");
  coalesce_rejected_ = &metrics.counter(prefix + "coalesce_rejected");
  invalidates_received_ = &metrics.counter(prefix + "invalidates_received");
  lease_renewals_ = &metrics.counter(prefix + "lease_renewals");
  lease_degrades_ = &metrics.counter(prefix + "lease_degrades");
  // Sharding counters are registry-wide ("ns.shard.*"), not per-client:
  // "how much referral traffic crossed shards" is a fabric question, and
  // thousands of bench clients sharing three counters beats thousands of
  // prefixed triples.
  delegations_chased_ = &metrics.counter("ns.shard.delegations_chased");
  glue_hits_ = &metrics.counter("ns.shard.glue_hits");
  cross_shard_hops_ = &metrics.counter("ns.shard.cross_shard_hops");
  route_reuses_ = &metrics.counter("ns.shard.route_reuses");
  // Membership counters are registry-wide too (docs/MEMBERSHIP.md).
  routes_healed_ = &metrics.counter("ns.member.routes_healed");
  dead_route_skips_ = &metrics.counter("ns.member.dead_route_skips");
  epochs_tracked_ = &metrics.gauge(prefix + "epochs_tracked");
  // Ticks from a hop's first send to its first reply, recorded only when
  // the hop failed over; buckets sized for timeout-dominated latencies.
  failover_latency_ = &metrics.histogram(
      prefix + "failover_latency",
      {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000});
  // Rebind → invalidate-processed windows; buckets sized for one-way
  // network latencies (the push transit time dominates when healthy).
  stale_window_ = &metrics.histogram(
      prefix + "stale_window",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000});
  // Correlation ids are unique per client *and* per attempt: the endpoint
  // id seeds the high bits so two clients never share an id space (the
  // server's duplicate window is keyed by raw correlation id).
  next_corr_ = ((endpoint_.value() + 1) << 32) | 1;
  transport_.set_handler(endpoint_,
                         [this](EndpointId, const Message& message) {
                           if (message.type == NsWire::kInvalidate) {
                             handle_invalidate(message);
                           } else {
                             handle_reply(message);
                           }
                         });
}

ResolverClient::~ResolverClient() {
  transport_.clear_handler(endpoint_);
  (void)net_.remove_endpoint(endpoint_);
  // Settle anything still in flight: continuations scheduled on the
  // simulator capture `this` by id and must never fire after destruction,
  // and waiters holding a handle deserve an answer, not a hang.
  auto requests = std::move(requests_);
  requests_.clear();
  inflight_.clear();
  corr_to_request_.clear();
  for (auto& [id, record] : requests) {
    if (record->timeout_event.valid()) sim_.cancel(record->timeout_event);
    std::vector<Waiter> waiters = std::move(record->waiters);
    for (Waiter& waiter : waiters) {
      settle_waiter(waiter,
                    unreachable_error(
                        "resolver client destroyed with the resolution "
                        "in flight"));
    }
  }
}

StatsSnapshot ResolverClient::snapshot() const {
  return StatsSnapshot(transport_.metrics(), metrics_prefix_);
}

const ResolverClient::CacheEntry* ResolverClient::cache_lookup(
    const CacheKey& key, std::uint64_t span) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  CacheEntry& entry = it->second;
  // Expiry at the exact boundary counts: an entry stamped `expires == now`
  // has lived its full TTL.
  if (entry.expires <= sim_.now()) {
    lru_.erase(entry.lru);
    cache_.erase(it);
    return nullptr;
  }
  if (config_.epoch_invalidation && entry.authority.valid()) {
    auto seen = epochs_seen_.find(entry.authority);
    if (seen != epochs_seen_.end() && seen->second.epoch > entry.epoch) {
      stale_epoch_drops_->inc();
      transport_.tracer().record_in_span(span, sim_.now(),
                                         EventKind::kStaleEpochDrop,
                                         entry.authority.value(), entry.epoch);
      lru_.erase(entry.lru);
      cache_.erase(it);
      return nullptr;
    }
  }
  if (entry.lease_id != 0 && entry.lease_expires <= sim_.now()) {
    // The promise lapsed unrenewed (authority unreachable, or the renewal
    // lost): degrade to riding out the plain TTL — the pre-lease bound —
    // rather than trusting a promise nobody is keeping anymore.
    lease_degrades_->inc();
    transport_.tracer().record_in_span(span, sim_.now(),
                                       EventKind::kLeaseDegrade,
                                       key.start.value(),
                                       entry.authority.valid()
                                           ? entry.authority.value()
                                           : 0);
    entry.lease_id = 0;
    entry.lease_expires = 0;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
  return &entry;
}

void ResolverClient::cache_insert(const CacheKey& key, CacheEntry entry) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    entry.lru = it->second.lru;
    lru_.splice(lru_.begin(), lru_, entry.lru);
    it->second = std::move(entry);
    return;
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  cache_.emplace(key, std::move(entry));
  if (config_.cache_capacity > 0 && cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    evictions_->inc();
  }
}

void ResolverClient::note_epoch(EntityId authority, std::uint64_t epoch) {
  if (!authority.valid()) return;
  auto it = epochs_seen_.find(authority);
  if (it != epochs_seen_.end()) {
    if (it->second.epoch < epoch) it->second.epoch = epoch;
    epoch_lru_.splice(epoch_lru_.begin(), epoch_lru_, it->second.lru);
    return;
  }
  epoch_lru_.push_front(authority);
  epochs_seen_.emplace(authority, EpochRecord{epoch, epoch_lru_.begin()});
  if (config_.epoch_table_capacity > 0 &&
      epochs_seen_.size() > config_.epoch_table_capacity) {
    // Forget the least recently touched authority. Safe in the failure
    // direction: a forgotten high-water mark only means its entries live
    // out their TTL instead of dying early.
    epochs_seen_.erase(epoch_lru_.back());
    epoch_lru_.pop_back();
  }
  epochs_tracked_->set(static_cast<double>(epochs_seen_.size()));
}

bool ResolverClient::is_suspect(MachineId machine) const {
  if (!machine.valid()) return false;
  auto it = suspect_until_.find(machine);
  return it != suspect_until_.end() && it->second > sim_.now();
}

std::uint64_t ResolverClient::member_incarnation(MachineId machine) const {
  return membership_ == nullptr ? 0 : membership_->incarnation(machine);
}

std::vector<ResolverClient::ReplicaRef> ResolverClient::candidates_for(
    EntityId ctx, const ReplicaRef& via) const {
  auto my_loc = net_.location_of(endpoint_);
  if (!my_loc.is_ok()) return {via};
  std::vector<ReplicaRef> authoritative;
  for (MachineId m : service_.authorities().replicas_of(ctx)) {
    if (via.machine.valid() && m == via.machine) continue;
    auto server = service_.server_on(m);
    if (!server.is_ok()) continue;
    auto loc = net_.location_of(server.value());
    if (!loc.is_ok()) continue;
    authoritative.push_back(ReplicaRef{relativize(loc.value(), my_loc.value()),
                                       m, member_incarnation(m)});
  }
  if (config_.shard_routing && !authoritative.empty() &&
      !service_.authorities().is_replica(ctx, via.machine)) {
    // Shard-aware first hop: go straight to the owning shard's servers
    // and keep the non-authoritative local server only as a last resort —
    // funnelling every lookup through one front door is exactly the
    // bottleneck sharding exists to remove.
    authoritative.push_back(via);
    return authoritative;
  }
  std::vector<ReplicaRef> out{via};
  out.insert(out.end(), authoritative.begin(), authoritative.end());
  return out;
}

void ResolverClient::purge_routes(MachineId machine) {
  for (auto it = shard_routes_.begin(); it != shard_routes_.end();) {
    auto& route = it->second;
    route.erase(std::remove_if(route.begin(), route.end(),
                               [machine](const ReplicaRef& ref) {
                                 return ref.machine == machine;
                               }),
                route.end());
    // An emptied route is forgotten outright, so later lookups fall back
    // to the authority map instead of a dead shortcut.
    it = route.empty() ? shard_routes_.erase(it) : std::next(it);
  }
}

void ResolverClient::refresh_routes(MachineId machine, const Pid& pid,
                                    std::uint64_t incarnation) {
  for (auto& [shard, route] : shard_routes_) {
    for (ReplicaRef& ref : route) {
      if (ref.machine == machine) {
        ref.pid = pid;
        ref.incarnation = incarnation;
      }
    }
  }
}

void ResolverClient::reroute_hop(PendingResolve& p) {
  auto local_server = service_.server_on(client_machine_);
  auto my_loc = net_.location_of(endpoint_);
  if (!local_server.is_ok() || !my_loc.is_ok()) {
    complete(p, unreachable_error("no local server to reroute through"));
    return;
  }
  auto server_loc = net_.location_of(local_server.value());
  if (!server_loc.is_ok()) {
    complete(p, unreachable_error("local server endpoint is dead"));
    return;
  }
  p.candidates = candidates_for(
      p.current, ReplicaRef{relativize(server_loc.value(), my_loc.value()),
                            client_machine_,
                            member_incarnation(client_machine_)});
  start_hop(p);
}

bool ResolverClient::heal_target(PendingResolve& p) {
  if (membership_ == nullptr) return false;
  ReplicaRef& target = p.candidates[p.order[p.candidate]];
  auto my_loc = net_.location_of(endpoint_);
  if (!my_loc.is_ok()) return false;
  if (!target.machine.valid()) {
    // A machine-less route (a v2 referral target): the pid may be the old
    // address of a renamed machine — consult the rename tombstones while
    // their window is open.
    auto addressed = qualify(target.pid, my_loc.value());
    if (addressed.is_ok()) {
      if (auto renamed = membership_->renamed_machine_at(addressed.value())) {
        target.machine = *renamed;  // falls through to the rename check
      }
    }
  }
  if (!target.machine.valid()) return false;
  const MemberState state = membership_->state(target.machine);
  if (state == MemberState::kDown) {
    // The machine left the fabric: skip it without burning the timeout
    // budget, forget routes through it, and give the hop one restart
    // with candidates re-derived from the (post-handoff) authority map.
    purge_routes(target.machine);
    dead_route_skips_->inc();
    if (!p.rerouted) {
      p.rerouted = true;
      reroute_hop(p);
      return true;
    }
    fail_candidate(p, unreachable_error("routed machine left the fabric"));
    return true;
  }
  if (state == MemberState::kUnknown) return false;
  const std::uint64_t current = membership_->incarnation(target.machine);
  if (current == target.incarnation) return false;
  // The machine renamed (or rejoined) since this route was minted: every
  // address in the route predates the event. Re-derive the pid from the
  // machine's *current* server address before wasting a send on it.
  auto server = service_.server_on(target.machine);
  if (server.is_ok()) {
    if (auto loc = net_.location_of(server.value()); loc.is_ok()) {
      Pid fresh = relativize(loc.value(), my_loc.value());
      if (fresh != target.pid) {
        target.pid = fresh;
        routes_healed_->inc();
        transport_.tracer().record_in_span(p.owner_span, sim_.now(),
                                           EventKind::kRouteHealed,
                                           target.machine.value(), current);
        refresh_routes(target.machine, fresh, current);
      }
    }
  }
  target.incarnation = current;
  return false;
}

void ResolverClient::settle_waiter(Waiter& waiter,
                                   const Result<EntityId>& result) {
  if (!result.is_ok()) failures_->inc();
  if (waiter.state->span != 0) {
    transport_.tracer().close_span(waiter.state->span, sim_.now(),
                                   result.is_ok());
  }
  waiter.state->result = result;
  waiter.state->done = true;
  if (waiter.callback) waiter.callback(waiter.state->result);
}

void ResolverClient::complete(PendingResolve& p,
                              const Result<EntityId>& result) {
  if (p.timeout_event.valid()) {
    sim_.cancel(p.timeout_event);
    p.timeout_event = EventId();
  }
  if (p.expected_corr != 0) {
    corr_to_request_.erase(p.expected_corr);
    p.expected_corr = 0;
  }
  if (auto in = inflight_.find(p.key); in != inflight_.end()) {
    auto& live = in->second;
    live.erase(std::remove(live.begin(), live.end(), &p), live.end());
    if (live.empty()) inflight_.erase(in);
  }
  if (p.refresh && !result.is_ok()) {
    // A failed background renewal: stop pretending the promise holds.
    // The entry keeps serving until its plain TTL runs out (the lease-off
    // bound), and clearing the lease state stops a renewal storm against
    // an unreachable authority.
    auto cit = cache_.find(p.key);
    if (cit != cache_.end() && cit->second.lease_id != 0) {
      lease_degrades_->inc();
      transport_.tracer().record(sim_.now(), EventKind::kLeaseDegrade, 0,
                                 p.key.start.value(),
                                 cit->second.authority.valid()
                                     ? cit->second.authority.value()
                                     : 0);
      cit->second.lease_id = 0;
      cit->second.lease_expires = 0;
    }
  }
  // Extract before settling: the record must outlive this call (we are
  // running inside one of its continuations), and a callback is free to
  // submit new resolutions — including one with this very key — without
  // colliding with a half-dead entry.
  auto node = requests_.extract(p.id);
  std::vector<Waiter> waiters = std::move(p.waiters);
  for (Waiter& waiter : waiters) settle_waiter(waiter, result);
}

void ResolverClient::start_hop(PendingResolve& p) {
  // Preference order: live replicas first (stable within each class), then
  // quarantined ones as a last resort — a suspect replica is still better
  // than failing the hop outright.
  p.order.clear();
  p.order.reserve(p.candidates.size());
  for (std::size_t i = 0; i < p.candidates.size(); ++i) {
    if (!is_suspect(p.candidates[i].machine)) p.order.push_back(i);
  }
  for (std::size_t i = 0; i < p.candidates.size(); ++i) {
    if (is_suspect(p.candidates[i].machine)) p.order.push_back(i);
  }
  p.candidate = 0;
  p.hop_begin = sim_.now();
  p.failed_over = false;
  p.last_error = unreachable_error("no reachable replica for this hop");
  if (p.order.empty()) {
    complete(p, p.last_error);
    return;
  }
  begin_candidate(p);
}

void ResolverClient::begin_candidate(PendingResolve& p) {
  // Each candidate starts from the base timeout again.
  p.attempt = 0;
  p.timeout = std::max<SimDuration>(1, config_.retry.request_timeout);
  send_attempt(p);
}

void ResolverClient::send_attempt(PendingResolve& p) {
  // Membership-aware rerouting: heal or skip a stale target first. A
  // `true` return means the healing path took over (hop restarted,
  // failed over, or completed) — `p` may even be dead.
  if (heal_target(p)) return;
  Tracer& tracer = transport_.tracer();
  const ReplicaRef& target = p.candidates[p.order[p.candidate]];
  Message request;
  request.type = NsWire::kResolveRequest;
  p.expected_corr = next_corr_++;
  // Each attempt gets a fresh correlation id; bind it to the owning span
  // before the request leaves so the transport's send/drop/deliver events
  // — and the server's handling of this very id — attach to this
  // resolution.
  tracer.bind_corr(p.owner_span, p.expected_corr);
  request.trace_corr = p.expected_corr;
  if (p.attempt > 0) {
    backoff_retries_->inc();
    tracer.record_in_span(p.owner_span, sim_.now(), EventKind::kBackoffRetry,
                          p.attempt, p.timeout);
  }
  request.payload.add_u64(p.expected_corr);
  request.payload.add_u64(p.current.value());
  request.payload.add_name(p.hop_text);
  // Protocol v4/v5 flags field, only when some extension is on — a
  // plain client's requests stay byte-identical to v3.
  std::uint64_t flags = 0;
  if (config_.lease_coherence) flags |= NsWire::kFlagLeaseRequested;
  if (config_.shard_routing) flags |= NsWire::kFlagShardGlue;
  if (flags != 0) request.payload.add_u64(flags);
  corr_to_request_[p.expected_corr] = p.id;
  messages_sent_->inc();
  Status sent = transport_.send(endpoint_, target.pid, std::move(request));
  if (!sent.is_ok()) {
    // Hard failure (dead sender, unresolvable address): no point retrying
    // this candidate at all.
    corr_to_request_.erase(p.expected_corr);
    p.expected_corr = 0;
    fail_candidate(p, std::move(sent));
    return;
  }
  const std::uint64_t id = p.id;
  p.timeout_deferred = false;
  p.timeout_event =
      sim_.schedule_in(p.timeout, [this, id] { on_timeout(id); });
}

void ResolverClient::on_timeout(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;  // settled at this very tick
  PendingResolve& p = *it->second;
  // Deadline ties go to the reply: the blocking resolver drained every
  // event with timestamp <= deadline before declaring the attempt lost, so
  // a reply landing exactly at the deadline won. Reproduce that by
  // deferring once behind everything already queued at this tick — if one
  // of those events is our reply, it cancels the deferred timeout. Once
  // only: two requests expiring on the same tick would otherwise defer
  // behind each other forever, and a reply can never be *generated* at the
  // tick it is sent (the transport's minimum latency is positive).
  auto next = sim_.next_event_time();
  if (!p.timeout_deferred && next && *next == sim_.now()) {
    p.timeout_deferred = true;
    p.timeout_event = sim_.schedule_in(0, [this, id] { on_timeout(id); });
    return;
  }
  p.timeout_event = EventId();
  corr_to_request_.erase(p.expected_corr);
  timeouts_->inc();
  transport_.tracer().record_in_span(p.owner_span, sim_.now(),
                                     EventKind::kTimeout, p.expected_corr,
                                     p.timeout);
  p.expected_corr = 0;
  if (p.attempt < config_.retry.retries) {
    // Silence: the request or the reply was lost (or is slower than the
    // timeout). Back off and resend.
    auto scaled = static_cast<SimDuration>(
        static_cast<double>(p.timeout) *
        std::max(1.0, config_.retry.backoff_multiplier));
    p.timeout = config_.retry.max_timeout > 0 ? std::min(scaled, config_.retry.max_timeout)
                                        : scaled;
    ++p.attempt;
    send_attempt(p);
    return;
  }
  fail_candidate(p, unreachable_error(
                        "no reply from name server after " +
                        std::to_string(config_.retry.retries + 1) +
                        " attempt(s) (message lost or too slow)"));
}

void ResolverClient::fail_candidate(PendingResolve& p, Status error) {
  const ReplicaRef& prev = p.candidates[p.order[p.candidate]];
  if (prev.machine.valid()) {
    suspect_until_[prev.machine] = sim_.now() + config_.replica_quarantine;
  }
  p.last_error = std::move(error);
  if (p.candidate + 1 < p.order.size()) {
    // The candidate exhausted its whole backoff budget: fail over.
    ++p.candidate;
    p.failed_over = true;
    failovers_->inc();
    const ReplicaRef& next = p.candidates[p.order[p.candidate]];
    transport_.tracer().record_in_span(
        p.owner_span, sim_.now(), EventKind::kFailover,
        prev.machine.valid() ? prev.machine.value() : 0,
        next.machine.valid() ? next.machine.value() : 0);
    begin_candidate(p);
    return;
  }
  complete(p, p.last_error);
}

void ResolverClient::handle_reply(const Message& message) {
  const Payload& payload = message.payload;
  if (message.type != NsWire::kResolveReply || payload.size() < 8 ||
      payload.type_at(0) != FieldType::kU64 ||
      payload.type_at(1) != FieldType::kU64 ||
      payload.type_at(2) != FieldType::kU64 ||
      payload.type_at(3) != FieldType::kName ||
      payload.type_at(4) != FieldType::kString ||
      payload.type_at(5) != FieldType::kPid ||
      payload.type_at(6) != FieldType::kU64 ||
      payload.type_at(7) != FieldType::kU64) {
    return;
  }
  const std::uint64_t corr = payload.u64_at(0);
  auto route = corr_to_request_.find(corr);
  if (route == corr_to_request_.end()) {
    // A delayed duplicate from an earlier attempt or referral hop (or a
    // reply when nothing is outstanding). Accepting it would resolve the
    // wrong question — possibly someone else's.
    stale_replies_dropped_->inc();
    transport_.tracer().record(sim_.now(), EventKind::kStaleReplyDropped,
                               corr, endpoint_.value());
    return;
  }
  auto it = requests_.find(route->second);
  NAMECOH_CHECK(it != requests_.end(),
                "correlation id routed to a settled request");
  PendingResolve& p = *it->second;
  corr_to_request_.erase(route);
  p.expected_corr = 0;
  if (p.timeout_event.valid()) {
    sim_.cancel(p.timeout_event);
    p.timeout_event = EventId();
  }
  Reply reply;
  reply.disposition = payload.u64_at(1);
  std::uint64_t raw = payload.u64_at(2);
  reply.entity =
      raw == NsWire::kNoEntity ? EntityId::invalid() : EntityId(raw);
  reply.remaining = payload.name_at(3);
  reply.error = payload.string_at(4);
  reply.next_server = payload.pid_at(5);
  std::uint64_t auth = payload.u64_at(6);
  reply.authority =
      auth == NsWire::kNoEntity ? EntityId::invalid() : EntityId(auth);
  reply.epoch = payload.u64_at(7);
  // Protocol v3/v4/v5 tails: replica set, lease pair, glue records — in
  // that order, each present only as negotiated. A v2 peer stops at field
  // 8; a malformed tail is ignored wholesale rather than trusted.
  const ReplyTail tail = parse_reply_tail(payload, 8, config_.lease_coherence,
                                          config_.shard_routing);
  if (tail.valid) {
    reply.replicas.reserve(tail.replicas.size());
    for (const ReplyTail::Server& server : tail.replicas) {
      const MachineId machine = server.machine == NsWire::kNoMachine
                                    ? MachineId::invalid()
                                    : MachineId(server.machine);
      reply.replicas.push_back(
          ReplicaRef{server.pid, machine, member_incarnation(machine)});
    }
    reply.lease_duration = tail.lease_duration;
    reply.lease_id = tail.lease_id;
    reply.glue = tail.glue;
  }
  on_reply(p, reply);
}

void ResolverClient::handle_invalidate(const Message& message) {
  const Payload& payload = message.payload;
  if (payload.size() != 4 || payload.type_at(0) != FieldType::kU64 ||
      payload.type_at(1) != FieldType::kU64 ||
      payload.type_at(2) != FieldType::kU64 ||
      payload.type_at(3) != FieldType::kU64) {
    return;  // malformed
  }
  const std::uint64_t lease_id = payload.u64_at(0);
  EntityId ctx(payload.u64_at(1));
  const std::uint64_t epoch = payload.u64_at(2);
  const SimTime rebound_at = payload.u64_at(3);
  invalidates_received_->inc();
  transport_.tracer().record(sim_.now(), EventKind::kInvalidate, 0,
                             ctx.value(), epoch);
  // The push is an authoritative epoch announcement: raise the high-water
  // mark (covers entries the lease didn't name) and drop everything the
  // rebind superseded *now* — the whole point of the callback is closing
  // the window without waiting for the next lookup.
  note_epoch(ctx, epoch);
  for (auto it = cache_.begin(); it != cache_.end();) {
    CacheEntry& entry = it->second;
    if (entry.authority == ctx && entry.epoch < epoch) {
      stale_epoch_drops_->inc();
      lru_.erase(entry.lru);
      it = cache_.erase(it);
      continue;
    }
    // A concurrent refresh may already have cached the post-rebind answer
    // under a *new* lease; only the voided lease's state is cleared.
    if (entry.lease_id == lease_id) {
      entry.lease_id = 0;
      entry.lease_expires = 0;
    }
    ++it;
  }
  // Staleness window this push closed: rebind → the client acting on it.
  // Recorded per push (whether or not entries were still cached) — it is
  // the lease-mode analogue of "how long could I have served stale".
  if (rebound_at <= sim_.now()) {
    stale_window_->add(static_cast<double>(sim_.now() - rebound_at));
  }
}

void ResolverClient::on_reply(PendingResolve& p, const Reply& reply) {
  Tracer& tracer = transport_.tracer();
  const ReplicaRef& target = p.candidates[p.order[p.candidate]];
  if (target.machine.valid()) suspect_until_.erase(target.machine);
  if (p.failed_over) {
    failover_latency_->add(static_cast<double>(sim_.now() - p.hop_begin));
  }
  // Every reply carries the authoritative context's rebind epoch; track
  // the high-water mark so superseded cache entries die on next lookup.
  note_epoch(reply.authority, reply.epoch);
  ++p.hops_done;
  switch (reply.disposition) {
    case NsWire::kAnswer:
      if (config_.cache_ttl > 0) {
        CacheEntry entry{reply.entity, sim_.now() + config_.cache_ttl,
                         reply.authority, reply.epoch,
                         /*negative=*/false, ""};
        if (reply.lease_id != 0) {
          entry.lease_id = reply.lease_id;
          entry.lease_duration = reply.lease_duration;
          entry.lease_expires = sim_.now() + reply.lease_duration;
        }
        cache_insert(p.key, std::move(entry));
      }
      complete(p, reply.entity);
      return;
    case NsWire::kError:
      if (config_.negative_cache_ttl > 0) {
        CacheEntry entry{EntityId::invalid(),
                         sim_.now() + config_.negative_cache_ttl,
                         reply.authority, reply.epoch,
                         /*negative=*/true, reply.error};
        if (reply.lease_id != 0) {
          entry.lease_id = reply.lease_id;
          entry.lease_duration = reply.lease_duration;
          entry.lease_expires = sim_.now() + reply.lease_duration;
        }
        cache_insert(p.key, std::move(entry));
      }
      complete(p, not_found_error(reply.error));
      return;
    case NsWire::kReferral: {
      auto suffix = referral_suffix(p.remaining, reply.remaining);
      if (!suffix) {
        // The server handed back a remaining path that is not a suffix of
        // what we asked it to resolve. Forwarding it would resolve a name
        // the caller never named; fail instead.
        complete(p, internal_error("referral remaining path '" +
                                   reply.remaining +
                                   "' is not a suffix of the request"));
        return;
      }
      referrals_followed_->inc();
      tracer.record_in_span(p.owner_span, sim_.now(),
                            EventKind::kReferralFollowed,
                            reply.entity.valid() ? reply.entity.value() : 0);
      // Glue records (protocol v5): learn every delegation boundary and
      // delegate replica set the server volunteered — the chase's next
      // hop, and every later lookup into the same shard, starts with the
      // owning shard's servers instead of a blind referral target.
      if (!reply.glue.empty()) {
        delegations_chased_->inc();
        for (const ReplyTail::Glue& glue : reply.glue) {
          tracer.record_in_span(p.owner_span, sim_.now(),
                                EventKind::kDelegationChase, glue.ctx,
                                glue.shard);
          if (glue.ctx != NsWire::kNoEntity) {
            ctx_shards_[EntityId(glue.ctx)] = glue.shard;
          }
          if (glue.shard == NsWire::kNoShard || glue.servers.empty()) {
            continue;
          }
          auto& route = shard_routes_[glue.shard];
          route.clear();
          for (const ReplyTail::Server& server : glue.servers) {
            const MachineId m = server.machine == NsWire::kNoMachine
                                    ? MachineId::invalid()
                                    : MachineId(server.machine);
            route.push_back(
                ReplicaRef{server.pid, m, member_incarnation(m)});
          }
        }
      }
      p.current = reply.entity;
      p.remaining = *suffix;
      p.hop_text = p.remaining.joined();
      // The next hop's candidates: a glue-learned shard route when the
      // referred context's owning shard is known, else the referred-to
      // context's replica set from the reply tail (pids already rebased
      // by the transport); a v2 peer sends no tail, leaving the single
      // referral target.
      std::uint64_t next_shard = NsWire::kNoShard;
      if (config_.shard_routing && reply.entity.valid()) {
        auto owned = ctx_shards_.find(reply.entity);
        if (owned != ctx_shards_.end()) next_shard = owned->second;
      }
      bool routed_by_glue = false;
      if (next_shard != NsWire::kNoShard) {
        auto route = shard_routes_.find(next_shard);
        if (route != shard_routes_.end() && !route->second.empty()) {
          p.candidates = route->second;
          routed_by_glue = true;
          glue_hits_->inc();
        }
      }
      if (!routed_by_glue) {
        if (!reply.replicas.empty()) {
          p.candidates.assign(reply.replicas.begin(), reply.replicas.end());
        } else {
          p.candidates.assign(
              1, ReplicaRef{reply.next_server, MachineId::invalid()});
        }
      }
      if (config_.shard_routing) {
        if (next_shard != NsWire::kNoShard &&
            p.hop_shard != NsWire::kNoShard && next_shard != p.hop_shard) {
          cross_shard_hops_->inc();
          tracer.record_in_span(p.owner_span, sim_.now(),
                                EventKind::kCrossShardHop, p.hop_shard,
                                next_shard);
        }
        p.hop_shard = next_shard;
      }
      // The limit-breaking referral is still counted above — the chase
      // just stops here instead of sending another hop. The limit is the
      // *request's* (part of the coalescing identity), not the config's.
      if (p.hops_done == p.max_referrals + 1) {
        complete(p, depth_exceeded_error("referral chase exceeded limit"));
        return;
      }
      p.rerouted = false;  // each hop gets one membership-driven reroute
      start_hop(p);
      return;
    }
    default:
      complete(p, internal_error("unknown reply disposition"));
      return;
  }
}

ResolveHandle ResolverClient::resolve_async(EntityId start,
                                            const CompoundName& name) {
  return resolve_async_impl(start, name, config_.resolve, {});
}

ResolveHandle ResolverClient::resolve_async(EntityId start,
                                            const CompoundName& name,
                                            ResolveCallback on_done) {
  return resolve_async_impl(start, name, config_.resolve,
                            std::move(on_done));
}

ResolveHandle ResolverClient::resolve_async(EntityId start,
                                            const CompoundName& name,
                                            const ResolveOptions& options,
                                            ResolveCallback on_done) {
  return resolve_async_impl(start, name, options, std::move(on_done));
}

ResolverClient::PendingResolve* ResolverClient::launch_exchange(
    CacheKey key, std::size_t max_referrals, bool refresh, Status* error) {
  // First hop: this machine's own server (DNS-style "local recursive"),
  // then — should it stay silent — the rest of the start context's replica
  // set, straight from the authority map (the client's bootstrap
  // knowledge; later hops learn their candidates from reply replica
  // lists).
  auto local_server = service_.server_on(client_machine_);
  if (!local_server.is_ok()) {
    *error = local_server.status();
    return nullptr;
  }
  auto my_loc = net_.location_of(endpoint_);
  auto server_loc = net_.location_of(local_server.value());
  if (!my_loc.is_ok() || !server_loc.is_ok()) {
    *error = unreachable_error("client or server endpoint is dead");
    return nullptr;
  }
  const EntityId start = key.start;
  const std::uint64_t id = next_request_id_++;
  auto record = std::make_unique<PendingResolve>(id, std::move(key));
  record->max_referrals = max_referrals;
  record->refresh = refresh;
  record->current = start;
  // The unresolved tail is a slice of the *record's own* copy of the name
  // (taken only after the key settles into its heap-pinned home); each
  // referral narrows it in place, so no per-hop name copies are made.
  record->remaining = record->key.name.slice();
  record->hop_text = record->key.name.to_path();
  record->candidates = candidates_for(
      start, ReplicaRef{relativize(server_loc.value(), my_loc.value()),
                        client_machine_,
                        member_incarnation(client_machine_)});
  if (config_.shard_routing) {
    const ShardId shard = service_.authorities().shard_of(start);
    record->hop_shard = shard == AuthorityMap::kNoShard
                            ? NsWire::kNoShard
                            : static_cast<std::uint64_t>(shard);
    // Glue-learned routes outrank the bootstrap map on the first hop, the
    // same trust order the referral chase uses: what the fabric *told*
    // this client about the start context's owner wins, even if the
    // authority map has since moved on (that is what makes a post-cutover
    // stale route land on the old owner and exercise its forwarding
    // window instead of silently teleporting — docs/REBALANCING.md).
    auto owned = ctx_shards_.find(start);
    if (owned != ctx_shards_.end()) {
      record->hop_shard = owned->second;
      auto route = shard_routes_.find(owned->second);
      if (route != shard_routes_.end() && !route->second.empty()) {
        record->candidates = route->second;
        route_reuses_->inc();
      }
    }
  }
  PendingResolve& p = *record;
  requests_.emplace(id, std::move(record));
  inflight_[p.key].push_back(&p);
  return &p;
}

void ResolverClient::maybe_renew(const CacheKey& key,
                                 const CacheEntry& entry) {
  if (entry.lease_id == 0) return;
  const SimDuration margin = config_.lease_renew_margin != 0
                                 ? config_.lease_renew_margin
                                 : entry.lease_duration / 4;
  if (entry.lease_expires > sim_.now() &&
      entry.lease_expires - sim_.now() > margin) {
    return;  // plenty of term left
  }
  // An exchange for this key is already on the wire (a real lookup or an
  // earlier refresh); its answer will re-lease the entry.
  if (inflight_.contains(key)) return;
  lease_renewals_->inc();
  Status error = internal_error("unset");
  PendingResolve* p = launch_exchange(key, config_.resolve.max_referrals,
                                      /*refresh=*/true, &error);
  if (p == nullptr) return;  // can't renew now; degrade on lapse instead
  start_hop(*p);
}

ResolveHandle ResolverClient::resolve_async_impl(EntityId start,
                                                 const CompoundName& name,
                                                 const ResolveOptions& options,
                                                 ResolveCallback callback) {
  Tracer& tracer = transport_.tracer();
  auto state = std::make_shared<ResolveHandle::State>();
  // The span (and the path string it labels) exists only when tracing is
  // on; the disabled path costs one branch. Every waiter gets its own
  // span, coalesced or not — "what did this caller ask and get" stays
  // answerable per caller.
  if (tracer.enabled()) {
    state->span = tracer.open_span(sim_.now(), start.value(), name.to_path());
  }
  ResolveHandle handle(state);
  Waiter waiter{std::move(state), std::move(callback)};
  resolutions_->inc();
  if (name.front().is_root()) {
    settle_waiter(waiter,
                  invalid_argument_error(
                      "remote resolution takes names relative to a context "
                      "object; resolve the root binding locally first"));
    return handle;
  }

  CacheKey key{start, name};
  const bool use_cache =
      config_.cache_ttl > 0 || config_.negative_cache_ttl > 0;
  if (use_cache) {
    if (const CacheEntry* hit = cache_lookup(key, waiter.state->span)) {
      // Copy out of the cache before settling: the callback may resolve
      // again and rearrange the entry under the pointer.
      const CacheEntry served = *hit;
      if (served.negative) {
        negative_hits_->inc();
        tracer.record_in_span(waiter.state->span, sim_.now(),
                              EventKind::kNegativeHit, start.value());
        settle_waiter(waiter, not_found_error(served.error));
      } else {
        cache_hits_->inc();
        tracer.record_in_span(waiter.state->span, sim_.now(),
                              EventKind::kCacheHit, start.value(),
                              served.entity.value());
        settle_waiter(waiter, Result<EntityId>(served.entity));
      }
      // Re-use renews: a hit on a leased entry whose term is nearly out
      // kicks off a background refresh, after the waiter settles.
      if (config_.lease_coherence) maybe_renew(key, served);
      return handle;
    }
    cache_misses_->inc();
    tracer.record_in_span(waiter.state->span, sim_.now(),
                          EventKind::kCacheMiss, start.value());
  }

  // Coalescing: a lookup identical to one already on the wire attaches to
  // that exchange instead of duplicating it — but only when the options
  // that shape the wire outcome agree. A waiter with a different referral
  // budget attached to the owner's exchange could receive an answer its
  // own limit forbids (or a spurious limit error), so it runs its own
  // exchange instead ("coalesce_rejected"). The waiter keeps its own span
  // and callback; only the wire work is shared.
  if (auto in = inflight_.find(key); in != inflight_.end()) {
    PendingResolve* compatible = nullptr;
    for (PendingResolve* live : in->second) {
      if (live->max_referrals == options.max_referrals) {
        compatible = live;
        break;
      }
    }
    if (compatible != nullptr) {
      coalesced_->inc();
      tracer.record_in_span(waiter.state->span, sim_.now(),
                            EventKind::kCoalesced, start.value(),
                            compatible->id);
      compatible->waiters.push_back(std::move(waiter));
      return handle;
    }
    coalesce_rejected_->inc();
  }

  Status error = internal_error("unset");
  PendingResolve* p =
      launch_exchange(std::move(key), options.max_referrals,
                      /*refresh=*/false, &error);
  if (p == nullptr) {
    settle_waiter(waiter, error);
    return handle;
  }
  p->owner_span = waiter.state->span;
  p->waiters.push_back(std::move(waiter));
  start_hop(*p);
  return handle;
}

Result<EntityId> ResolverClient::resolve(EntityId start,
                                         const CompoundName& name) {
  return resolve(start, name, config_.resolve);
}

Result<EntityId> ResolverClient::resolve(EntityId start,
                                         const CompoundName& name,
                                         const ResolveOptions& options) {
  ResolveHandle handle = resolve_async(start, name, options);
  sim_.run_while([&handle] { return !handle.done(); });
  NAMECOH_CHECK(handle.done(),
                "blocking resolve stalled: the event queue drained before "
                "the reply chain completed");
  return handle.result();
}

}  // namespace namecoh
