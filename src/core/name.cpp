#include "core/name.hpp"

#include <algorithm>

namespace namecoh {

Result<Name> Name::make(std::string_view text) {
  auto id = NameTable::global().try_intern(text);
  if (!id.is_ok()) return id.status();
  return Name::from_id(id.value());
}

namespace {

/// Visit '/'-separated pieces of `text` without allocating. Adjacent
/// separators yield empty pieces (rejected by Name::make), matching the
/// historical split() behavior.
template <typename Fn>
Status for_each_piece(std::string_view text, Fn&& fn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t slash = text.find('/', start);
    const std::string_view piece =
        slash == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, slash - start);
    Status status = fn(piece);
    if (!status.is_ok()) return status;
    if (slash == std::string_view::npos) return Status::ok();
    start = slash + 1;
  }
}

std::string render_path(const Name* names, std::size_t size) {
  std::string out;
  std::size_t start = 0;
  if (names[0].is_root()) {
    out = "/";
    start = 1;
  } else if (names[0].is_cwd() && size > 1) {
    start = 1;  // drop the implicit "." when more components follow
  }
  for (std::size_t i = start; i < size; ++i) {
    if (i > start) out += '/';
    out += names[i].text();
  }
  if (out.empty()) out = names[0].text();  // "/" or "." alone
  return out;
}

}  // namespace

std::string NameSlice::to_path() const {
  if (size_ == 0) return {};
  return render_path(data_, size_);
}

std::string NameSlice::joined() const {
  std::string out;
  for (std::size_t i = 0; i < size_; ++i) {
    if (i > 0) out += '/';
    out += data_[i].text();
  }
  return out;
}

CompoundName::CompoundName(const std::vector<Name>& names)
    : names_(names.data(), names.size()) {
  NAMECOH_CHECK(!names_.empty(), "compound name must be non-empty");
}

CompoundName::CompoundName(NameSlice slice)
    : names_(slice.begin(), slice.size()) {
  NAMECOH_CHECK(!names_.empty(), "compound name must be non-empty");
}

Result<CompoundName> CompoundName::parse_path(std::string_view path) {
  if (path.empty()) {
    return invalid_argument_error("empty path");
  }
  CompoundName result{Raw{}};
  if (path.front() == '/') {
    result.names_.push_back(Name::root());
    path.remove_prefix(1);
    if (path.empty()) return result;
  } else {
    result.names_.push_back(Name::cwd());
    // "." alone parses to just the cwd binding.
    if (path == kCwdName) return result;
  }
  Status status = for_each_piece(path, [&](std::string_view piece) {
    auto name = Name::make(piece);
    if (!name.is_ok()) {
      return invalid_argument_error("bad path component in '" +
                                    std::string(path) +
                                    "': " + name.status().message());
    }
    result.names_.push_back(name.value());
    return Status::ok();
  });
  if (!status.is_ok()) return status;
  return result;
}

CompoundName CompoundName::path(std::string_view path) {
  auto parsed = parse_path(path);
  NAMECOH_CHECK(parsed.is_ok(), "bad path literal: " + std::string(path));
  return std::move(parsed).value();
}

Result<CompoundName> CompoundName::parse_relative(std::string_view path) {
  if (path.empty()) return invalid_argument_error("empty relative path");
  if (path.front() == '/') {
    return invalid_argument_error("relative path must not start with '/': '" +
                                  std::string(path) + "'");
  }
  CompoundName result{Raw{}};
  Status status = for_each_piece(path, [&](std::string_view piece) {
    auto name = Name::make(piece);
    if (!name.is_ok()) {
      return invalid_argument_error("bad component in '" + std::string(path) +
                                    "': " + name.status().message());
    }
    result.names_.push_back(name.value());
    return Status::ok();
  });
  if (!status.is_ok()) return status;
  return result;
}

CompoundName CompoundName::relative(std::string_view path) {
  auto parsed = parse_relative(path);
  NAMECOH_CHECK(parsed.is_ok(),
                "bad relative path literal: " + std::string(path));
  return std::move(parsed).value();
}

CompoundName CompoundName::rest() const {
  NAMECOH_CHECK(names_.size() >= 2, "rest() of single-component name");
  return CompoundName(slice().rest());
}

CompoundName CompoundName::parent() const {
  NAMECOH_CHECK(names_.size() >= 2, "parent() of single-component name");
  return CompoundName(slice().subslice(0, names_.size() - 1));
}

CompoundName CompoundName::append(const CompoundName& other) const {
  CompoundName result{Raw{}};
  result.names_.reserve(names_.size() + other.names_.size());
  for (const Name& n : names_) result.names_.push_back(n);
  for (const Name& n : other.names_) result.names_.push_back(n);
  return result;
}

CompoundName CompoundName::child(const Name& name) const {
  CompoundName result{Raw{}};
  result.names_.reserve(names_.size() + 1);
  for (const Name& n : names_) result.names_.push_back(n);
  result.names_.push_back(name);
  return result;
}

bool CompoundName::has_prefix(const CompoundName& prefix) const {
  if (prefix.size() > size()) return false;
  return std::equal(prefix.names_.begin(), prefix.names_.end(),
                    names_.begin());
}

Result<CompoundName> CompoundName::rebase(const CompoundName& from,
                                          const CompoundName& to) const {
  if (!has_prefix(from)) {
    return invalid_argument_error("rebase: '" + from.to_path() +
                                  "' is not a prefix of '" + to_path() + "'");
  }
  CompoundName result{Raw{}};
  result.names_.reserve(to.names_.size() + names_.size() - from.size());
  for (const Name& n : to.names_) result.names_.push_back(n);
  for (std::size_t i = from.size(); i < names_.size(); ++i) {
    result.names_.push_back(names_[i]);
  }
  return result;
}

std::string CompoundName::to_path() const {
  return render_path(names_.data(), names_.size());
}

std::strong_ordering operator<=>(const CompoundName& a,
                                 const CompoundName& b) {
  const std::size_t n = std::min(a.names_.size(), b.names_.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto cmp = a.names_[i] <=> b.names_[i];
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return a.names_.size() <=> b.names_.size();
}

}  // namespace namecoh
