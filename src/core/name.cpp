#include "core/name.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace namecoh {

Name::Name(std::string text) : text_(std::move(text)) {
  NAMECOH_CHECK(is_valid(text_), "invalid name: '" + text_ + "'");
}

bool Name::is_valid(std::string_view text) {
  if (text.empty()) return false;
  if (text == kRootName) return true;
  return text.find('/') == std::string_view::npos &&
         text.find('\0') == std::string_view::npos;
}

Result<Name> Name::make(std::string text) {
  if (!is_valid(text)) {
    return invalid_argument_error("invalid name: '" + text + "'");
  }
  return Name(Unchecked{}, std::move(text));
}

CompoundName::CompoundName(std::vector<Name> names)
    : names_(std::move(names)) {
  NAMECOH_CHECK(!names_.empty(), "compound name must be non-empty");
}

Result<CompoundName> CompoundName::parse_path(std::string_view path) {
  if (path.empty()) {
    return invalid_argument_error("empty path");
  }
  std::vector<Name> names;
  if (path.front() == '/') {
    names.emplace_back(std::string(kRootName));
    path.remove_prefix(1);
    if (path.empty()) return CompoundName(std::move(names));
  } else {
    names.emplace_back(std::string(kCwdName));
    // "." alone parses to just the cwd binding.
    if (path == kCwdName) return CompoundName(std::move(names));
  }
  for (const std::string& piece : split(path, '/')) {
    auto name = Name::make(piece);
    if (!name.is_ok()) {
      return invalid_argument_error("bad path component in '" +
                                    std::string(path) + "': " +
                                    name.status().message());
    }
    names.push_back(std::move(name).value());
  }
  return CompoundName(std::move(names));
}

CompoundName CompoundName::path(std::string_view path) {
  auto parsed = parse_path(path);
  NAMECOH_CHECK(parsed.is_ok(), "bad path literal: " + std::string(path));
  return std::move(parsed).value();
}

Result<CompoundName> CompoundName::parse_relative(std::string_view path) {
  if (path.empty()) return invalid_argument_error("empty relative path");
  if (path.front() == '/') {
    return invalid_argument_error("relative path must not start with '/': '" +
                                  std::string(path) + "'");
  }
  std::vector<Name> names;
  for (const std::string& piece : split(path, '/')) {
    auto name = Name::make(piece);
    if (!name.is_ok()) {
      return invalid_argument_error("bad component in '" + std::string(path) +
                                    "': " + name.status().message());
    }
    names.push_back(std::move(name).value());
  }
  return CompoundName(std::move(names));
}

CompoundName CompoundName::relative(std::string_view path) {
  auto parsed = parse_relative(path);
  NAMECOH_CHECK(parsed.is_ok(),
                "bad relative path literal: " + std::string(path));
  return std::move(parsed).value();
}

CompoundName CompoundName::rest() const {
  NAMECOH_CHECK(names_.size() >= 2, "rest() of single-component name");
  return CompoundName(std::vector<Name>(names_.begin() + 1, names_.end()));
}

CompoundName CompoundName::parent() const {
  NAMECOH_CHECK(names_.size() >= 2, "parent() of single-component name");
  return CompoundName(std::vector<Name>(names_.begin(), names_.end() - 1));
}

CompoundName CompoundName::append(const CompoundName& other) const {
  std::vector<Name> names = names_;
  names.insert(names.end(), other.names_.begin(), other.names_.end());
  return CompoundName(std::move(names));
}

CompoundName CompoundName::child(const Name& name) const {
  std::vector<Name> names = names_;
  names.push_back(name);
  return CompoundName(std::move(names));
}

bool CompoundName::has_prefix(const CompoundName& prefix) const {
  if (prefix.size() > size()) return false;
  return std::equal(prefix.names_.begin(), prefix.names_.end(),
                    names_.begin());
}

Result<CompoundName> CompoundName::rebase(const CompoundName& from,
                                          const CompoundName& to) const {
  if (!has_prefix(from)) {
    return invalid_argument_error("rebase: '" + from.to_path() +
                                  "' is not a prefix of '" + to_path() + "'");
  }
  std::vector<Name> names = to.names_;
  names.insert(names.end(), names_.begin() + static_cast<long>(from.size()),
               names_.end());
  return CompoundName(std::move(names));
}

std::string CompoundName::to_path() const {
  std::string out;
  std::size_t start = 0;
  if (names_.front().is_root()) {
    out = "/";
    start = 1;
  } else if (names_.front().is_cwd() && names_.size() > 1) {
    start = 1;  // drop the implicit "." when more components follow
  }
  for (std::size_t i = start; i < names_.size(); ++i) {
    if (i > start) out += '/';
    out += names_[i].text();
  }
  if (out.empty()) out = names_.front().text();  // "/" or "." alone
  return out;
}

}  // namespace namecoh
