// Entities (§2): activities (active) and objects (passive).
//
// EntityId is a strong id whose kind (activity vs object) is recorded in the
// naming graph, not in the id itself; the graph is the single source of
// truth for entity state σ(e).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

#include "util/ids.hpp"

namespace namecoh {

struct EntityTag {};
/// Identifier of an entity in a NamingGraph. The value
/// EntityId::invalid() plays the role of the paper's undefined entity ⊥E.
using EntityId = StrongId<EntityTag>;

struct ReplicaGroupTag {};
/// Identifier of a replica equivalence class (weak coherence, §5).
using ReplicaGroupId = StrongId<ReplicaGroupTag>;

enum class EntityKind : std::uint8_t {
  kActivity,       ///< performs computation, exchanges names (e.g. process)
  kDataObject,     ///< passive object whose state is data (e.g. file)
  kContextObject,  ///< passive object whose state is a context (directory)
};

std::string_view entity_kind_name(EntityKind kind);

inline std::ostream& operator<<(std::ostream& os, EntityKind kind) {
  return os << entity_kind_name(kind);
}

}  // namespace namecoh
