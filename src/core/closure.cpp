#include "core/closure.hpp"

namespace namecoh {

std::string_view name_source_name(NameSource source) {
  switch (source) {
    case NameSource::kInternal:
      return "internal";
    case NameSource::kFromActivity:
      return "from-activity";
    case NameSource::kFromObject:
      return "from-object";
  }
  return "?";
}

std::string_view rule_kind_name(RuleKind kind) {
  switch (kind) {
    case RuleKind::kByActivity:
      return "R(activity)";
    case RuleKind::kByReceiver:
      return "R(receiver)";
    case RuleKind::kBySender:
      return "R(sender)";
    case RuleKind::kByObject:
      return "R(object)";
    case RuleKind::kPerSource:
      return "R(per-source)";
  }
  return "?";
}

void ClosureTable::set_activity_context(EntityId activity,
                                        EntityId context_object) {
  NAMECOH_CHECK(activity.valid() && context_object.valid(),
                "closure assignment needs valid ids");
  activity_contexts_[activity] = context_object;
}

Result<EntityId> ClosureTable::activity_context(EntityId activity) const {
  auto it = activity_contexts_.find(activity);
  if (it == activity_contexts_.end()) {
    return not_found_error("activity has no assigned context");
  }
  return it->second;
}

bool ClosureTable::has_activity_context(EntityId activity) const {
  return activity_contexts_.contains(activity);
}

void ClosureTable::set_object_context(EntityId object,
                                      EntityId context_object) {
  NAMECOH_CHECK(object.valid() && context_object.valid(),
                "closure assignment needs valid ids");
  object_contexts_[object] = context_object;
}

Result<EntityId> ClosureTable::object_context(EntityId object) const {
  auto it = object_contexts_.find(object);
  if (it == object_contexts_.end()) {
    return not_found_error("object has no assigned context");
  }
  return it->second;
}

bool ClosureTable::has_object_context(EntityId object) const {
  return object_contexts_.contains(object);
}

void ClosureTable::clear() {
  activity_contexts_.clear();
  object_contexts_.clear();
}

Result<EntityId> ByActivityRule::select(const ClosureTable& table,
                                        const Circumstance& c) const {
  return table.activity_context(c.activity);
}

Result<EntityId> ByReceiverRule::select(const ClosureTable& table,
                                        const Circumstance& c) const {
  return table.activity_context(c.activity);
}

Result<EntityId> BySenderRule::select(const ClosureTable& table,
                                      const Circumstance& c) const {
  if (c.source == NameSource::kFromActivity && c.sender.valid()) {
    return table.activity_context(c.sender);
  }
  return table.activity_context(c.activity);
}

Result<EntityId> ByObjectRule::select(const ClosureTable& table,
                                      const Circumstance& c) const {
  if (c.source == NameSource::kFromObject && c.object.valid()) {
    return table.object_context(c.object);
  }
  return table.activity_context(c.activity);
}

PerSourceRule::PerSourceRule(
    std::shared_ptr<const ResolutionRule> internal_rule,
    std::shared_ptr<const ResolutionRule> message_rule,
    std::shared_ptr<const ResolutionRule> object_rule)
    : internal_(std::move(internal_rule)),
      message_(std::move(message_rule)),
      object_(std::move(object_rule)) {
  NAMECOH_CHECK(internal_ && message_ && object_,
                "PerSourceRule needs all three sub-rules");
}

Result<EntityId> PerSourceRule::select(const ClosureTable& table,
                                       const Circumstance& c) const {
  switch (c.source) {
    case NameSource::kInternal:
      return internal_->select(table, c);
    case NameSource::kFromActivity:
      return message_->select(table, c);
    case NameSource::kFromObject:
      return object_->select(table, c);
  }
  return internal_error("unknown name source");
}

std::shared_ptr<const ResolutionRule> make_rule(RuleKind kind) {
  static const auto by_activity = std::make_shared<const ByActivityRule>();
  static const auto by_receiver = std::make_shared<const ByReceiverRule>();
  static const auto by_sender = std::make_shared<const BySenderRule>();
  static const auto by_object = std::make_shared<const ByObjectRule>();
  switch (kind) {
    case RuleKind::kByActivity:
      return by_activity;
    case RuleKind::kByReceiver:
      return by_receiver;
    case RuleKind::kBySender:
      return by_sender;
    case RuleKind::kByObject:
      return by_object;
    case RuleKind::kPerSource:
      break;  // composite rules carry state; build via the other factory
  }
  NAMECOH_CHECK(false, "make_rule: kPerSource needs explicit sub-rules");
  return nullptr;  // unreachable
}

std::shared_ptr<const ResolutionRule> make_coherent_per_source_rule() {
  return std::make_shared<const PerSourceRule>(
      make_rule(RuleKind::kByActivity), make_rule(RuleKind::kBySender),
      make_rule(RuleKind::kByObject));
}

Resolution resolve_with_rule(const NamingGraph& graph,
                             const ClosureTable& table,
                             const ResolutionRule& rule,
                             const Circumstance& circumstance,
                             const CompoundName& name,
                             ResolveOptions options) {
  auto ctx = rule.select(table, circumstance);
  if (!ctx.is_ok()) {
    Resolution res;
    res.status = ctx.status();
    return res;
  }
  return resolve_from(graph, ctx.value(), name, options);
}

Resolution resolve_with_closure(const NamingGraph& graph,
                                const ClosureTable& table,
                                const Circumstance& circumstance,
                                const CompoundName& name,
                                ResolveOptions options) {
  const auto rule = options.closure == RuleKind::kPerSource
                        ? make_coherent_per_source_rule()
                        : make_rule(options.closure);
  return resolve_with_rule(graph, table, *rule, circumstance, name, options);
}

}  // namespace namecoh
