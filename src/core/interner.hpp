// The process-wide name interner (see docs/INTERNING.md).
//
// The paper's model never inspects the spelling of a name: resolution,
// coherence, and the §5 schemes only ever ask whether two names are *the
// same name*. That makes names perfect candidates for interning — each
// distinct spelling is stored once in a process-wide NameTable and every
// Name handle is a dense 32-bit atom (NameId), so equality and hashing are
// O(1) integer operations and a Context can key its bindings on atoms
// instead of heap strings.
//
// Properties the rest of the system relies on:
//
//   * Atoms are immortal: a NameId, once assigned, denotes the same text
//     for the life of the process, and text() references stay valid forever
//     (storage is a deque; entries never move and are never freed).
//   * Atoms are node-local: two processes intern in different orders, so a
//     NameId is meaningless outside the process that minted it. The wire
//     always carries the text; receivers re-intern on decode
//     (net/wire.hpp, docs/PROTOCOLS.md).
//   * Validation happens at intern time only: a live NameId is proof the
//     text was a valid name, so the hot paths never re-validate.
//   * The distinguished bindings "/", ".", ".." are pre-interned with fixed
//     ids, so classification (is_root etc.) is a constant compare.
//
// The table is not synchronized: the simulator and everything above it are
// single-threaded by design (see sim/simulator.hpp). A multi-threaded
// future would shard the table or add a lock on the intern path only —
// text() lookups are immutable-after-publish either way.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.hpp"

namespace namecoh {

/// Dense atom id handed out by the NameTable. Not an EntityId: atoms name
/// things, entities are things.
using NameId = std::uint32_t;

inline constexpr NameId kInvalidNameId = 0xffffffffU;

/// Fixed atoms for the distinguished bindings, pre-interned by the table
/// constructor in this order.
inline constexpr NameId kRootAtom = 0;    ///< "/"
inline constexpr NameId kCwdAtom = 1;     ///< "."
inline constexpr NameId kParentAtom = 2;  ///< ".."

/// The string ↔ atom table. One per process; use NameTable::global().
class NameTable {
 public:
  /// The process-wide table. First use constructs it (and pre-interns the
  /// reserved atoms), so it is safe to call from static initializers.
  static NameTable& global();

  /// Validity rules for a name's text: non-empty, no NUL, no '/' — except
  /// the single reserved name "/" itself.
  static bool is_valid(std::string_view text);

  /// Intern `text`, returning its atom; the same text always returns the
  /// same atom. Throws PreconditionError on invalid text (use try_intern
  /// for untrusted input).
  NameId intern(std::string_view text);

  /// Non-throwing intern for untrusted input.
  Result<NameId> try_intern(std::string_view text);

  /// The atom for `text` if it has ever been interned; never interns.
  [[nodiscard]] std::optional<NameId> find(std::string_view text) const;

  /// The text of an atom. O(1); the reference is stable for the process
  /// lifetime. Precondition: `id` was returned by intern().
  [[nodiscard]] const std::string& text(NameId id) const;

  /// Number of distinct atoms interned so far.
  [[nodiscard]] std::size_t size() const { return texts_.size(); }

 private:
  NameTable();

  NameId intern_unchecked(std::string_view text);

  // Texts are stored in a deque so element addresses are stable under
  // growth; ids_ keys are views into those stored strings.
  std::deque<std::string> texts_;
  std::unordered_map<std::string_view, NameId> ids_;
};

}  // namespace namecoh
