// The process-wide name interner (see docs/INTERNING.md).
//
// The paper's model never inspects the spelling of a name: resolution,
// coherence, and the §5 schemes only ever ask whether two names are *the
// same name*. That makes names perfect candidates for interning — each
// distinct spelling is stored once in a process-wide NameTable and every
// Name handle is a dense 32-bit atom (NameId), so equality and hashing are
// O(1) integer operations and a Context can key its bindings on atoms
// instead of heap strings.
//
// Properties the rest of the system relies on:
//
//   * Atoms are immortal: a NameId, once assigned, denotes the same text
//     for the life of the process, and text() references stay valid forever
//     (string storage never moves and is never freed).
//   * Atoms are node-local: two processes intern in different orders, so a
//     NameId is meaningless outside the process that minted it. The wire
//     always carries the text; receivers re-intern on decode
//     (net/wire.hpp, docs/PROTOCOLS.md).
//   * Validation happens at intern time only: a live NameId is proof the
//     text was a valid name, so the hot paths never re-validate.
//   * The distinguished bindings "/", ".", ".." are pre-interned with fixed
//     ids, so classification (is_root etc.) is a constant compare.
//
// Concurrency (docs/PARALLELISM.md): the table is a sharded concurrent atom
// table so pure resolution batches can intern off the simulator thread.
//   * intern()/find() route each text to one of kShardCount shards by
//     string hash; only texts that collide in a shard contend on its lock.
//   * text() is lock-free: ids index a two-level chunked slot array whose
//     chunk pointers and slot pointers are published with release stores,
//     so any id a thread legitimately holds reads its string with two
//     acquire loads and no lock. Chunks are never reallocated or freed.
//   * Ids stay dense 4-byte handles minted from one atomic counter; a
//     single-threaded intern sequence assigns exactly the ids the
//     pre-concurrent table did, which is what keeps seq-mode runs
//     bit-identical to their history.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/sharded.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Dense atom id handed out by the NameTable. Not an EntityId: atoms name
/// things, entities are things.
using NameId = std::uint32_t;

inline constexpr NameId kInvalidNameId = 0xffffffffU;

/// Fixed atoms for the distinguished bindings, pre-interned by the table
/// constructor in this order.
inline constexpr NameId kRootAtom = 0;    ///< "/"
inline constexpr NameId kCwdAtom = 1;     ///< "."
inline constexpr NameId kParentAtom = 2;  ///< ".."

/// The string ↔ atom table. One per process; use NameTable::global().
class NameTable {
 public:
  /// The process-wide table. First use constructs it (and pre-interns the
  /// reserved atoms), so it is safe to call from static initializers.
  static NameTable& global();

  /// Validity rules for a name's text: non-empty, no NUL, no '/' — except
  /// the single reserved name "/" itself.
  static bool is_valid(std::string_view text);

  /// Intern `text`, returning its atom; the same text always returns the
  /// same atom, from any thread. Throws PreconditionError on invalid text
  /// (use try_intern for untrusted input).
  NameId intern(std::string_view text);

  /// Non-throwing intern for untrusted input.
  Result<NameId> try_intern(std::string_view text);

  /// The atom for `text` if it has ever been interned; never interns.
  [[nodiscard]] std::optional<NameId> find(std::string_view text) const;

  /// The text of an atom. O(1), lock-free; the reference is stable for the
  /// process lifetime. Precondition: `id` was returned by intern().
  [[nodiscard]] const std::string& text(NameId id) const;

  /// Number of distinct atoms interned so far. Exact when quiescent; with
  /// interns in flight on other threads it may briefly count an atom whose
  /// slot is still being published.
  [[nodiscard]] std::size_t size() const {
    return next_id_.load(std::memory_order_acquire);
  }

  ~NameTable();

 private:
  // Slot storage: a two-level array so text() needs no lock. The top level
  // is a fixed array of atomic chunk pointers (allocated lazily, never
  // freed or moved); each chunk is a fixed array of atomic string
  // pointers. 4096 chunks × 4096 slots caps the table at ~16.7M atoms —
  // far beyond any workload here, and checked at mint time.
  static constexpr std::size_t kSlotChunkBits = 12;
  static constexpr std::size_t kSlotChunkSize = std::size_t{1}
                                                << kSlotChunkBits;
  static constexpr std::size_t kMaxSlotChunks = 4096;
  struct SlotChunk {
    std::array<std::atomic<const std::string*>, kSlotChunkSize> slots{};
  };

  // One shard of the string → id map. The deque owns this shard's strings
  // (stable addresses under growth); map keys are views into them.
  struct Shard {
    std::unordered_map<std::string_view, NameId> ids;
    std::deque<std::string> texts;
  };
  static constexpr std::size_t kShardCount = 16;

  NameTable();

  NameId intern_unchecked(std::string_view text);
  /// Publish `text` as the string for `id` (release), allocating the
  /// owning chunk if this id is the first in it.
  void publish(NameId id, const std::string* text);

  Sharded<Shard, kShardCount> shards_;
  std::atomic<std::uint32_t> next_id_{0};
  std::array<std::atomic<SlotChunk*>, kMaxSlotChunks> chunks_{};
  std::mutex chunk_alloc_mu_;
};

}  // namespace namecoh
