// Compound-name resolution (§2).
//
// Implements the paper's recursive definition
//   c(n1 … nk) = σ(c(n1))(n2 … nk)   when σ(c(n1)) ∈ C
//              = ⊥E                   otherwise
// as an iterative traversal of the naming graph, with a depth limit that
// guards against pathological graphs (the naming graph is a general directed
// graph and may contain cycles, e.g. the "." and ".." bindings of a file
// system).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/context.hpp"
#include "core/name.hpp"
#include "core/naming_graph.hpp"
#include "util/status.hpp"

namespace namecoh {

class Tracer;

/// Which closure rule selects the context a name is resolved in (§3); the
/// rule objects themselves live in core/closure.hpp. Declared here so
/// ResolveOptions can carry the choice as plain data.
enum class RuleKind : std::uint8_t {
  kByActivity,
  kByReceiver,
  kBySender,
  kByObject,
  kPerSource,
};

std::string_view rule_kind_name(RuleKind kind);

/// The one options struct every resolution entry point consumes — the local
/// walk (resolve/resolve_from), the closure-rule wrappers
/// (resolve_with_rule/resolve_with_closure), and the distributed
/// ResolverClient (via ResolverClientConfig::resolve). Each consumer reads
/// the fields that apply to its layer and documents the ones it ignores
/// (DESIGN.md "one options struct").
struct ResolveOptions {
  /// Maximum number of resolution steps (compound-name components
  /// processed) in the local walk. Generous default: real paths are far
  /// shorter. Ignored by the distributed client (each *server* walks under
  /// its own limit).
  std::size_t max_steps = 256;
  /// Referral-chase limit (cycle guard) for distributed resolution: how
  /// many referrals a ResolverClient follows before giving up. Ignored by
  /// the local walk, which never leaves the process.
  std::size_t max_referrals = 32;
  /// Closure rule applied by the rule-less entry point
  /// (resolve_with_closure); the explicit-rule forms ignore it.
  RuleKind closure = RuleKind::kByActivity;
  /// Optional observability sink: when set and enabled, each resolution is
  /// one span with a kResolveStep event per component consumed. Local
  /// resolution has no clock, so events are stamped at t=0. The
  /// distributed client ignores it and uses its transport's tracer.
  Tracer* tracer = nullptr;
};

/// The outcome of resolving one compound name, with the traversal trail for
/// diagnostics and path-length statistics.
struct Resolution {
  Status status;            ///< OK, NOT_FOUND, NOT_A_CONTEXT, DEPTH_EXCEEDED
  EntityId entity;          ///< valid iff status OK; else ⊥E (invalid)
  std::vector<EntityId> trail;  ///< context objects traversed, in order
  std::size_t steps = 0;    ///< components consumed

  [[nodiscard]] bool ok() const { return status.is_ok(); }

  /// Two resolutions denote the same entity (both OK, equal ids).
  [[nodiscard]] bool same_entity(const Resolution& other) const {
    return ok() && other.ok() && entity == other.entity;
  }
};

/// Resolve `name` starting from an explicit context value. `name` is a
/// borrowed slice (a CompoundName converts implicitly); it must be
/// non-empty and outlive the call.
Resolution resolve(const NamingGraph& graph, const Context& start,
                   NameSlice name, ResolveOptions options = {});

/// Resolve `name` starting from the context of a context object.
Resolution resolve_from(const NamingGraph& graph, EntityId start_context,
                        NameSlice name, ResolveOptions options = {});

}  // namespace namecoh
