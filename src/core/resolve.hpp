// Compound-name resolution (§2).
//
// Implements the paper's recursive definition
//   c(n1 … nk) = σ(c(n1))(n2 … nk)   when σ(c(n1)) ∈ C
//              = ⊥E                   otherwise
// as an iterative traversal of the naming graph, with a depth limit that
// guards against pathological graphs (the naming graph is a general directed
// graph and may contain cycles, e.g. the "." and ".." bindings of a file
// system).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/name.hpp"
#include "core/naming_graph.hpp"
#include "util/status.hpp"

namespace namecoh {

class Tracer;

struct ResolveOptions {
  /// Maximum number of resolution steps (compound-name components
  /// processed). Generous default: real paths are far shorter.
  std::size_t max_steps = 256;
  /// Optional observability sink: when set and enabled, each resolution is
  /// one span with a kResolveStep event per component consumed. Local
  /// resolution has no clock, so events are stamped at t=0.
  Tracer* tracer = nullptr;
};

/// The outcome of resolving one compound name, with the traversal trail for
/// diagnostics and path-length statistics.
struct Resolution {
  Status status;            ///< OK, NOT_FOUND, NOT_A_CONTEXT, DEPTH_EXCEEDED
  EntityId entity;          ///< valid iff status OK; else ⊥E (invalid)
  std::vector<EntityId> trail;  ///< context objects traversed, in order
  std::size_t steps = 0;    ///< components consumed

  [[nodiscard]] bool ok() const { return status.is_ok(); }

  /// Two resolutions denote the same entity (both OK, equal ids).
  [[nodiscard]] bool same_entity(const Resolution& other) const {
    return ok() && other.ok() && entity == other.entity;
  }
};

/// Resolve `name` starting from an explicit context value. `name` is a
/// borrowed slice (a CompoundName converts implicitly); it must be
/// non-empty and outlive the call.
Resolution resolve(const NamingGraph& graph, const Context& start,
                   NameSlice name, ResolveOptions options = {});

/// Resolve `name` starting from the context of a context object.
Resolution resolve_from(const NamingGraph& graph, EntityId start_context,
                        NameSlice name, ResolveOptions options = {});

}  // namespace namecoh
