// Contexts (§2): a context is a function from names to entities,
// C = [N → E]. Unbound names map to the undefined entity ⊥E, represented
// here as EntityId::invalid().
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/entity.hpp"
#include "core/name.hpp"

namespace namecoh {

/// One (name ↦ entity) pair of a context's finite support.
struct Binding {
  Name name;
  EntityId entity;

  friend bool operator==(const Binding& a, const Binding& b) {
    return a.name == b.name && a.entity == b.entity;
  }
};

/// A finite-support representation of a context function. Names outside the
/// support resolve to ⊥E.
///
/// Storage is a flat vector sorted by name atom (NameId): lookups are a
/// binary search over a contiguous array of 8-byte pairs, and equality is a
/// memcmp-shaped scan — both considerably cheaper than the node-per-binding
/// std::map this replaced. Iteration order is therefore *atom* order (intern
/// history), which is stable within a process but not lexicographic; callers
/// that need text order (directory listings, debug rendering) sort at the
/// edge. Extensional equality is unaffected: two contexts binding the same
/// names to the same entities hold identical sorted vectors.
class Context {
 public:
  Context() = default;

  /// Bind n ↦ e, replacing any previous binding. e must be valid.
  void bind(const Name& name, EntityId entity);

  /// Remove the binding for n (n ↦ ⊥E afterwards). Returns true if a
  /// binding existed.
  bool unbind(const Name& name);

  /// The paper's c(n): entity denoted by n, or ⊥E (invalid id) if unbound.
  [[nodiscard]] EntityId operator()(const Name& name) const;

  /// lookup with explicit absence signalling.
  [[nodiscard]] std::optional<EntityId> lookup(const Name& name) const;

  [[nodiscard]] bool contains(const Name& name) const;
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }
  [[nodiscard]] bool empty() const { return bindings_.empty(); }

  /// The support as a span of (name, entity) pairs, sorted by name atom.
  /// Stable for a given binding set within a process; invalidated by
  /// bind/unbind like any container view.
  [[nodiscard]] std::span<const Binding> bindings() const {
    return {bindings_.data(), bindings_.size()};
  }

  /// Monotone rebind counter: bumped by every bind/unbind that actually
  /// changes the function (a rebind to the same entity is a no-op). The
  /// name service exports it as the context's rebind *epoch*, which clients
  /// use to invalidate cached resolutions (temporal coherence, §5).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Copy every binding of `other` into this context, overwriting
  /// collisions. Used for context inheritance (parent → child, §5.1) and
  /// for per-process view construction (§6 II).
  void overlay(const Context& other);

  /// Two contexts agree on a name when they bind it to the same entity
  /// (both-unbound counts as agreement on ⊥E).
  [[nodiscard]] bool agrees_on(const Context& other, const Name& name) const;

  /// Equality is extensional: two contexts are equal iff they are the same
  /// function, regardless of how many rebinds produced them. The sorted
  /// vector is a canonical form, so this is a single pairwise scan.
  friend bool operator==(const Context& a, const Context& b) {
    return a.bindings_ == b.bindings_;
  }

  /// Debug rendering "{a -> #1, b -> #2}", sorted by name text so output
  /// is human-stable regardless of intern order.
  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Context& c);

 private:
  // Iterator to the first binding with atom >= name's (lower bound).
  [[nodiscard]] std::vector<Binding>::const_iterator find_slot(
      const Name& name) const;

  std::vector<Binding> bindings_;  // sorted by name.id(), unique
  std::uint64_t version_ = 0;
};

}  // namespace namecoh
