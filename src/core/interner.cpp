#include "core/interner.hpp"

#include <functional>

namespace namecoh {

NameTable& NameTable::global() {
  static NameTable table;
  return table;
}

NameTable::NameTable() {
  // Reserved atoms, in the fixed order promised by interner.hpp.
  NAMECOH_CHECK(intern_unchecked("/") == kRootAtom, "interner bootstrap");
  NAMECOH_CHECK(intern_unchecked(".") == kCwdAtom, "interner bootstrap");
  NAMECOH_CHECK(intern_unchecked("..") == kParentAtom, "interner bootstrap");
}

NameTable::~NameTable() {
  for (auto& chunk : chunks_) {
    delete chunk.load(std::memory_order_relaxed);
  }
}

bool NameTable::is_valid(std::string_view text) {
  if (text.empty()) return false;
  if (text == "/") return true;
  return text.find('/') == std::string_view::npos &&
         text.find('\0') == std::string_view::npos;
}

void NameTable::publish(NameId id, const std::string* text) {
  const std::size_t chunk_index = id >> kSlotChunkBits;
  NAMECOH_CHECK(chunk_index < kMaxSlotChunks, "name table full");
  SlotChunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::lock_guard lock(chunk_alloc_mu_);
    chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new SlotChunk();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
  }
  chunk->slots[id & (kSlotChunkSize - 1)].store(text,
                                                std::memory_order_release);
}

NameId NameTable::intern_unchecked(std::string_view text) {
  const std::size_t hash = std::hash<std::string_view>{}(text);
  return shards_.with(hash, [&](Shard& shard) -> NameId {
    auto it = shard.ids.find(text);
    if (it != shard.ids.end()) return it->second;
    // New atom: mint the next dense id, store the text in this shard (deque
    // addresses are stable), publish the slot so text() on other threads
    // sees it before the id can escape, then index it. Ids race across
    // shards via fetch_add, so under concurrency the id *values* depend on
    // interleaving — but atoms are node-local by contract, and a
    // single-threaded sequence assigns them in call order exactly as the
    // unsharded table did.
    const NameId id = next_id_.fetch_add(1, std::memory_order_acq_rel);
    const std::string& stored = shard.texts.emplace_back(text);
    publish(id, &stored);
    shard.ids.emplace(std::string_view(stored), id);
    return id;
  });
}

NameId NameTable::intern(std::string_view text) {
  NAMECOH_CHECK(is_valid(text), "invalid name: '" + std::string(text) + "'");
  return intern_unchecked(text);
}

Result<NameId> NameTable::try_intern(std::string_view text) {
  if (!is_valid(text)) {
    return invalid_argument_error("invalid name: '" + std::string(text) +
                                  "'");
  }
  return intern_unchecked(text);
}

std::optional<NameId> NameTable::find(std::string_view text) const {
  const std::size_t hash = std::hash<std::string_view>{}(text);
  return shards_.with(hash, [&](const Shard& shard) -> std::optional<NameId> {
    auto it = shard.ids.find(text);
    if (it == shard.ids.end()) return std::nullopt;
    return it->second;
  });
}

const std::string& NameTable::text(NameId id) const {
  NAMECOH_CHECK(id < next_id_.load(std::memory_order_acquire),
                "unknown name atom");
  const SlotChunk* chunk =
      chunks_[id >> kSlotChunkBits].load(std::memory_order_acquire);
  NAMECOH_CHECK(chunk != nullptr, "unknown name atom");
  const std::string* stored =
      chunk->slots[id & (kSlotChunkSize - 1)].load(std::memory_order_acquire);
  // An id is published before intern() returns it, so a caller holding a
  // legitimately obtained id always reads a non-null slot; null means the
  // id was guessed or corrupted.
  NAMECOH_CHECK(stored != nullptr, "unknown name atom");
  return *stored;
}

}  // namespace namecoh
