#include "core/interner.hpp"

namespace namecoh {

NameTable& NameTable::global() {
  static NameTable table;
  return table;
}

NameTable::NameTable() {
  // Reserved atoms, in the fixed order promised by interner.hpp.
  NAMECOH_CHECK(intern_unchecked("/") == kRootAtom, "interner bootstrap");
  NAMECOH_CHECK(intern_unchecked(".") == kCwdAtom, "interner bootstrap");
  NAMECOH_CHECK(intern_unchecked("..") == kParentAtom, "interner bootstrap");
}

bool NameTable::is_valid(std::string_view text) {
  if (text.empty()) return false;
  if (text == "/") return true;
  return text.find('/') == std::string_view::npos &&
         text.find('\0') == std::string_view::npos;
}

NameId NameTable::intern_unchecked(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(texts_.size());
  texts_.emplace_back(text);
  ids_.emplace(std::string_view(texts_.back()), id);
  return id;
}

NameId NameTable::intern(std::string_view text) {
  NAMECOH_CHECK(is_valid(text), "invalid name: '" + std::string(text) + "'");
  return intern_unchecked(text);
}

Result<NameId> NameTable::try_intern(std::string_view text) {
  if (!is_valid(text)) {
    return invalid_argument_error("invalid name: '" + std::string(text) +
                                  "'");
  }
  return intern_unchecked(text);
}

std::optional<NameId> NameTable::find(std::string_view text) const {
  auto it = ids_.find(text);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& NameTable::text(NameId id) const {
  NAMECOH_CHECK(id < texts_.size(), "unknown name atom");
  return texts_[id];
}

}  // namespace namecoh
