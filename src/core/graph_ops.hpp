// Whole-graph queries over the naming graph.
//
// The coherence analyzer and the schemes need structural questions answered:
// which entities can an activity reach from its context (§5: "an activity
// can access only a part of the naming graph"), what names does an entity
// have relative to a context, and a DOT dump for debugging the topologies
// of Figures 3-5.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"

namespace namecoh {

/// All entities reachable from the context of `start` by resolving compound
/// names of length <= max_depth. Includes `start` itself.
std::unordered_set<EntityId> reachable_from(const NamingGraph& graph,
                                            EntityId start,
                                            std::size_t max_depth = 64);

/// A (name, entity) pair discovered by enumeration.
struct NamedEntity {
  CompoundName name;
  EntityId entity;
};

struct EnumerateOptions {
  std::size_t max_depth = 16;      ///< maximum compound-name length
  std::size_t max_results = 100000;
  bool skip_dot_names = true;      ///< skip "." and ".." edges (fs hygiene)
  bool contexts_only = false;      ///< only report context objects
};

/// Enumerate the compound names resolvable from the context of `start`,
/// breadth-first, shortest names first. Each visited context object is
/// expanded once (via its shortest name), so the enumeration terminates on
/// cyclic graphs; an entity reachable by several routes is reported once
/// per distinct discovered name for non-context entities, and once for
/// context objects.
std::vector<NamedEntity> enumerate_names(const NamingGraph& graph,
                                         EntityId start,
                                         EnumerateOptions options = {});

/// The shortest compound name resolving to `target` from the context of
/// `start`, if any. By default "." / ".." edges are skipped; passing
/// skip_dot_names = false lets the search climb through ".." — which is
/// how names above a machine's root (Newcastle, §5.1) are discovered.
Result<CompoundName> shortest_name(const NamingGraph& graph, EntityId start,
                                   EntityId target,
                                   std::size_t max_depth = 64,
                                   bool skip_dot_names = true);

/// Graphviz DOT rendering of the naming graph (context objects as boxes,
/// data objects as ellipses, activities as diamonds).
std::string to_dot(const NamingGraph& graph);

/// Result of build_context_tree: the created directory levels (levels[0] is
/// {root}; levels[d] holds fanout^d contexts) plus construction counts.
struct TreeBuildResult {
  std::vector<std::vector<EntityId>> levels;
  std::size_t contexts_created = 0;
  std::size_t bindings_created = 0;
};

/// Build a uniform context tree under `root`: every context down to `depth`
/// gets `fanout` child contexts bound as "c0".."c{fanout-1}". Sized for
/// million-context construction (bench_x7_shard): the graph is reserved up
/// front, child labels are left empty (the binding name is the identity
/// that matters), and the name vocabulary is `fanout` interned atoms total.
/// Precondition: `root` is a context object.
TreeBuildResult build_context_tree(NamingGraph& graph, EntityId root,
                                   std::size_t fanout, std::size_t depth);

}  // namespace namecoh
