// The naming graph (§2): the global state σ of all entities.
//
// Nodes are entities; for every context object o and binding n ↦ e in its
// context σ(o), there is an edge o →(n) e. Compound-name resolution is a
// directed traversal of this graph (see resolve.hpp).
//
// The graph owns all entity state: kind, debug label, the Context of each
// context object, the byte payload and embedded names of each data object,
// and the replica group used for weak coherence (§5).
#pragma once

#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/entity.hpp"
#include "core/name.hpp"
#include "util/status.hpp"

namespace namecoh {

class NamingGraph {
 public:
  NamingGraph() = default;

  // Graphs are heavyweight and identity-bearing (ids index into them);
  // copying one by accident is almost always a bug. clone() is explicit.
  NamingGraph(const NamingGraph&) = delete;
  NamingGraph& operator=(const NamingGraph&) = delete;
  NamingGraph(NamingGraph&&) = default;
  NamingGraph& operator=(NamingGraph&&) = default;

  [[nodiscard]] NamingGraph clone() const;

  // --- Entity creation -----------------------------------------------------

  EntityId add_activity(std::string label);
  EntityId add_data_object(std::string label, std::string bytes = {});
  EntityId add_context_object(std::string label);

  // --- Entity inspection ---------------------------------------------------

  [[nodiscard]] bool contains(EntityId id) const;
  /// Precondition: contains(id).
  [[nodiscard]] EntityKind kind_of(EntityId id) const;
  [[nodiscard]] bool is_activity(EntityId id) const;
  [[nodiscard]] bool is_context_object(EntityId id) const;
  [[nodiscard]] bool is_data_object(EntityId id) const;

  [[nodiscard]] const std::string& label(EntityId id) const;
  void set_label(EntityId id, std::string label);

  [[nodiscard]] std::size_t entity_count() const { return records_.size(); }
  /// Pre-size the entity table. Million-entity construction (bench_x7)
  /// would otherwise pay repeated geometric re-allocations of a vector of
  /// non-trivial records.
  void reserve(std::size_t entities) { records_.reserve(entities); }
  [[nodiscard]] std::vector<EntityId> entities() const;
  [[nodiscard]] std::vector<EntityId> entities_of_kind(EntityKind kind) const;

  // --- Context-object state ------------------------------------------------

  /// Precondition: is_context_object(id).
  [[nodiscard]] const Context& context(EntityId id) const;
  [[nodiscard]] Context& context(EntityId id);

  /// Bind name ↦ target in the context of ctx. Fails (kInvalidArgument /
  /// kNotAContext) rather than throwing: schemes bind data-driven names.
  Status bind(EntityId ctx, const Name& name, EntityId target);
  Status unbind(EntityId ctx, const Name& name);
  /// Single-step lookup; kNotFound when unbound (the paper's ⊥E).
  [[nodiscard]] Result<EntityId> lookup(EntityId ctx, const Name& name) const;

  /// Rebind epoch of a context object: a monotone counter bumped by every
  /// effective bind/unbind, however performed (graph API or direct Context
  /// mutation). The name service stamps answers with it so caching clients
  /// can detect superseded bindings. Precondition: is_context_object(id).
  [[nodiscard]] std::uint64_t rebind_epoch(EntityId id) const;

  // --- Data-object state ---------------------------------------------------

  /// Precondition: is_data_object(id).
  [[nodiscard]] const std::string& data(EntityId id) const;
  void set_data(EntityId id, std::string bytes);

  /// Names embedded in a data object (§4 case 3, §6 Example 2). Stored as
  /// compound names; the embed module decides how they are resolved.
  [[nodiscard]] const std::vector<CompoundName>& embedded_names(
      EntityId id) const;
  void add_embedded_name(EntityId id, CompoundName name);
  void clear_embedded_names(EntityId id);

  // --- Replication (weak coherence, §5) -------------------------------------

  ReplicaGroupId new_replica_group();
  /// Precondition: id is an object (not an activity).
  void set_replica_group(EntityId id, ReplicaGroupId group);
  /// invalid() when the object is not replicated.
  [[nodiscard]] ReplicaGroupId replica_group(EntityId id) const;
  /// Same entity, or two replicas of the same replicated object.
  [[nodiscard]] bool weakly_equal(EntityId a, EntityId b) const;

  // --- Whole-graph edge view (for analysis / DOT dumps) ---------------------

  struct Edge {
    EntityId from;  ///< a context object
    Name name;      ///< edge label
    EntityId to;
  };
  [[nodiscard]] std::vector<Edge> edges() const;

 private:
  struct Record {
    EntityKind kind;
    std::string label;
    Context ctx;                           // context objects only
    std::string data;                      // data objects only
    std::vector<CompoundName> embedded;    // data objects only
    ReplicaGroupId group;                  // objects only; may be invalid
  };

  [[nodiscard]] const Record& record(EntityId id) const;
  [[nodiscard]] Record& record(EntityId id);

  std::vector<Record> records_;
  std::uint64_t next_group_ = 0;
};

}  // namespace namecoh
