#include "core/naming_graph.hpp"

namespace namecoh {

std::string_view entity_kind_name(EntityKind kind) {
  switch (kind) {
    case EntityKind::kActivity:
      return "activity";
    case EntityKind::kDataObject:
      return "data-object";
    case EntityKind::kContextObject:
      return "context-object";
  }
  return "?";
}

NamingGraph NamingGraph::clone() const {
  NamingGraph copy;
  copy.records_ = records_;
  copy.next_group_ = next_group_;
  return copy;
}

EntityId NamingGraph::add_activity(std::string label) {
  records_.push_back(Record{EntityKind::kActivity, std::move(label),
                            Context{}, std::string{}, {}, {}});
  return EntityId(records_.size() - 1);
}

EntityId NamingGraph::add_data_object(std::string label, std::string bytes) {
  records_.push_back(Record{EntityKind::kDataObject, std::move(label),
                            Context{}, std::move(bytes), {}, {}});
  return EntityId(records_.size() - 1);
}

EntityId NamingGraph::add_context_object(std::string label) {
  records_.push_back(Record{EntityKind::kContextObject, std::move(label),
                            Context{}, std::string{}, {}, {}});
  return EntityId(records_.size() - 1);
}

bool NamingGraph::contains(EntityId id) const {
  return id.valid() && id.value() < records_.size();
}

const NamingGraph::Record& NamingGraph::record(EntityId id) const {
  NAMECOH_CHECK(contains(id), "unknown entity id");
  return records_[static_cast<std::size_t>(id.value())];
}

NamingGraph::Record& NamingGraph::record(EntityId id) {
  NAMECOH_CHECK(contains(id), "unknown entity id");
  return records_[static_cast<std::size_t>(id.value())];
}

EntityKind NamingGraph::kind_of(EntityId id) const {
  return record(id).kind;
}

bool NamingGraph::is_activity(EntityId id) const {
  return contains(id) && record(id).kind == EntityKind::kActivity;
}

bool NamingGraph::is_context_object(EntityId id) const {
  return contains(id) && record(id).kind == EntityKind::kContextObject;
}

bool NamingGraph::is_data_object(EntityId id) const {
  return contains(id) && record(id).kind == EntityKind::kDataObject;
}

const std::string& NamingGraph::label(EntityId id) const {
  return record(id).label;
}

void NamingGraph::set_label(EntityId id, std::string label) {
  record(id).label = std::move(label);
}

std::vector<EntityId> NamingGraph::entities() const {
  std::vector<EntityId> out;
  out.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<EntityId> NamingGraph::entities_of_kind(EntityKind kind) const {
  std::vector<EntityId> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].kind == kind) out.emplace_back(i);
  }
  return out;
}

const Context& NamingGraph::context(EntityId id) const {
  const Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kContextObject,
                "context() on non-context entity '" + rec.label + "'");
  return rec.ctx;
}

Context& NamingGraph::context(EntityId id) {
  Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kContextObject,
                "context() on non-context entity '" + rec.label + "'");
  return rec.ctx;
}

Status NamingGraph::bind(EntityId ctx, const Name& name, EntityId target) {
  if (!contains(ctx)) return invalid_argument_error("bind: unknown context id");
  if (!contains(target)) {
    return invalid_argument_error("bind: unknown target entity");
  }
  Record& rec = record(ctx);
  if (rec.kind != EntityKind::kContextObject) {
    return not_a_context_error("bind: '" + rec.label + "' is a " +
                               std::string(entity_kind_name(rec.kind)));
  }
  rec.ctx.bind(name, target);
  return Status::ok();
}

Status NamingGraph::unbind(EntityId ctx, const Name& name) {
  if (!contains(ctx)) {
    return invalid_argument_error("unbind: unknown context id");
  }
  Record& rec = record(ctx);
  if (rec.kind != EntityKind::kContextObject) {
    return not_a_context_error("unbind: '" + rec.label + "' is a " +
                               std::string(entity_kind_name(rec.kind)));
  }
  if (!rec.ctx.unbind(name)) {
    return not_found_error("unbind: '" + name.text() + "' not bound in '" +
                           rec.label + "'");
  }
  return Status::ok();
}

Result<EntityId> NamingGraph::lookup(EntityId ctx, const Name& name) const {
  if (!contains(ctx)) {
    return invalid_argument_error("lookup: unknown context id");
  }
  const Record& rec = record(ctx);
  if (rec.kind != EntityKind::kContextObject) {
    return not_a_context_error("lookup: '" + rec.label + "' is a " +
                               std::string(entity_kind_name(rec.kind)));
  }
  auto found = rec.ctx.lookup(name);
  if (!found.has_value()) {
    return not_found_error("'" + name.text() + "' not bound in '" +
                           rec.label + "'");
  }
  return *found;
}

std::uint64_t NamingGraph::rebind_epoch(EntityId id) const {
  return context(id).version();
}

const std::string& NamingGraph::data(EntityId id) const {
  const Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kDataObject,
                "data() on non-data entity '" + rec.label + "'");
  return rec.data;
}

void NamingGraph::set_data(EntityId id, std::string bytes) {
  Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kDataObject,
                "set_data() on non-data entity '" + rec.label + "'");
  rec.data = std::move(bytes);
}

const std::vector<CompoundName>& NamingGraph::embedded_names(
    EntityId id) const {
  const Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kDataObject,
                "embedded_names() on non-data entity '" + rec.label + "'");
  return rec.embedded;
}

void NamingGraph::add_embedded_name(EntityId id, CompoundName name) {
  Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kDataObject,
                "add_embedded_name() on non-data entity '" + rec.label + "'");
  rec.embedded.push_back(std::move(name));
}

void NamingGraph::clear_embedded_names(EntityId id) {
  Record& rec = record(id);
  NAMECOH_CHECK(rec.kind == EntityKind::kDataObject,
                "clear_embedded_names() on non-data entity");
  rec.embedded.clear();
}

ReplicaGroupId NamingGraph::new_replica_group() {
  return ReplicaGroupId(next_group_++);
}

void NamingGraph::set_replica_group(EntityId id, ReplicaGroupId group) {
  Record& rec = record(id);
  NAMECOH_CHECK(rec.kind != EntityKind::kActivity,
                "activities cannot be replicated");
  rec.group = group;
}

ReplicaGroupId NamingGraph::replica_group(EntityId id) const {
  return record(id).group;
}

bool NamingGraph::weakly_equal(EntityId a, EntityId b) const {
  if (a == b) return contains(a);
  if (!contains(a) || !contains(b)) return false;
  ReplicaGroupId ga = record(a).group;
  ReplicaGroupId gb = record(b).group;
  return ga.valid() && ga == gb;
}

std::vector<NamingGraph::Edge> NamingGraph::edges() const {
  std::vector<Edge> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    if (rec.kind != EntityKind::kContextObject) continue;
    for (const auto& [name, target] : rec.ctx.bindings()) {
      out.push_back(Edge{EntityId(i), name, target});
    }
  }
  return out;
}

}  // namespace namecoh
