#include "core/context.hpp"

#include <sstream>

#include "util/status.hpp"

namespace namecoh {

void Context::bind(const Name& name, EntityId entity) {
  NAMECOH_CHECK(entity.valid(), "cannot bind '" + name.text() +
                                    "' to the undefined entity; use unbind");
  auto [it, inserted] = bindings_.try_emplace(name, entity);
  if (!inserted) {
    if (it->second == entity) return;  // same function: epoch unchanged
    it->second = entity;
  }
  ++version_;
}

bool Context::unbind(const Name& name) {
  if (bindings_.erase(name) == 0) return false;
  ++version_;
  return true;
}

EntityId Context::operator()(const Name& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? EntityId::invalid() : it->second;
}

std::optional<EntityId> Context::lookup(const Name& name) const {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

bool Context::contains(const Name& name) const {
  return bindings_.contains(name);
}

void Context::overlay(const Context& other) {
  for (const auto& [name, entity] : other.bindings_) {
    bind(name, entity);  // through bind() so the version counter advances
  }
}

bool Context::agrees_on(const Context& other, const Name& name) const {
  return (*this)(name) == other(name);
}

std::string Context::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Context& c) {
  os << '{';
  bool first = true;
  for (const auto& [name, entity] : c.bindings_) {
    if (!first) os << ", ";
    first = false;
    os << name << " -> " << entity;
  }
  return os << '}';
}

}  // namespace namecoh
