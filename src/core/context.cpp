#include "core/context.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"

namespace namecoh {

std::vector<Binding>::const_iterator Context::find_slot(
    const Name& name) const {
  return std::lower_bound(bindings_.begin(), bindings_.end(), name.id(),
                          [](const Binding& b, NameId id) {
                            return b.name.id() < id;
                          });
}

void Context::bind(const Name& name, EntityId entity) {
  NAMECOH_CHECK(entity.valid(), "cannot bind '" + name.text() +
                                    "' to the undefined entity; use unbind");
  auto it = bindings_.begin() + (find_slot(name) - bindings_.begin());
  if (it != bindings_.end() && it->name == name) {
    if (it->entity == entity) return;  // same function: epoch unchanged
    it->entity = entity;
  } else {
    bindings_.insert(it, Binding{name, entity});
  }
  ++version_;
}

bool Context::unbind(const Name& name) {
  auto it = find_slot(name);
  if (it == bindings_.end() || it->name != name) return false;
  bindings_.erase(it);
  ++version_;
  return true;
}

EntityId Context::operator()(const Name& name) const {
  auto it = find_slot(name);
  return it == bindings_.end() || it->name != name ? EntityId::invalid()
                                                   : it->entity;
}

std::optional<EntityId> Context::lookup(const Name& name) const {
  auto it = find_slot(name);
  if (it == bindings_.end() || it->name != name) return std::nullopt;
  return it->entity;
}

bool Context::contains(const Name& name) const {
  auto it = find_slot(name);
  return it != bindings_.end() && it->name == name;
}

void Context::overlay(const Context& other) {
  for (const auto& [name, entity] : other.bindings_) {
    bind(name, entity);  // through bind() so the version counter advances
  }
}

bool Context::agrees_on(const Context& other, const Name& name) const {
  return (*this)(name) == other(name);
}

std::string Context::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Context& c) {
  // Render in text order: intern-id order is an accident of history and
  // would make debug output depend on unrelated earlier code.
  std::vector<Binding> sorted(c.bindings_.begin(), c.bindings_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Binding& a,
                                             const Binding& b) {
    return a.name < b.name;
  });
  os << '{';
  bool first = true;
  for (const auto& [name, entity] : sorted) {
    if (!first) os << ", ";
    first = false;
    os << name << " -> " << entity;
  }
  return os << '}';
}

}  // namespace namecoh
