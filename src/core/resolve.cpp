#include "core/resolve.hpp"

#include "obs/tracer.hpp"

namespace namecoh {
namespace {

/// RAII span around one resolve_impl call; a no-op when no (enabled) tracer
/// is attached, so the common untraced path costs one null check.
class ResolveSpan {
 public:
  ResolveSpan(Tracer* tracer, EntityId start, NameSlice name)
      : tracer_(tracer && tracer->enabled() ? tracer : nullptr) {
    if (tracer_) {
      id_ = tracer_->open_span(0, start.valid() ? start.value() : 0,
                               name.to_path());
    }
  }
  ~ResolveSpan() {
    if (tracer_) tracer_->close_span(id_, 0, ok_);
  }
  void step(EntityId from, EntityId to) {
    if (tracer_) {
      tracer_->record_in_span(id_, 0, EventKind::kResolveStep,
                              from.valid() ? from.value() : 0,
                              to.valid() ? to.value() : 0);
    }
  }
  void set_ok(bool ok) { ok_ = ok; }

 private:
  Tracer* tracer_;
  std::uint64_t id_ = 0;
  bool ok_ = false;
};

Resolution resolve_impl(const NamingGraph& graph, const Context* start_ctx,
                        EntityId start_obj, NameSlice name,
                        const ResolveOptions& options) {
  ResolveSpan span(options.tracer, start_obj, name);
  Resolution res;
  // One interior context per component (plus the start): size the trail
  // once instead of growing it hop by hop.
  res.trail.reserve(name.size() + 1);
  const Context* ctx = start_ctx;
  if (!ctx) {
    if (!graph.is_context_object(start_obj)) {
      res.status = not_a_context_error("resolution must start in a context");
      return res;
    }
    ctx = &graph.context(start_obj);
    res.trail.push_back(start_obj);
  }

  for (std::size_t i = 0; i < name.size(); ++i) {
    if (res.steps >= options.max_steps) {
      res.status = depth_exceeded_error("resolution exceeded " +
                                        std::to_string(options.max_steps) +
                                        " steps at '" + name.to_path() + "'");
      return res;
    }
    ++res.steps;

    EntityId next = (*ctx)(name[i]);
    if (!next.valid()) {
      res.status = not_found_error("'" + name[i].text() +
                                   "' unbound while resolving '" +
                                   name.to_path() + "'");
      return res;
    }
    span.step(res.trail.empty() ? EntityId::invalid() : res.trail.back(),
              next);
    if (i + 1 == name.size()) {
      // Last component: any entity is a legal result.
      res.entity = next;
      res.status = Status::ok();
      span.set_ok(true);
      return res;
    }
    // Interior component: σ(next) must be a context to continue.
    if (!graph.is_context_object(next)) {
      res.status = not_a_context_error(
          "'" + name[i].text() + "' denotes a non-context entity " +
          "while resolving '" + name.to_path() + "'");
      return res;
    }
    ctx = &graph.context(next);
    res.trail.push_back(next);
  }
  res.status = internal_error("unreachable: empty compound name");
  return res;
}

}  // namespace

Resolution resolve(const NamingGraph& graph, const Context& start,
                   NameSlice name, ResolveOptions options) {
  return resolve_impl(graph, &start, EntityId::invalid(), name, options);
}

Resolution resolve_from(const NamingGraph& graph, EntityId start_context,
                        NameSlice name, ResolveOptions options) {
  return resolve_impl(graph, nullptr, start_context, name, options);
}

}  // namespace namecoh
