// Closure mechanisms (§3): the implicit rules that select the context in
// which a name is resolved.
//
// A name never arrives alone; it arrives in a *circumstance* — who is
// resolving it and where it came from (Fig. 1's three sources: generated
// internally, received from another activity, read from an object). The
// paper models the choice as a resolution rule R ∈ [M → C] over the meta
// context M of circumstances. Here:
//
//   * Circumstance  — one element of M,
//   * ClosureTable  — the system-maintained assignments R(a) and R(o)
//                     (each activity's context, each object's context),
//   * ResolutionRule — a strategy choosing which assignment applies:
//       ByActivity  R(a):        always the resolver's own context
//       ByReceiver  R(receiver): synonym of ByActivity for message names,
//                                kept distinct so experiments can report it
//       BySender    R(sender):   for message names, the sender's context
//       ByObject    R(o):        for embedded names, the source object's
//                                context
//       PerSource   composite:   an independently chosen rule per source,
//                                the form real schemes take (§6)
//
// Contexts are identified by the context *object* holding them, so rules
// return an EntityId of a context object; resolve_with_rule() then runs the
// ordinary resolver in that context.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Where a name came from (Fig. 1).
enum class NameSource : std::uint8_t {
  kInternal,      ///< generated inside the resolving activity (or by a user)
  kFromActivity,  ///< received in a message from another activity
  kFromObject,    ///< read from a (data) object that contains the name
};

std::string_view name_source_name(NameSource source);

/// One element of the meta context M: the circumstances in which a name
/// occurs. Construct via the factories to keep the invariants (sender only
/// for message names, object only for embedded names) straight.
struct Circumstance {
  EntityId activity;       ///< the activity performing the resolution
  NameSource source = NameSource::kInternal;
  EntityId sender;         ///< valid iff source == kFromActivity
  EntityId object;         ///< valid iff source == kFromObject

  static Circumstance internal(EntityId activity) {
    return Circumstance{activity, NameSource::kInternal, {}, {}};
  }
  static Circumstance from_message(EntityId receiver, EntityId sender) {
    return Circumstance{receiver, NameSource::kFromActivity, sender, {}};
  }
  static Circumstance from_object(EntityId activity, EntityId object) {
    return Circumstance{activity, NameSource::kFromObject, {}, object};
  }
};

/// The system-maintained context assignments. The paper notes that R(a)
/// "does not mean that a separate context is stored for each activity" —
/// here multiple activities may share one context object.
class ClosureTable {
 public:
  /// Assign activity → context object (its R(a)).
  void set_activity_context(EntityId activity, EntityId context_object);
  [[nodiscard]] Result<EntityId> activity_context(EntityId activity) const;
  [[nodiscard]] bool has_activity_context(EntityId activity) const;

  /// Assign object → context object (its R(o)); e.g. the directory whose
  /// scope governs names embedded in a file.
  void set_object_context(EntityId object, EntityId context_object);
  [[nodiscard]] Result<EntityId> object_context(EntityId object) const;
  [[nodiscard]] bool has_object_context(EntityId object) const;

  void clear();

 private:
  std::unordered_map<EntityId, EntityId> activity_contexts_;
  std::unordered_map<EntityId, EntityId> object_contexts_;
};

// RuleKind (and rule_kind_name) moved to core/resolve.hpp so the unified
// ResolveOptions can carry the closure choice; this header re-exports them
// through its include of resolve.hpp.

/// A resolution rule R ∈ [M → C]. Stateless; the state lives in the
/// ClosureTable.
class ResolutionRule {
 public:
  virtual ~ResolutionRule() = default;

  /// Select the context object whose context resolves names occurring in
  /// the given circumstance.
  [[nodiscard]] virtual Result<EntityId> select(
      const ClosureTable& table, const Circumstance& circumstance) const = 0;

  [[nodiscard]] virtual RuleKind kind() const = 0;
  [[nodiscard]] std::string_view name() const {
    return rule_kind_name(kind());
  }
};

/// R(a): resolve in the context of the activity performing the resolution.
class ByActivityRule final : public ResolutionRule {
 public:
  [[nodiscard]] Result<EntityId> select(
      const ClosureTable& table, const Circumstance& c) const override;
  [[nodiscard]] RuleKind kind() const override {
    return RuleKind::kByActivity;
  }
};

/// R(receiver): identical selection to R(a); a distinct rule object so
/// reports can name the rule the paper discusses for exchanged names.
class ByReceiverRule final : public ResolutionRule {
 public:
  [[nodiscard]] Result<EntityId> select(
      const ClosureTable& table, const Circumstance& c) const override;
  [[nodiscard]] RuleKind kind() const override {
    return RuleKind::kByReceiver;
  }
};

/// R(sender): for names received in messages, resolve in the sender's
/// context; other sources fall back to the resolver's context.
class BySenderRule final : public ResolutionRule {
 public:
  [[nodiscard]] Result<EntityId> select(
      const ClosureTable& table, const Circumstance& c) const override;
  [[nodiscard]] RuleKind kind() const override { return RuleKind::kBySender; }
};

/// R(object): for names obtained from an object, resolve in the context
/// associated with that object; other sources fall back to the resolver's
/// context.
class ByObjectRule final : public ResolutionRule {
 public:
  [[nodiscard]] Result<EntityId> select(
      const ClosureTable& table, const Circumstance& c) const override;
  [[nodiscard]] RuleKind kind() const override { return RuleKind::kByObject; }
};

/// Composite rule with an independent choice per name source — the shape §6
/// recommends (R(a) for internal names, R(sender) for exchanged names,
/// R(object) for embedded names).
class PerSourceRule final : public ResolutionRule {
 public:
  PerSourceRule(std::shared_ptr<const ResolutionRule> internal_rule,
                std::shared_ptr<const ResolutionRule> message_rule,
                std::shared_ptr<const ResolutionRule> object_rule);

  [[nodiscard]] Result<EntityId> select(
      const ClosureTable& table, const Circumstance& c) const override;
  [[nodiscard]] RuleKind kind() const override {
    return RuleKind::kPerSource;
  }

 private:
  std::shared_ptr<const ResolutionRule> internal_;
  std::shared_ptr<const ResolutionRule> message_;
  std::shared_ptr<const ResolutionRule> object_;
};

/// Factory for the basic rules (shared, stateless singletons).
std::shared_ptr<const ResolutionRule> make_rule(RuleKind kind);

/// The paper's recommended composite: internal → R(a), message → R(sender),
/// embedded → R(object).
std::shared_ptr<const ResolutionRule> make_coherent_per_source_rule();

/// Resolve a name under a rule: select the context for the circumstance,
/// then run the ordinary resolver in it.
Resolution resolve_with_rule(const NamingGraph& graph,
                             const ClosureTable& table,
                             const ResolutionRule& rule,
                             const Circumstance& circumstance,
                             const CompoundName& name,
                             ResolveOptions options = {});

/// Rule-less form: the rule is named by `options.closure` instead of passed
/// as an object, so callers that already carry a ResolveOptions need no
/// second rule-shaped parameter (the "one options struct" entry point;
/// DESIGN.md).
Resolution resolve_with_closure(const NamingGraph& graph,
                                const ClosureTable& table,
                                const Circumstance& circumstance,
                                const CompoundName& name,
                                ResolveOptions options = {});

}  // namespace namecoh
