#include "core/graph_ops.hpp"

#include <deque>
#include <sstream>

namespace namecoh {

std::unordered_set<EntityId> reachable_from(const NamingGraph& graph,
                                            EntityId start,
                                            std::size_t max_depth) {
  std::unordered_set<EntityId> seen;
  if (!graph.is_context_object(start)) return seen;
  seen.insert(start);
  std::deque<std::pair<EntityId, std::size_t>> frontier;
  frontier.emplace_back(start, 0);
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_depth) continue;
    for (const auto& [name, target] : graph.context(node).bindings()) {
      if (!graph.contains(target)) continue;
      if (seen.insert(target).second && graph.is_context_object(target)) {
        frontier.emplace_back(target, depth + 1);
      }
    }
  }
  return seen;
}

std::vector<NamedEntity> enumerate_names(const NamingGraph& graph,
                                         EntityId start,
                                         EnumerateOptions options) {
  std::vector<NamedEntity> out;
  if (!graph.is_context_object(start)) return out;

  std::unordered_set<EntityId> expanded;
  expanded.insert(start);
  // Frontier of context objects to expand, each with the name that reached
  // it (empty optional for the start context: names begin at its bindings).
  struct Item {
    EntityId ctx;
    std::vector<Name> prefix;
  };
  std::deque<Item> frontier;
  frontier.push_back(Item{start, {}});

  while (!frontier.empty() && out.size() < options.max_results) {
    Item item = std::move(frontier.front());
    frontier.pop_front();
    for (const auto& [name, target] : graph.context(item.ctx).bindings()) {
      if (options.skip_dot_names && (name.is_cwd() || name.is_parent())) {
        continue;
      }
      if (!graph.contains(target)) continue;
      std::vector<Name> full = item.prefix;
      full.push_back(name);
      bool is_ctx = graph.is_context_object(target);
      if (!options.contexts_only || is_ctx) {
        out.push_back(NamedEntity{CompoundName(full), target});
        if (out.size() >= options.max_results) break;
      }
      if (is_ctx && full.size() < options.max_depth &&
          expanded.insert(target).second) {
        frontier.push_back(Item{target, std::move(full)});
      }
    }
  }
  return out;
}

Result<CompoundName> shortest_name(const NamingGraph& graph, EntityId start,
                                   EntityId target, std::size_t max_depth,
                                   bool skip_dot_names) {
  if (!graph.is_context_object(start)) {
    return not_a_context_error("shortest_name: start is not a context");
  }
  struct Item {
    EntityId ctx;
    std::vector<Name> prefix;
  };
  std::unordered_set<EntityId> expanded;
  expanded.insert(start);
  std::deque<Item> frontier;
  frontier.push_back(Item{start, {}});
  while (!frontier.empty()) {
    Item item = std::move(frontier.front());
    frontier.pop_front();
    for (const auto& [name, bound] : graph.context(item.ctx).bindings()) {
      if (skip_dot_names && (name.is_cwd() || name.is_parent())) continue;
      if (!skip_dot_names && name.is_cwd()) continue;  // "." never helps
      std::vector<Name> full = item.prefix;
      full.push_back(name);
      if (bound == target) return CompoundName(std::move(full));
      if (graph.is_context_object(bound) && full.size() < max_depth &&
          expanded.insert(bound).second) {
        frontier.push_back(Item{bound, std::move(full)});
      }
    }
  }
  return not_found_error("no name for target entity from given context");
}

std::string to_dot(const NamingGraph& graph) {
  std::ostringstream os;
  os << "digraph naming {\n";
  for (EntityId id : graph.entities()) {
    os << "  n" << id.value() << " [label=\"" << graph.label(id) << "\"";
    switch (graph.kind_of(id)) {
      case EntityKind::kContextObject:
        os << ", shape=box";
        break;
      case EntityKind::kDataObject:
        os << ", shape=ellipse";
        break;
      case EntityKind::kActivity:
        os << ", shape=diamond";
        break;
    }
    os << "];\n";
  }
  for (const auto& edge : graph.edges()) {
    os << "  n" << edge.from.value() << " -> n" << edge.to.value()
       << " [label=\"" << edge.name.text() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

TreeBuildResult build_context_tree(NamingGraph& graph, EntityId root,
                                   std::size_t fanout, std::size_t depth) {
  NAMECOH_CHECK(graph.is_context_object(root),
                "build_context_tree: root is not a context object");
  NAMECOH_CHECK(fanout > 0, "build_context_tree: fanout must be positive");
  TreeBuildResult result;
  result.levels.push_back({root});
  if (depth == 0) return result;
  // fanout^depth new contexts in the last level alone; reserve the whole
  // count up front so a million-entity build is one allocation, not a
  // re-allocation cascade.
  std::size_t to_create = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    level_size *= fanout;
    to_create += level_size;
  }
  graph.reserve(graph.entity_count() + to_create);
  // The whole tree shares one fanout-sized name vocabulary: interning
  // keeps every binding an atom reference, not a string copy.
  std::vector<Name> names;
  names.reserve(fanout);
  for (std::size_t c = 0; c < fanout; ++c) {
    auto name = Name::make("c" + std::to_string(c));
    NAMECOH_CHECK(name.is_ok(), "build_context_tree: bad child name");
    names.push_back(std::move(name).value());
  }
  for (std::size_t d = 0; d < depth; ++d) {
    const std::vector<EntityId>& parents = result.levels.back();
    std::vector<EntityId> children;
    children.reserve(parents.size() * fanout);
    for (EntityId parent : parents) {
      for (std::size_t c = 0; c < fanout; ++c) {
        // Empty labels: the binding name is the identity that matters,
        // and a million label strings would dominate the footprint.
        const EntityId child = graph.add_context_object("");
        NAMECOH_CHECK(graph.bind(parent, names[c], child).is_ok(),
                      "build_context_tree: bind failed");
        children.push_back(child);
        ++result.contexts_created;
        ++result.bindings_created;
      }
    }
    result.levels.push_back(std::move(children));
  }
  return result;
}

}  // namespace namecoh
