#include "core/graph_ops.hpp"

#include <deque>
#include <sstream>

namespace namecoh {

std::unordered_set<EntityId> reachable_from(const NamingGraph& graph,
                                            EntityId start,
                                            std::size_t max_depth) {
  std::unordered_set<EntityId> seen;
  if (!graph.is_context_object(start)) return seen;
  seen.insert(start);
  std::deque<std::pair<EntityId, std::size_t>> frontier;
  frontier.emplace_back(start, 0);
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_depth) continue;
    for (const auto& [name, target] : graph.context(node).bindings()) {
      if (!graph.contains(target)) continue;
      if (seen.insert(target).second && graph.is_context_object(target)) {
        frontier.emplace_back(target, depth + 1);
      }
    }
  }
  return seen;
}

std::vector<NamedEntity> enumerate_names(const NamingGraph& graph,
                                         EntityId start,
                                         EnumerateOptions options) {
  std::vector<NamedEntity> out;
  if (!graph.is_context_object(start)) return out;

  std::unordered_set<EntityId> expanded;
  expanded.insert(start);
  // Frontier of context objects to expand, each with the name that reached
  // it (empty optional for the start context: names begin at its bindings).
  struct Item {
    EntityId ctx;
    std::vector<Name> prefix;
  };
  std::deque<Item> frontier;
  frontier.push_back(Item{start, {}});

  while (!frontier.empty() && out.size() < options.max_results) {
    Item item = std::move(frontier.front());
    frontier.pop_front();
    for (const auto& [name, target] : graph.context(item.ctx).bindings()) {
      if (options.skip_dot_names && (name.is_cwd() || name.is_parent())) {
        continue;
      }
      if (!graph.contains(target)) continue;
      std::vector<Name> full = item.prefix;
      full.push_back(name);
      bool is_ctx = graph.is_context_object(target);
      if (!options.contexts_only || is_ctx) {
        out.push_back(NamedEntity{CompoundName(full), target});
        if (out.size() >= options.max_results) break;
      }
      if (is_ctx && full.size() < options.max_depth &&
          expanded.insert(target).second) {
        frontier.push_back(Item{target, std::move(full)});
      }
    }
  }
  return out;
}

Result<CompoundName> shortest_name(const NamingGraph& graph, EntityId start,
                                   EntityId target, std::size_t max_depth,
                                   bool skip_dot_names) {
  if (!graph.is_context_object(start)) {
    return not_a_context_error("shortest_name: start is not a context");
  }
  struct Item {
    EntityId ctx;
    std::vector<Name> prefix;
  };
  std::unordered_set<EntityId> expanded;
  expanded.insert(start);
  std::deque<Item> frontier;
  frontier.push_back(Item{start, {}});
  while (!frontier.empty()) {
    Item item = std::move(frontier.front());
    frontier.pop_front();
    for (const auto& [name, bound] : graph.context(item.ctx).bindings()) {
      if (skip_dot_names && (name.is_cwd() || name.is_parent())) continue;
      if (!skip_dot_names && name.is_cwd()) continue;  // "." never helps
      std::vector<Name> full = item.prefix;
      full.push_back(name);
      if (bound == target) return CompoundName(std::move(full));
      if (graph.is_context_object(bound) && full.size() < max_depth &&
          expanded.insert(bound).second) {
        frontier.push_back(Item{bound, std::move(full)});
      }
    }
  }
  return not_found_error("no name for target entity from given context");
}

std::string to_dot(const NamingGraph& graph) {
  std::ostringstream os;
  os << "digraph naming {\n";
  for (EntityId id : graph.entities()) {
    os << "  n" << id.value() << " [label=\"" << graph.label(id) << "\"";
    switch (graph.kind_of(id)) {
      case EntityKind::kContextObject:
        os << ", shape=box";
        break;
      case EntityKind::kDataObject:
        os << ", shape=ellipse";
        break;
      case EntityKind::kActivity:
        os << ", shape=diamond";
        break;
    }
    os << "];\n";
  }
  for (const auto& edge : graph.edges()) {
    os << "  n" << edge.from.value() << " -> n" << edge.to.value()
       << " [label=\"" << edge.name.text() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace namecoh
