// Names and compound names (§2 of Radia & Pachl).
//
// A Name is an atomic identifier. A CompoundName is a non-empty sequence of
// names (the paper's N+), resolved step-by-step through context objects.
//
// Path syntax: the library follows the paper's Unix discussion. A process
// context holds two distinguished bindings, kRootName ("/") for the root
// directory and kCwdName (".") for the working directory. Parsing the path
// string "/a/b" yields the compound name ⟨"/", "a", "b"⟩ and "a/b" yields
// ⟨".", "a", "b"⟩ — after that the resolver is entirely uniform and knows
// nothing about path syntax. "." and ".." inside directories are ordinary
// bindings installed by the file-system layer, which is exactly what lets
// the Newcastle Connection (§5.1) give '..'-above-root its meaning with no
// resolver changes.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Distinguished binding names used by process contexts and directories.
inline constexpr std::string_view kRootName = "/";
inline constexpr std::string_view kCwdName = ".";
inline constexpr std::string_view kParentName = "..";

/// An atomic name. Valid names are non-empty, contain no NUL and no '/'
/// — except the single reserved name "/" itself (the root binding).
class Name {
 public:
  /// Throws PreconditionError on invalid text; use validate() + make() when
  /// the text comes from untrusted input.
  explicit Name(std::string text);
  Name(const char* text) : Name(std::string(text)) {}  // NOLINT: ergonomics

  /// Validity check without construction.
  static bool is_valid(std::string_view text);
  /// Non-throwing factory.
  static Result<Name> make(std::string text);

  [[nodiscard]] const std::string& text() const { return text_; }

  [[nodiscard]] bool is_root() const { return text_ == kRootName; }
  [[nodiscard]] bool is_cwd() const { return text_ == kCwdName; }
  [[nodiscard]] bool is_parent() const { return text_ == kParentName; }

  friend auto operator<=>(const Name& a, const Name& b) {
    return a.text_ <=> b.text_;
  }
  friend bool operator==(const Name& a, const Name& b) = default;

  friend std::ostream& operator<<(std::ostream& os, const Name& n) {
    return os << n.text_;
  }

 private:
  struct Unchecked {};
  Name(Unchecked, std::string text) : text_(std::move(text)) {}
  std::string text_;
  friend class CompoundName;
};

/// A non-empty sequence of names (the paper's N+). Immutable value type.
class CompoundName {
 public:
  CompoundName(std::initializer_list<Name> names)
      : CompoundName(std::vector<Name>(names)) {}
  explicit CompoundName(std::vector<Name> names);

  /// Parse a Unix-style path string per the convention documented above.
  ///  "/a/b"  -> ⟨"/", "a", "b"⟩        (absolute)
  ///  "a/b"   -> ⟨".", "a", "b"⟩        (relative; "." prepended)
  ///  "/"     -> ⟨"/"⟩
  ///  "."     -> ⟨"."⟩
  ///  "../x"  -> ⟨".", "..", "x"⟩
  /// Empty strings and empty components ("a//b") are invalid.
  static Result<CompoundName> parse_path(std::string_view path);

  /// Parse, throwing on invalid input. For literals in tests/examples.
  static CompoundName path(std::string_view path);

  /// Parse a bare component sequence: "a/p" -> ⟨"a","p"⟩ with NO implicit
  /// "." prefix and no leading '/'. This is the form names embedded in
  /// files take (§6 Example 2): the first component is what the Algol-scope
  /// search looks for in ancestor directories, so it must not be hidden
  /// behind a "." binding.
  static Result<CompoundName> parse_relative(std::string_view path);
  /// Throwing variant for literals.
  static CompoundName relative(std::string_view path);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const Name& at(std::size_t i) const { return names_.at(i); }
  [[nodiscard]] const Name& front() const { return names_.front(); }
  [[nodiscard]] const Name& back() const { return names_.back(); }
  [[nodiscard]] std::span<const Name> components() const { return names_; }

  [[nodiscard]] bool is_absolute() const { return names_.front().is_root(); }

  /// The name without its first component; requires size() >= 2.
  [[nodiscard]] CompoundName rest() const;
  /// The name without its last component; requires size() >= 2.
  [[nodiscard]] CompoundName parent() const;
  /// Concatenation ⟨this..., other...⟩.
  [[nodiscard]] CompoundName append(const CompoundName& other) const;
  /// Concatenation ⟨this..., name⟩.
  [[nodiscard]] CompoundName child(const Name& name) const;

  /// True if `prefix` is a (not necessarily proper) prefix of this name.
  [[nodiscard]] bool has_prefix(const CompoundName& prefix) const;

  /// Replace the prefix `from` with `to`; error if `from` is not a prefix.
  /// This is the §7 "human mapping rule" (/users -> /org2/users) made
  /// mechanical.
  [[nodiscard]] Result<CompoundName> rebase(const CompoundName& from,
                                            const CompoundName& to) const;

  /// Render back to path syntax: ⟨"/","a","b"⟩ -> "/a/b",
  /// ⟨".","a"⟩ -> "a", ⟨"x","y"⟩ -> "x/y".
  [[nodiscard]] std::string to_path() const;

  friend auto operator<=>(const CompoundName& a, const CompoundName& b) {
    return a.names_ <=> b.names_;
  }
  friend bool operator==(const CompoundName& a,
                         const CompoundName& b) = default;

  friend std::ostream& operator<<(std::ostream& os, const CompoundName& n) {
    return os << n.to_path();
  }

 private:
  std::vector<Name> names_;
};

}  // namespace namecoh

template <>
struct std::hash<namecoh::Name> {
  std::size_t operator()(const namecoh::Name& n) const noexcept {
    return std::hash<std::string>{}(n.text());
  }
};

template <>
struct std::hash<namecoh::CompoundName> {
  std::size_t operator()(const namecoh::CompoundName& n) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const auto& part : n.components()) {
      namecoh::hash_combine(h, part);
    }
    return h;
  }
};
