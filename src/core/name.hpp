// Names and compound names (§2 of Radia & Pachl).
//
// A Name is an atomic identifier. A CompoundName is a non-empty sequence of
// names (the paper's N+), resolved step-by-step through context objects.
//
// Names are *interned*: a Name is a trivially-copyable 32-bit handle (a
// NameId atom) into the process-wide NameTable (core/interner.hpp), so name
// equality, hashing, and classification are O(1) integer operations and the
// text is validated exactly once, at intern time. A CompoundName stores its
// atoms inline (SmallVec) and NameSlice provides a non-owning view over a
// component subsequence, so resolution and referral forwarding never copy
// suffixes. Atoms are node-local; the wire always carries text
// (docs/INTERNING.md).
//
// Path syntax: the library follows the paper's Unix discussion. A process
// context holds two distinguished bindings, kRootName ("/") for the root
// directory and kCwdName (".") for the working directory. Parsing the path
// string "/a/b" yields the compound name ⟨"/", "a", "b"⟩ and "a/b" yields
// ⟨".", "a", "b"⟩ — after that the resolver is entirely uniform and knows
// nothing about path syntax. "." and ".." inside directories are ordinary
// bindings installed by the file-system layer, which is exactly what lets
// the Newcastle Connection (§5.1) give '..'-above-root its meaning with no
// resolver changes.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/interner.hpp"
#include "util/hash.hpp"
#include "util/small_vec.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Distinguished binding names used by process contexts and directories.
inline constexpr std::string_view kRootName = "/";
inline constexpr std::string_view kCwdName = ".";
inline constexpr std::string_view kParentName = "..";

/// An atomic name: a 32-bit handle onto an interned atom. Valid names are
/// non-empty, contain no NUL and no '/' — except the single reserved name
/// "/" itself (the root binding). Copying a Name copies an integer.
class Name {
 public:
  /// Interns the text. Throws PreconditionError on invalid text; use
  /// validate() + make() when the text comes from untrusted input.
  explicit Name(std::string_view text)
      : id_(NameTable::global().intern(text)) {}
  Name(const char* text) : Name(std::string_view(text)) {}  // NOLINT: ergonomics

  /// Validity check without construction (or interning).
  static bool is_valid(std::string_view text) {
    return NameTable::is_valid(text);
  }
  /// Non-throwing factory.
  static Result<Name> make(std::string_view text);

  /// Wrap an atom already minted by the NameTable.
  static Name from_id(NameId id) { return Name(id, Unchecked{}); }

  /// The distinguished atoms, without a table probe.
  static Name root() { return from_id(kRootAtom); }
  static Name cwd() { return from_id(kCwdAtom); }
  static Name parent() { return from_id(kParentAtom); }

  [[nodiscard]] NameId id() const { return id_; }
  [[nodiscard]] const std::string& text() const {
    return NameTable::global().text(id_);
  }

  [[nodiscard]] bool is_root() const { return id_ == kRootAtom; }
  [[nodiscard]] bool is_cwd() const { return id_ == kCwdAtom; }
  [[nodiscard]] bool is_parent() const { return id_ == kParentAtom; }

  /// Ordering is lexicographic on the text (atoms are spelling-blind, so id
  /// order would be an accident of intern history); equality is an O(1)
  /// atom compare — text equality ⇔ atom equality by construction.
  friend std::strong_ordering operator<=>(const Name& a, const Name& b) {
    if (a.id_ == b.id_) return std::strong_ordering::equal;
    return a.text().compare(b.text()) < 0 ? std::strong_ordering::less
                                          : std::strong_ordering::greater;
  }
  friend bool operator==(const Name& a, const Name& b) {
    return a.id_ == b.id_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Name& n) {
    return os << n.text();
  }

 private:
  struct Unchecked {};
  Name(NameId id, Unchecked) : id_(id) {}
  NameId id_;
};

static_assert(sizeof(Name) == sizeof(NameId) &&
                  std::is_trivially_copyable_v<Name>,
              "Name must stay a cheap value handle");

class CompoundName;

/// A non-owning view of a contiguous run of name components — the copy-free
/// "rest of the path" used by the resolver, the Algol-scope search, and the
/// name-service referral loop. A slice may be empty (unlike CompoundName);
/// it borrows storage from a CompoundName (or array) that must outlive it.
class NameSlice {
 public:
  NameSlice() = default;
  NameSlice(const Name* data, std::size_t size) : data_(data), size_(size) {}
  NameSlice(std::span<const Name> components)  // NOLINT: view adaptor
      : data_(components.data()), size_(components.size()) {}
  NameSlice(const CompoundName& name);  // NOLINT: implicit by design

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const Name& at(std::size_t i) const {
    NAMECOH_CHECK(i < size_, "NameSlice index out of range");
    return data_[i];
  }
  [[nodiscard]] const Name& operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] const Name& front() const { return at(0); }
  [[nodiscard]] const Name& back() const { return at(size_ - 1); }
  [[nodiscard]] std::span<const Name> components() const {
    return {data_, size_};
  }
  [[nodiscard]] const Name* begin() const { return data_; }
  [[nodiscard]] const Name* end() const { return data_ + size_; }

  [[nodiscard]] bool is_absolute() const {
    return size_ > 0 && data_[0].is_root();
  }

  /// The slice without its first component; requires size() >= 1. O(1), no
  /// copy — this is what replaces CompoundName::rest() on hot paths.
  [[nodiscard]] NameSlice rest() const {
    NAMECOH_CHECK(size_ >= 1, "rest() of empty slice");
    return {data_ + 1, size_ - 1};
  }
  /// The sub-run [pos, pos+count); count defaults to "to the end".
  [[nodiscard]] NameSlice subslice(std::size_t pos,
                                   std::size_t count = ~std::size_t{0}) const {
    NAMECOH_CHECK(pos <= size_, "subslice start out of range");
    if (count > size_ - pos) count = size_ - pos;
    return {data_ + pos, count};
  }

  /// Render with path syntax (same rules as CompoundName::to_path); the
  /// empty slice renders as "".
  [[nodiscard]] std::string to_path() const;
  /// Render as bare '/'-joined components ("a/p"), no elision — the wire
  /// encoding of a relative component sequence.
  [[nodiscard]] std::string joined() const;

  friend bool operator==(const NameSlice& a, const NameSlice& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

  friend std::ostream& operator<<(std::ostream& os, const NameSlice& s) {
    return os << s.to_path();
  }

 private:
  const Name* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A non-empty sequence of names (the paper's N+). Immutable value type;
/// components live inline for short names (the common case), so copies are
/// usually a memcpy.
class CompoundName {
 public:
  CompoundName(std::initializer_list<Name> names)
      : CompoundName(std::vector<Name>(names)) {}
  explicit CompoundName(const std::vector<Name>& names);
  /// Materialize an owned copy of a slice.
  explicit CompoundName(NameSlice slice);

  /// Parse a Unix-style path string per the convention documented above.
  ///  "/a/b"  -> ⟨"/", "a", "b"⟩        (absolute)
  ///  "a/b"   -> ⟨".", "a", "b"⟩        (relative; "." prepended)
  ///  "/"     -> ⟨"/"⟩
  ///  "."     -> ⟨"."⟩
  ///  "../x"  -> ⟨".", "..", "x"⟩
  /// Empty strings and empty components ("a//b") are invalid.
  static Result<CompoundName> parse_path(std::string_view path);

  /// Parse, throwing on invalid input. For literals in tests/examples.
  static CompoundName path(std::string_view path);

  /// Parse a bare component sequence: "a/p" -> ⟨"a","p"⟩ with NO implicit
  /// "." prefix and no leading '/'. This is the form names embedded in
  /// files take (§6 Example 2): the first component is what the Algol-scope
  /// search looks for in ancestor directories, so it must not be hidden
  /// behind a "." binding.
  static Result<CompoundName> parse_relative(std::string_view path);
  /// Throwing variant for literals.
  static CompoundName relative(std::string_view path);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const Name& at(std::size_t i) const {
    NAMECOH_CHECK(i < names_.size(), "component index out of range");
    return names_[i];
  }
  [[nodiscard]] const Name& front() const { return names_.front(); }
  [[nodiscard]] const Name& back() const { return names_.back(); }
  [[nodiscard]] std::span<const Name> components() const {
    return {names_.data(), names_.size()};
  }
  /// Borrowing view of all components; valid while this object lives.
  [[nodiscard]] NameSlice slice() const {
    return {names_.data(), names_.size()};
  }

  [[nodiscard]] bool is_absolute() const { return names_.front().is_root(); }

  /// The name without its first component; requires size() >= 2. Allocates
  /// an owned copy — prefer slice().rest() on hot paths.
  [[nodiscard]] CompoundName rest() const;
  /// The name without its last component; requires size() >= 2.
  [[nodiscard]] CompoundName parent() const;
  /// Concatenation ⟨this..., other...⟩.
  [[nodiscard]] CompoundName append(const CompoundName& other) const;
  /// Concatenation ⟨this..., name⟩.
  [[nodiscard]] CompoundName child(const Name& name) const;

  /// True if `prefix` is a (not necessarily proper) prefix of this name.
  [[nodiscard]] bool has_prefix(const CompoundName& prefix) const;

  /// Replace the prefix `from` with `to`; error if `from` is not a prefix.
  /// This is the §7 "human mapping rule" (/users -> /org2/users) made
  /// mechanical.
  [[nodiscard]] Result<CompoundName> rebase(const CompoundName& from,
                                            const CompoundName& to) const;

  /// Render back to path syntax: ⟨"/","a","b"⟩ -> "/a/b",
  /// ⟨".","a"⟩ -> "a", ⟨"x","y"⟩ -> "x/y".
  [[nodiscard]] std::string to_path() const;

  /// Ordering is lexicographic over components (component order is text
  /// order, see Name); equality is an O(k) atom-sequence compare.
  friend std::strong_ordering operator<=>(const CompoundName& a,
                                          const CompoundName& b);
  friend bool operator==(const CompoundName& a, const CompoundName& b) {
    return a.names_ == b.names_;
  }

  friend std::ostream& operator<<(std::ostream& os, const CompoundName& n) {
    return os << n.to_path();
  }

 private:
  struct Raw {};
  CompoundName(Raw) {}  // uninitialized; used by factories that push_back

  /// Paths rarely exceed a handful of components; 8 atoms (32 bytes) ride
  /// inline before spilling to the heap.
  SmallVec<Name, 8> names_;
};

inline NameSlice::NameSlice(const CompoundName& name)
    : data_(name.components().data()), size_(name.size()) {}

}  // namespace namecoh

template <>
struct std::hash<namecoh::Name> {
  std::size_t operator()(const namecoh::Name& n) const noexcept {
    // Atoms are dense; smear them so nearby ids land far apart.
    return namecoh::hash_mix(0, n.id());
  }
};

template <>
struct std::hash<namecoh::NameSlice> {
  std::size_t operator()(const namecoh::NameSlice& s) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const auto& part : s.components()) {
      h = namecoh::hash_mix(h, part.id());
    }
    return h;
  }
};

template <>
struct std::hash<namecoh::CompoundName> {
  std::size_t operator()(const namecoh::CompoundName& n) const noexcept {
    return std::hash<namecoh::NameSlice>{}(n.slice());
  }
};
