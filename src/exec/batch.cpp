#include "exec/batch.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics_shard.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace namecoh::exec {
namespace {

/// Step-count histogram boundaries: resolution depth is the only
/// interesting magnitude here and real paths are short.
std::vector<double> step_boundaries() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/// Resolve queries[begin, end) into results, recording into the given
/// shard/tracer. This is the whole per-worker body: everything it touches
/// is either worker-private (shard, tracer, its slice of results) or
/// concurrency-safe by contract (the graph is read-only, the NameTable is
/// sharded).
void resolve_slice(const NamingGraph& graph,
                   std::span<const BatchQuery> queries, std::size_t begin,
                   std::size_t end, const ResolveOptions& base,
                   std::vector<Resolution>& results, MetricsShard* shard,
                   Tracer* tracer, const std::string& prefix) {
  ResolveOptions options = base;
  options.tracer = tracer;
  Counter* resolutions = nullptr;
  Counter* ok = nullptr;
  Counter* failed = nullptr;
  Histogram* steps = nullptr;
  if (shard != nullptr) {
    resolutions = &shard->counter(prefix + ".resolutions");
    ok = &shard->counter(prefix + ".ok");
    failed = &shard->counter(prefix + ".failed");
    steps = &shard->histogram(prefix + ".steps", step_boundaries());
  }
  for (std::size_t i = begin; i < end; ++i) {
    Resolution res = resolve_from(graph, queries[i].start, queries[i].name,
                                  options);
    if (shard != nullptr) {
      resolutions->inc();
      (res.ok() ? ok : failed)->inc();
      steps->add(static_cast<double>(res.steps));
    }
    results[i] = std::move(res);
  }
}

void tally(BatchOutcome& outcome) {
  for (const Resolution& res : outcome.results) {
    if (res.ok()) {
      ++outcome.ok;
    } else {
      ++outcome.failed;
    }
  }
}

}  // namespace

WorkerPool& default_pool() {
  static WorkerPool pool(WorkerPool::hardware_workers());
  return pool;
}

BatchOutcome resolve_batch(SeqPolicy, const NamingGraph& graph,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& options) {
  BatchOutcome outcome;
  outcome.results.resize(queries.size());
  outcome.workers = 1;
  // Seq still runs inside the fence: the boundary is about *what* the batch
  // may touch, not how many threads run it.
  PureComputeSection fence(options.sim);
  MetricsShard shard;
  resolve_slice(graph, queries, 0, queries.size(), options.resolve,
                outcome.results, options.metrics ? &shard : nullptr,
                options.tracer, options.metric_prefix);
  if (options.metrics != nullptr) {
    shard.counter(options.metric_prefix + ".batches").inc();
    shard.merge_into(*options.metrics);
  }
  tally(outcome);
  return outcome;
}

BatchOutcome resolve_batch(ParPolicy policy, const NamingGraph& graph,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& options) {
  WorkerPool& pool = policy.pool != nullptr ? *policy.pool : default_pool();
  const std::size_t workers =
      std::max<std::size_t>(1, policy.threads == 0
                                   ? pool.size()
                                   : std::min(policy.threads, pool.size()));
  BatchOutcome outcome;
  outcome.results.resize(queries.size());
  outcome.workers = workers;

  // Per-worker observability: private shards/tracers, merged after the
  // barrier in worker-index order (the determinism contract).
  const bool trace = options.tracer != nullptr && options.tracer->enabled();
  std::vector<MetricsShard> shards(options.metrics ? workers : 0);
  std::vector<std::unique_ptr<Tracer>> tracers;
  if (trace) {
    tracers.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      auto tracer = std::make_unique<Tracer>();
      tracer->set_capacity(options.tracer->capacity());
      tracer->set_enabled(true);
      tracers.push_back(std::move(tracer));
    }
  }

  {
    // Fence simulated time for the whole parallel region.
    PureComputeSection fence(options.sim);
    const std::size_t n = queries.size();
    pool.run([&](std::size_t worker) {
      if (worker >= workers) return;
      // Contiguous slices: worker w owns [w*n/W, (w+1)*n/W).
      const std::size_t begin = worker * n / workers;
      const std::size_t end = (worker + 1) * n / workers;
      resolve_slice(graph, queries, begin, end, options.resolve,
                    outcome.results,
                    options.metrics ? &shards[worker] : nullptr,
                    trace ? tracers[worker].get() : nullptr,
                    options.metric_prefix);
    });
  }

  if (options.metrics != nullptr) {
    for (MetricsShard& shard : shards) shard.merge_into(*options.metrics);
    MetricsShard batch_shard;
    batch_shard.counter(options.metric_prefix + ".batches").inc();
    batch_shard.merge_into(*options.metrics);
  }
  if (trace) {
    for (auto& tracer : tracers) options.tracer->absorb(*tracer);
  }
  tally(outcome);
  return outcome;
}

}  // namespace namecoh::exec
