// Batch resolution across the execution-policy seam (docs/PARALLELISM.md).
//
// resolve_batch() answers a batch of *local* resolutions — the pure hot
// path of core/resolve.hpp: no wire, no timeouts, no leases, nothing that
// touches simulated time. Under SeqPolicy it is exactly the loop a caller
// would have written; under ParPolicy the batch is split into contiguous
// per-worker slices, each worker resolves its slice with private
// observability (a MetricsShard and a worker-local Tracer), and at the
// barrier the driving thread merges the shards in worker-index order.
//
// Determinism contract (asserted by tests/test_parallel_exec.cpp):
//   * results[i] answers queries[i] under every policy — par mode returns
//     the *same vector*, not just the same multiset;
//   * the merged metric snapshot is byte-identical between seq and par
//     runs of the same batch (counter sums and histogram bucket counts
//     commute);
//   * the trace-event history is deterministic per (batch, worker count):
//     within a worker the order is item order, across workers it is
//     worker-index order.
//
// If a Simulator is supplied in BatchOptions, it is fenced with a
// PureComputeSection for the duration of the batch: event scheduling from a
// worker (a layering violation that would race the queue) throws instead.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/resolve.hpp"
#include "exec/policy.hpp"

namespace namecoh {
class MetricsRegistry;
class Simulator;
class Tracer;
}  // namespace namecoh

namespace namecoh::exec {

/// One local resolution: a start context object and a borrowed name. The
/// storage behind `name` must outlive the resolve_batch call (typical
/// callers keep a vector of CompoundNames and slice them).
struct BatchQuery {
  EntityId start;
  NameSlice name;
};

struct BatchOptions {
  /// Per-resolution options. The tracer field is ignored — use
  /// BatchOptions::tracer, which the engine routes through per-worker
  /// tracers and merges (a single shared tracer would race).
  ResolveOptions resolve{};
  /// When set, per-batch instruments are recorded under `metric_prefix`:
  /// .batches, .resolutions, .ok, .failed (counters) and .steps
  /// (histogram). Always written via MetricsShard merge, so seq and par
  /// snapshots match byte-for-byte.
  MetricsRegistry* metrics = nullptr;
  /// When set and enabled, every resolution records a span (kResolveStep
  /// per component, as in core/resolve.cpp).
  Tracer* tracer = nullptr;
  /// When set, the simulator is fenced (PureComputeSection) while the
  /// batch runs.
  Simulator* sim = nullptr;
  std::string metric_prefix = "exec.batch";
};

struct BatchOutcome {
  std::vector<Resolution> results;  ///< results[i] answers queries[i]
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t workers = 1;  ///< worker slices used (1 under SeqPolicy)
};

BatchOutcome resolve_batch(SeqPolicy policy, const NamingGraph& graph,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& options = {});
BatchOutcome resolve_batch(ParPolicy policy, const NamingGraph& graph,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& options = {});

/// Policy-less form: runs under the compile-time DefaultPolicy.
inline BatchOutcome resolve_batch(const NamingGraph& graph,
                                  std::span<const BatchQuery> queries,
                                  const BatchOptions& options = {}) {
  return resolve_batch(DefaultPolicy{}, graph, queries, options);
}

}  // namespace namecoh::exec
