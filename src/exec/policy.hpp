// Execution policies: the seq/par seam (docs/PARALLELISM.md).
//
// Everything in this repository that takes *time* runs on the deterministic
// single-threaded simulator; everything that is *pure computation* — path
// parsing, NameTable interning, Context binary search, closure-rule
// evaluation, span/metric recording into per-worker shards — has no
// ordering obligations at all, and may run on as many real threads as the
// hardware offers. namecoh::exec marks that boundary in the type system:
// entry points that can exploit parallelism take an execution policy as
// their first parameter (cf. the standard <execution> policies, and
// TopoGen's ExecutionPolicies.hpp), so every call site names which side of
// the seam it is on.
//
//   * SeqPolicy — run on the calling (simulator) thread, in item order.
//     Bit-identical to the pre-seam code: same intern order, same metric
//     update order, same trace-event order.
//   * ParPolicy — run on a real-thread WorkerPool, partitioned into
//     contiguous per-worker slices, merged at a barrier in worker-index
//     order. Deterministic at the *result* level (see the contract in
//     docs/PARALLELISM.md), not the interleaving level.
//
// The compile-time default for policy-less call sites is SeqPolicy; build
// with -DNAMECOH_EXEC_DEFAULT_PAR to flip the default to ParPolicy on the
// shared process-wide pool (sized to the hardware). Determinism gates
// compile the par engine in but leave the default seq, asserting seq-mode
// histories stay bit-identical with the parallel machinery present.
#pragma once

#include <cstddef>

#include "util/worker_pool.hpp"

namespace namecoh::exec {

/// Run sequentially on the calling thread.
struct SeqPolicy {};

/// Run on a real-thread worker pool.
struct ParPolicy {
  /// Pool to run on; nullptr uses the shared default_pool().
  WorkerPool* pool = nullptr;
  /// Cap on workers actually used (0 = the pool's full width). Slices are
  /// partitioned across min(threads, pool size) workers.
  std::size_t threads = 0;
};

/// The process-wide pool ParPolicy{} falls back to: hardware-wide, built on
/// first use, alive for the process lifetime.
WorkerPool& default_pool();

#if defined(NAMECOH_EXEC_DEFAULT_PAR)
using DefaultPolicy = ParPolicy;
#else
using DefaultPolicy = SeqPolicy;
#endif

/// True when the policy-less entry points run parallel (compile-time).
inline constexpr bool kDefaultIsParallel =
#if defined(NAMECOH_EXEC_DEFAULT_PAR)
    true;
#else
    false;
#endif

}  // namespace namecoh::exec
