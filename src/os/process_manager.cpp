#include "os/process_manager.hpp"

#include "util/log.hpp"

namespace namecoh {

std::string_view remote_exec_policy_name(RemoteExecPolicy policy) {
  switch (policy) {
    case RemoteExecPolicy::kInvokerRoot:
      return "invoker-root";
    case RemoteExecPolicy::kExecutorRoot:
      return "executor-root";
    case RemoteExecPolicy::kPrivateAttach:
      return "private-attach";
  }
  return "?";
}

ProcessManager::ProcessManager(NamingGraph& graph, FileSystem& fs,
                               Internetwork& net, Transport& transport)
    : graph_(graph), fs_(fs), net_(net), transport_(transport) {}

const ProcessInfo& ProcessManager::checked(ProcessId process) const {
  NAMECOH_CHECK(process.valid() && process.value() < processes_.size(),
                "unknown process id");
  return processes_[process.value()];
}

ProcessInfo& ProcessManager::checked(ProcessId process) {
  NAMECOH_CHECK(process.valid() && process.value() < processes_.size(),
                "unknown process id");
  return processes_[process.value()];
}

void ProcessManager::install_handler(ProcessId process) {
  const ProcessInfo& info = checked(process);
  transport_.set_handler(
      info.endpoint, [this, process](EndpointId, const Message& message) {
        // Identify the sender by resolving reply_to in the receiver's
        // location context. A dead or renumbered-away sender yields an
        // invalid ProcessId; the record is still kept (the name arrived).
        ProcessId sender;
        const ProcessInfo& me = checked(process);
        auto sender_ep = transport_.resolve_pid(me.endpoint,
                                                message.reply_to);
        if (sender_ep.is_ok()) {
          auto sender_proc = by_endpoint(sender_ep.value());
          if (sender_proc.is_ok()) sender = sender_proc.value();
        }
        SimTime now = transport_.simulator().now();
        if (message.type == kMsgName) {
          for (std::size_t i : message.payload.name_indices()) {
            received_names_.push_back(ReceivedName{
                process, sender, message.payload.name_at(i), now});
          }
        } else if (message.type == kMsgPid) {
          for (std::size_t i : message.payload.pid_indices()) {
            received_pids_.push_back(
                ReceivedPid{process, sender, message.payload.pid_at(i), now});
          }
        }
      });
}

ProcessId ProcessManager::spawn(MachineId machine, std::string label,
                                EntityId root, EntityId cwd) {
  NAMECOH_CHECK(graph_.is_context_object(root), "spawn: root not a directory");
  NAMECOH_CHECK(graph_.is_context_object(cwd), "spawn: cwd not a directory");
  ProcessInfo info;
  info.label = label;
  info.activity = graph_.add_activity(label);
  info.context_object = graph_.add_context_object("ctx:" + label);
  graph_.context(info.context_object) =
      FileSystem::make_process_context(root, cwd);
  info.endpoint = net_.add_endpoint(machine, label);
  info.machine = machine;
  processes_.push_back(std::move(info));
  ProcessId id(processes_.size() - 1);
  by_endpoint_[processes_.back().endpoint] = id;
  closures_.set_activity_context(processes_.back().activity,
                                 processes_.back().context_object);
  install_handler(id);
  return id;
}

ProcessId ProcessManager::fork_child(ProcessId parent, std::string label) {
  const ProcessInfo& p = checked(parent);
  NAMECOH_CHECK(p.alive, "fork from dead process");
  // Inherit by copying the parent's context bindings into a fresh context
  // object: coherent now, free to diverge later (§5.1).
  // Copy these out first: spawn() grows the process table, which can
  // reallocate it and invalidate `p`.
  const MachineId machine = p.machine;
  const EntityId parent_ctx = p.context_object;
  EntityId root = graph_.context(parent_ctx)(Name("/"));
  EntityId cwd = graph_.context(parent_ctx)(Name("."));
  NAMECOH_CHECK(root.valid() && cwd.valid(),
                "parent context missing '/' or '.'");
  ProcessId child = spawn(machine, std::move(label), root, cwd);
  // Copy any extra per-process attachments beyond "/" and ".".
  graph_.context(processes_[child.value()].context_object)
      .overlay(graph_.context(parent_ctx));
  processes_[child.value()].parent = parent;
  return child;
}

Result<ProcessId> ProcessManager::remote_exec(ProcessId parent,
                                              MachineId where,
                                              std::string label,
                                              RemoteExecPolicy policy,
                                              EntityId executor_root,
                                              const Name& attach_as) {
  const ProcessInfo& p = checked(parent);
  if (!p.alive) return failed_precondition_error("remote_exec: dead parent");
  EntityId parent_root = graph_.context(p.context_object)(Name("/"));
  if (!parent_root.valid()) {
    return failed_precondition_error("remote_exec: parent has no root");
  }
  if (!graph_.is_context_object(executor_root)) {
    return invalid_argument_error("remote_exec: executor_root not a dir");
  }

  ProcessId child;
  switch (policy) {
    case RemoteExecPolicy::kInvokerRoot:
      // §5.1: "the root directory of the remote child is bound … to the
      // root of the machine where the execution was invoked".
      child = spawn(where, std::move(label), parent_root, parent_root);
      break;
    case RemoteExecPolicy::kExecutorRoot:
      // "… or to the root of the machine where the child executes."
      child = spawn(where, std::move(label), executor_root, executor_root);
      break;
    case RemoteExecPolicy::kPrivateAttach: {
      // §6 II: a private root carrying the parent's entire view, plus the
      // executor's tree attached under a fresh name.
      EntityId private_root =
          graph_.add_context_object("view:" + label);
      graph_.context(private_root).bind(Name("."), private_root);
      graph_.context(private_root).bind(Name(".."), private_root);
      // Graft the parent's root bindings (minus its own dot entries).
      for (const auto& [name, target] :
           graph_.context(parent_root).bindings()) {
        if (name.is_cwd() || name.is_parent()) continue;
        graph_.context(private_root).bind(name, target);
      }
      if (graph_.context(private_root).contains(attach_as)) {
        return already_exists_error(
            "remote_exec: attach name '" + attach_as.text() +
            "' collides with a parent-root entry");
      }
      graph_.context(private_root).bind(attach_as, executor_root);
      child = spawn(where, std::move(label), private_root, private_root);
      break;
    }
  }
  processes_[child.value()].parent = parent;
  return child;
}

Status ProcessManager::kill(ProcessId process) {
  ProcessInfo& info = checked(process);
  if (!info.alive) return failed_precondition_error("kill: already dead");
  info.alive = false;
  transport_.clear_handler(info.endpoint);
  by_endpoint_.erase(info.endpoint);
  return net_.remove_endpoint(info.endpoint);
}

bool ProcessManager::alive(ProcessId process) const {
  return process.valid() && process.value() < processes_.size() &&
         processes_[process.value()].alive;
}

const ProcessInfo& ProcessManager::info(ProcessId process) const {
  return checked(process);
}

std::size_t ProcessManager::process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (p.alive) ++n;
  }
  return n;
}

std::vector<ProcessId> ProcessManager::processes() const {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].alive) out.emplace_back(i);
  }
  return out;
}

Result<ProcessId> ProcessManager::by_endpoint(EndpointId endpoint) const {
  auto it = by_endpoint_.find(endpoint);
  if (it == by_endpoint_.end()) {
    return not_found_error("no process for endpoint");
  }
  return it->second;
}

Result<Location> ProcessManager::location_of(ProcessId process) const {
  return net_.location_of(checked(process).endpoint);
}

Status ProcessManager::set_root(ProcessId process, EntityId dir) {
  if (!graph_.is_context_object(dir)) {
    return invalid_argument_error("set_root: not a directory");
  }
  graph_.context(checked(process).context_object).bind(Name("/"), dir);
  return Status::ok();
}

Status ProcessManager::set_cwd(ProcessId process, EntityId dir) {
  if (!graph_.is_context_object(dir)) {
    return invalid_argument_error("set_cwd: not a directory");
  }
  graph_.context(checked(process).context_object).bind(Name("."), dir);
  return Status::ok();
}

Status ProcessManager::attach_in_context(ProcessId process, const Name& name,
                                         EntityId target) {
  if (!graph_.contains(target)) {
    return invalid_argument_error("attach_in_context: unknown target");
  }
  Context& ctx = graph_.context(checked(process).context_object);
  if (ctx.contains(name)) {
    return already_exists_error("attach_in_context: '" + name.text() +
                                "' already bound");
  }
  ctx.bind(name, target);
  return Status::ok();
}

Result<EntityId> ProcessManager::root_of(ProcessId process) const {
  EntityId root = graph_.context(checked(process).context_object)(Name("/"));
  if (!root.valid()) return not_found_error("process has no root binding");
  return root;
}

Result<EntityId> ProcessManager::cwd_of(ProcessId process) const {
  EntityId cwd = graph_.context(checked(process).context_object)(Name("."));
  if (!cwd.valid()) return not_found_error("process has no cwd binding");
  return cwd;
}

Resolution ProcessManager::resolve_internal(ProcessId process,
                                            std::string_view path) const {
  auto name = CompoundName::parse_path(path);
  if (!name.is_ok()) {
    Resolution res;
    res.status = name.status();
    return res;
  }
  return resolve(graph_, graph_.context(checked(process).context_object),
                 name.value());
}

Circumstance ProcessManager::internal_circumstance(ProcessId process) const {
  return Circumstance::internal(checked(process).activity);
}

Resolution ProcessManager::resolve_received(
    const ReceivedName& received, const ResolutionRule& rule) const {
  auto name = CompoundName::parse_path(received.path);
  if (!name.is_ok()) {
    Resolution res;
    res.status = name.status();
    return res;
  }
  if (!alive(received.receiver)) {
    Resolution res;
    res.status = failed_precondition_error("receiver is dead");
    return res;
  }
  EntityId receiver_activity = checked(received.receiver).activity;
  EntityId sender_activity =
      received.sender.valid() && received.sender.value() < processes_.size()
          ? processes_[received.sender.value()].activity
          : EntityId::invalid();
  Circumstance circumstance =
      Circumstance::from_message(receiver_activity, sender_activity);
  return resolve_with_rule(graph_, closures_, rule, circumstance,
                           name.value());
}

Status ProcessManager::send_name(ProcessId from, const Pid& to,
                                 std::string path) {
  const ProcessInfo& sender = checked(from);
  if (!sender.alive) return failed_precondition_error("send from dead proc");
  Message message;
  message.type = kMsgName;
  message.payload.add_name(std::move(path));
  return transport_.send(sender.endpoint, to, std::move(message));
}

Status ProcessManager::send_name_to(ProcessId from, ProcessId to,
                                    std::string path) {
  const ProcessInfo& receiver = checked(to);
  if (!receiver.alive) return failed_precondition_error("send to dead proc");
  auto from_loc = location_of(from);
  if (!from_loc.is_ok()) return from_loc.status();
  auto to_loc = net_.location_of(receiver.endpoint);
  if (!to_loc.is_ok()) return to_loc.status();
  return send_name(from, relativize(to_loc.value(), from_loc.value()),
                   std::move(path));
}

Status ProcessManager::send_pid_of(ProcessId from, ProcessId to,
                                   ProcessId subject) {
  auto from_loc = location_of(from);
  if (!from_loc.is_ok()) return from_loc.status();
  auto subject_loc = location_of(subject);
  if (!subject_loc.is_ok()) return subject_loc.status();
  return send_pid(from, to,
                  relativize(subject_loc.value(), from_loc.value()));
}

Status ProcessManager::send_pid(ProcessId from, ProcessId to, Pid pid) {
  const ProcessInfo& sender = checked(from);
  const ProcessInfo& receiver = checked(to);
  if (!sender.alive || !receiver.alive) {
    return failed_precondition_error("send_pid: dead endpoint");
  }
  auto from_loc = location_of(from);
  if (!from_loc.is_ok()) return from_loc.status();
  auto to_loc = net_.location_of(receiver.endpoint);
  if (!to_loc.is_ok()) return to_loc.status();
  Message message;
  message.type = kMsgPid;
  message.payload.add_pid(pid);
  return transport_.send(sender.endpoint,
                         relativize(to_loc.value(), from_loc.value()),
                         std::move(message));
}

void ProcessManager::settle() { transport_.simulator().run(); }

void ProcessManager::clear_inboxes() {
  received_names_.clear();
  received_pids_.clear();
}

Result<ProcessId> ProcessManager::resolve_received_pid(
    const ReceivedPid& received) const {
  if (!alive(received.receiver)) {
    return failed_precondition_error("receiver is dead");
  }
  auto endpoint = transport_.resolve_pid(checked(received.receiver).endpoint,
                                         received.pid);
  if (!endpoint.is_ok()) return endpoint.status();
  return by_endpoint(endpoint.value());
}

}  // namespace namecoh
