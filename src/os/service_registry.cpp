#include "os/service_registry.hpp"

namespace namecoh {

ServiceRegistry::ServiceRegistry(Internetwork& net, Transport& transport,
                                 MachineId machine)
    : net_(net),
      transport_(transport),
      endpoint_(net.add_endpoint(machine, "registry")) {
  transport_.set_handler(endpoint_,
                         [this](EndpointId self, const Message& message) {
                           handle(self, message);
                         });
}

std::optional<Pid> ServiceRegistry::stored_pid(
    const std::string& name) const {
  auto it = table_.find(name);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void ServiceRegistry::handle(EndpointId self, const Message& message) {
  switch (message.type) {
    case RegistryWire::kRegister: {
      if (message.payload.size() < 2 ||
          message.payload.type_at(0) != FieldType::kString ||
          message.payload.type_at(1) != FieldType::kPid) {
        return;
      }
      ++stats_.registers;
      // The pid arrived rebased into *our* context (R(sender) remap).
      table_[message.payload.string_at(0)] = message.payload.pid_at(1);
      break;
    }
    case RegistryWire::kUnregister: {
      if (message.payload.size() < 1 ||
          message.payload.type_at(0) != FieldType::kString) {
        return;
      }
      ++stats_.unregisters;
      table_.erase(message.payload.string_at(0));
      break;
    }
    case RegistryWire::kLookup: {
      if (message.payload.size() < 2 ||
          message.payload.type_at(0) != FieldType::kString ||
          message.payload.type_at(1) != FieldType::kU64) {
        return;
      }
      ++stats_.lookups;
      auto it = table_.find(message.payload.string_at(0));
      Message reply;
      reply.type = RegistryWire::kReply;
      reply.payload.add_u64(message.payload.u64_at(1));  // token
      if (it == table_.end()) {
        ++stats_.misses;
        reply.payload.add_u64(0);
        reply.payload.add_pid(Pid::self());
      } else {
        ++stats_.hits;
        reply.payload.add_u64(1);
        // Embedded pid: the transport rebases it into the requester's
        // context on the way out.
        reply.payload.add_pid(it->second);
      }
      (void)transport_.send(self, message.reply_to, std::move(reply));
      break;
    }
    default:
      break;
  }
}

RegistryClient::RegistryClient(Internetwork& net, Transport& transport,
                               Simulator& sim,
                               const ServiceRegistry& registry)
    : net_(net), transport_(transport), sim_(sim), registry_(registry) {}

Result<Pid> RegistryClient::registry_pid_for(EndpointId from) const {
  auto from_loc = net_.location_of(from);
  if (!from_loc.is_ok()) return from_loc.status();
  auto reg_loc = net_.location_of(registry_.endpoint());
  if (!reg_loc.is_ok()) {
    return unreachable_error("registry endpoint is dead");
  }
  return relativize(reg_loc.value(), from_loc.value());
}

Status RegistryClient::announce(EndpointId from, const std::string& service,
                                EndpointId provider) {
  auto registry_pid = registry_pid_for(from);
  if (!registry_pid.is_ok()) return registry_pid.status();
  auto from_loc = net_.location_of(from);
  if (!from_loc.is_ok()) return from_loc.status();
  auto provider_loc = net_.location_of(provider);
  if (!provider_loc.is_ok()) return provider_loc.status();
  Message msg;
  msg.type = RegistryWire::kRegister;
  msg.payload.add_string(service);
  // The provider's pid in the *sender's* context; the transport rebases.
  msg.payload.add_pid(relativize(provider_loc.value(), from_loc.value()));
  return transport_.send(from, registry_pid.value(), std::move(msg));
}

Status RegistryClient::withdraw(EndpointId from, const std::string& service) {
  auto registry_pid = registry_pid_for(from);
  if (!registry_pid.is_ok()) return registry_pid.status();
  Message msg;
  msg.type = RegistryWire::kUnregister;
  msg.payload.add_string(service);
  return transport_.send(from, registry_pid.value(), std::move(msg));
}

Result<Pid> RegistryClient::locate(EndpointId requester,
                                   const std::string& service) {
  auto requester_loc = net_.location_of(requester);
  if (!requester_loc.is_ok()) return requester_loc.status();
  auto machine = net_.machine_of(requester);
  if (!machine.is_ok()) return machine.status();

  // A short-lived helper endpoint on the requester's machine receives the
  // reply so the requester's own message handler is not disturbed.
  EndpointId helper = net_.add_endpoint(machine.value(), "registry-client");
  struct Cleanup {
    Internetwork& net;
    Transport& transport;
    EndpointId helper;
    ~Cleanup() {
      transport.clear_handler(helper);
      (void)net.remove_endpoint(helper);
    }
  } cleanup{net_, transport_, helper};

  std::uint64_t token = next_token_++;
  bool got_reply = false;
  bool found = false;
  Pid provider_at_helper;
  transport_.set_handler(
      helper, [&](EndpointId, const Message& message) {
        if (message.type != RegistryWire::kReply ||
            message.payload.size() < 3 ||
            message.payload.u64_at(0) != token) {
          return;
        }
        got_reply = true;
        found = message.payload.u64_at(1) != 0;
        provider_at_helper = message.payload.pid_at(2);
      });

  auto registry_pid = registry_pid_for(helper);
  if (!registry_pid.is_ok()) return registry_pid.status();
  Message msg;
  msg.type = RegistryWire::kLookup;
  msg.payload.add_string(service);
  msg.payload.add_u64(token);
  Status sent = transport_.send(helper, registry_pid.value(), std::move(msg));
  if (!sent.is_ok()) return sent;
  while (!got_reply && sim_.pending() > 0) sim_.run(1);
  if (!got_reply) return unreachable_error("no reply from registry");
  if (!found) return not_found_error("service '" + service + "' unknown");

  // Shift the pid from the helper's context to the requester's (same
  // machine, so this is usually the identity).
  auto helper_loc = net_.location_of(helper);
  if (!helper_loc.is_ok()) return helper_loc.status();
  return rebase(provider_at_helper, helper_loc.value(),
                requester_loc.value());
}

}  // namespace namecoh
