#include "os/program.hpp"

namespace namecoh {

LoadedProgram ProgramLoader::from_meaning(EntityId image,
                                          const DocumentMeaning& meaning) {
  LoadedProgram program;
  program.image = image;
  program.segments = meaning.parts;
  program.text = meaning.text;
  program.unresolved = meaning.unresolved;
  return program;
}

LoadedProgram ProgramLoader::load(EntityId image,
                                  EntityId containing_dir) const {
  AssembleOptions options;
  options.rule = EmbedRule::kAlgolScope;
  return from_meaning(image,
                      assembler_.assemble(image, containing_dir, options));
}

LoadedProgram ProgramLoader::load_in_context(
    EntityId image, const Context& reader_context) const {
  AssembleOptions options;
  options.rule = EmbedRule::kActivityContext;
  options.reader_context = &reader_context;
  // containing_dir is irrelevant under R(activity); pass any context
  // object — the reader context's cwd if present, else fail gracefully by
  // using the image itself (assemble checks kinds).
  EntityId cwd = reader_context(Name("."));
  return from_meaning(image, assembler_.assemble(image, cwd, options));
}

Result<EntityId> make_program(FileSystem& fs, EntityId dir, const Name& name,
                              std::string entry_code,
                              const std::vector<std::string>& segment_names) {
  auto image = fs.create_file(dir, name, std::move(entry_code));
  if (!image.is_ok()) return image.status();
  for (const std::string& segment : segment_names) {
    auto parsed = CompoundName::parse_relative(segment);
    if (!parsed.is_ok()) return parsed.status();
    fs.graph().add_embedded_name(image.value(), std::move(parsed).value());
  }
  return image;
}

Result<ProcessId> exec_program(ProcessManager& pm, ProcessId parent,
                               MachineId machine,
                               std::string_view program_path,
                               const std::vector<std::string>& args) {
  Resolution image = pm.resolve_internal(parent, program_path);
  if (!image.ok()) return image.status;
  NamingGraph& graph = [&]() -> NamingGraph& {
    // The loader needs the graph the process manager operates on; reach it
    // through the parent's context object.
    return pm.graph();
  }();
  if (!graph.is_data_object(image.entity)) {
    return invalid_argument_error("exec: '" + std::string(program_path) +
                                  "' is not an executable file");
  }
  if (image.trail.empty()) {
    return failed_precondition_error("exec: no containing directory");
  }
  ProgramLoader loader(graph);
  LoadedProgram program = loader.load(image.entity, image.trail.back());
  if (!program.complete()) {
    return failed_precondition_error(
        "exec: program incomplete — " + std::to_string(program.unresolved) +
        " unresolved segment reference(s)");
  }
  // Child inherits the parent's root/cwd, as Unix exec does, but runs on
  // the requested machine.
  auto root = pm.root_of(parent);
  if (!root.is_ok()) return root.status();
  auto cwd = pm.cwd_of(parent);
  if (!cwd.is_ok()) return cwd.status();
  ProcessId child = pm.spawn(machine, graph.label(image.entity),
                             root.value(), cwd.value());
  for (const std::string& arg : args) {
    Status sent = pm.send_name_to(parent, child, arg);
    if (!sent.is_ok()) {
      (void)pm.kill(child);
      return sent;
    }
  }
  if (!args.empty()) pm.settle();
  return child;
}

}  // namespace namecoh
