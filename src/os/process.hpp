// Processes: the activities of the model, wired to both worlds.
//
// A Process is simultaneously
//   * an activity in the NamingGraph (so coherence probes can ask what a
//     name means *to it*),
//   * the owner of a context object holding its "/" and "." bindings (the
//     paper's R(p), §5.1) plus any per-process attachments (§6 II), and
//   * an endpoint in the Internetwork (so it can exchange names and pids in
//     messages over the Transport).
#pragma once

#include <string>

#include "core/entity.hpp"
#include "net/topology.hpp"
#include "util/ids.hpp"

namespace namecoh {

struct ProcessTag {};
using ProcessId = StrongId<ProcessTag>;

struct ProcessInfo {
  std::string label;
  EntityId activity;       ///< the activity node in the naming graph
  EntityId context_object; ///< the context object holding R(p)
  EndpointId endpoint;     ///< the messaging endpoint
  MachineId machine;       ///< where the process runs
  ProcessId parent;        ///< invalid for top-level processes
  bool alive = true;
};

}  // namespace namecoh
