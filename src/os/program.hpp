// Programs as structured objects (§6 Example 2's motivating case).
//
// "An executable program may also be stored in several files … The
// executable code for a multi-process application may be stored in several
// executable files with embedded names." A Program here is a file whose
// embedded names denote its segments (code, data, libraries); loading it
// means resolving every embedded name and concatenating the pieces — i.e.
// assembling a structured object — and *executing* it means spawning a
// process whose success depended on which resolution rule found the
// segments.
//
// The loader is the bridge between the embed module and the process layer:
// with R(file) a program image can be installed on any machine (or moved,
// §6: "relocated or copied without changing the meaning of the embedded
// names") and still load; with R(activity) it loads only for processes
// whose context matches the layout the image was linked against.
#pragma once

#include "embed/embedded.hpp"
#include "os/process_manager.hpp"

namespace namecoh {

/// A program resolved to its constituent pieces.
struct LoadedProgram {
  EntityId image;                 ///< the executable's root file
  std::vector<EntityId> segments; ///< all files, image first
  std::string text;               ///< concatenated "code"
  std::size_t unresolved = 0;

  [[nodiscard]] bool complete() const { return unresolved == 0; }
};

class ProgramLoader {
 public:
  explicit ProgramLoader(const NamingGraph& graph)
      : graph_(&graph), assembler_(graph) {}

  /// Load with R(file): segments found by Algol scope from the directory
  /// the image was opened through.
  [[nodiscard]] LoadedProgram load(EntityId image,
                                   EntityId containing_dir) const;

  /// Load with R(activity): segments resolved in the reader's process
  /// context (the incoherent default).
  [[nodiscard]] LoadedProgram load_in_context(
      EntityId image, const Context& reader_context) const;

 private:
  static LoadedProgram from_meaning(EntityId image,
                                    const DocumentMeaning& meaning);

  const NamingGraph* graph_;
  DocumentAssembler assembler_;
};

/// Create an executable image: a file whose embedded names are its
/// segments. `segments` are names relative to the image's directory
/// hierarchy (bare component sequences like "lib/rt.o").
Result<EntityId> make_program(FileSystem& fs, EntityId dir, const Name& name,
                              std::string entry_code,
                              const std::vector<std::string>& segment_names);

/// exec-by-name (§4 case 2 + §6): resolve `program_path` in the parent's
/// context, load it with R(file), and spawn a child process on `machine`
/// running it. Fails (kFailedPrecondition) when the program does not load
/// completely — the observable consequence of incoherent embedded names.
///
/// `args` are passed Unix-style: each is sent to the child as a *name* in
/// a message (§5.1: "A parent can pass any file name as an argument to a
/// child") and lands in the child's inbox; the call settles the simulator
/// so the args have arrived when it returns. Because the child inherits
/// the parent's context, argv names resolve coherently even under the
/// plain R(receiver) rule.
Result<ProcessId> exec_program(ProcessManager& pm, ProcessId parent,
                               MachineId machine,
                               std::string_view program_path,
                               const std::vector<std::string>& args = {});

}  // namespace namecoh
