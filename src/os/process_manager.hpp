// Process management: spawn, fork-with-context-inheritance, per-process
// views, remote execution, and the exchange of names and pids in messages.
//
// This is the layer where the paper's three sources of names (Fig. 1)
// become concrete events:
//   * internal   — a process resolves a path it generated itself,
//   * exchanged  — send_name()/send_pid_of() put a name into a message; the
//                  receiver's inbox records the circumstance (who sent it),
//   * embedded   — read_names_from() pulls the names embedded in a file the
//                  process opened (resolution handled by the embed module).
//
// Remote execution (§6 II and the §5.1 discussion) is parameterized by the
// context-attachment policy, which is the experimental knob of E2.
#pragma once

#include <string>
#include <vector>

#include "core/closure.hpp"
#include "fs/file_system.hpp"
#include "net/transport.hpp"
#include "os/process.hpp"

namespace namecoh {

/// How a remotely executed child's naming context is set up (§5.1, §6 II).
enum class RemoteExecPolicy : std::uint8_t {
  /// Child's root is the invoker's root: names passed as parameters stay
  /// coherent, but the child cannot reach the executor machine's local
  /// objects by their local names.
  kInvokerRoot,
  /// Child's root is the executor machine's root: local access works, but
  /// parameters from the parent are resolved in the wrong tree.
  kExecutorRoot,
  /// Per-process view (Plan 9 / extended Waterloo Port): the child gets a
  /// private root carrying *all* of the parent's root bindings plus an
  /// attachment of the executor's tree under a fresh name — parameter
  /// coherence and local access at the same time.
  kPrivateAttach,
};

std::string_view remote_exec_policy_name(RemoteExecPolicy policy);

/// A name received in a message, with the circumstance needed to resolve it
/// under any resolution rule.
struct ReceivedName {
  ProcessId receiver;
  ProcessId sender;
  std::string path;
  SimTime at = 0;
};

/// A pid received in a message (possibly remapped in flight).
struct ReceivedPid {
  ProcessId receiver;
  ProcessId sender;
  Pid pid;
  SimTime at = 0;
};

class ProcessManager {
 public:
  /// Message types used on the wire.
  static constexpr std::uint32_t kMsgName = 1;
  static constexpr std::uint32_t kMsgPid = 2;

  ProcessManager(NamingGraph& graph, FileSystem& fs, Internetwork& net,
                 Transport& transport);

  ProcessManager(const ProcessManager&) = delete;
  ProcessManager& operator=(const ProcessManager&) = delete;

  // --- Lifecycle -------------------------------------------------------------

  /// Create a process on `machine` whose context binds "/" to `root` and
  /// "." to `cwd`.
  ProcessId spawn(MachineId machine, std::string label, EntityId root,
                  EntityId cwd);

  /// Fork: child on the same machine, context bindings *copied* from the
  /// parent (§5.1: "a child inherits the context of its parent", and they
  /// stay coherent only until one of them modifies its context).
  ProcessId fork_child(ProcessId parent, std::string label);

  /// Remote execution with a context-attachment policy. `executor_root` is
  /// the root of the naming tree of the executing machine (needed by the
  /// kExecutorRoot and kPrivateAttach policies; `attach_as` names the
  /// attachment for kPrivateAttach).
  Result<ProcessId> remote_exec(ProcessId parent, MachineId where,
                                std::string label, RemoteExecPolicy policy,
                                EntityId executor_root,
                                const Name& attach_as = Name("local"));

  Status kill(ProcessId process);

  // --- Introspection -----------------------------------------------------------

  [[nodiscard]] bool alive(ProcessId process) const;
  [[nodiscard]] const ProcessInfo& info(ProcessId process) const;
  [[nodiscard]] std::size_t process_count() const;
  [[nodiscard]] std::vector<ProcessId> processes() const;
  [[nodiscard]] Result<ProcessId> by_endpoint(EndpointId endpoint) const;
  [[nodiscard]] Result<Location> location_of(ProcessId process) const;

  [[nodiscard]] const ClosureTable& closures() const { return closures_; }
  [[nodiscard]] ClosureTable& closures() { return closures_; }
  [[nodiscard]] NamingGraph& graph() { return graph_; }
  [[nodiscard]] const NamingGraph& graph() const { return graph_; }

  // --- Context manipulation -------------------------------------------------------

  Status set_root(ProcessId process, EntityId dir);
  Status set_cwd(ProcessId process, EntityId dir);
  /// Per-process view: bind an extra name directly in the process context
  /// ("attach a name space to the context of an activity", §7 fn. 1).
  Status attach_in_context(ProcessId process, const Name& name,
                           EntityId target);
  [[nodiscard]] Result<EntityId> root_of(ProcessId process) const;
  [[nodiscard]] Result<EntityId> cwd_of(ProcessId process) const;

  // --- Resolution --------------------------------------------------------------

  /// Resolve a path the process generated internally: circumstance
  /// (process, internal), rule R(a).
  [[nodiscard]] Resolution resolve_internal(ProcessId process,
                                            std::string_view path) const;

  /// Resolve a received name under the given rule (R(receiver), R(sender)…).
  [[nodiscard]] Resolution resolve_received(const ReceivedName& received,
                                            const ResolutionRule& rule) const;

  /// The circumstance in which `process` resolves internally generated
  /// names; exposed for custom probes.
  [[nodiscard]] Circumstance internal_circumstance(ProcessId process) const;

  // --- Name & pid exchange ----------------------------------------------------------

  /// Send a path string as a *name* to another process (addressed by pid in
  /// the sender's context). Delivery lands in the receiver's inbox.
  Status send_name(ProcessId from, const Pid& to, std::string path);
  /// Convenience: address the destination process directly.
  Status send_name_to(ProcessId from, ProcessId to, std::string path);

  /// Send the pid of `subject` (relativized to the sender's location) to
  /// another process. The transport remaps it en route iff configured.
  Status send_pid_of(ProcessId from, ProcessId to, ProcessId subject);
  /// Send a raw pid value (for experiments that craft stale pids).
  Status send_pid(ProcessId from, ProcessId to, Pid pid);

  /// Drain processing: run the simulator until all in-flight messages land.
  void settle();

  [[nodiscard]] const std::vector<ReceivedName>& received_names() const {
    return received_names_;
  }
  [[nodiscard]] const std::vector<ReceivedPid>& received_pids() const {
    return received_pids_;
  }
  void clear_inboxes();

  /// The endpoint the pid in a ReceivedPid record currently denotes for its
  /// receiver (resolution in the receiver's location context).
  [[nodiscard]] Result<ProcessId> resolve_received_pid(
      const ReceivedPid& received) const;

 private:
  const ProcessInfo& checked(ProcessId process) const;
  ProcessInfo& checked(ProcessId process);
  void install_handler(ProcessId process);

  NamingGraph& graph_;
  FileSystem& fs_;
  Internetwork& net_;
  Transport& transport_;
  ClosureTable closures_;
  std::vector<ProcessInfo> processes_;
  std::unordered_map<EndpointId, ProcessId> by_endpoint_;
  std::vector<ReceivedName> received_names_;
  std::vector<ReceivedPid> received_pids_;
};

}  // namespace namecoh
