// A service registry: well-known names → process identifiers, over the
// message layer.
//
// §7's example name spaces include "/services"; in Waterloo Port and V,
// services are located by asking a registry process. This implements that
// pattern on the messaging substrate, and it is a showcase for the paper's
// machinery because the registry stores *pids* — names whose meaning
// depends on the holder's context:
//
//   * a REGISTER message carries the provider's pid; the transport rebases
//     it into the registry's context (R(sender));
//   * the registry stores that pid (valid in *its* context);
//   * a LOOKUP reply embeds the stored pid; the transport rebases it again
//     into the *requester's* context.
//
// Two rebases, and the requester ends up with a pid that denotes the right
// process from where *it* stands — service-name coherence without any
// global addresses. Disable the transport remap and lookups hand out pids
// that lie (testable, and tested).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "os/process_manager.hpp"

namespace namecoh {

struct RegistryStats {
  std::uint64_t registers = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t unregisters = 0;
};

/// Wire protocol (Transport Message::type).
struct RegistryWire {
  static constexpr std::uint32_t kRegister = 200;   // [name, pid]
  static constexpr std::uint32_t kUnregister = 201; // [name]
  static constexpr std::uint32_t kLookup = 202;     // [name, token]
  static constexpr std::uint32_t kReply = 203;      // [token, found, pid]
};

/// The registry server: one endpoint, a name → pid table.
class ServiceRegistry {
 public:
  ServiceRegistry(Internetwork& net, Transport& transport,
                  MachineId machine);

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const RegistryStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  /// Direct (non-message) inspection, for tests.
  [[nodiscard]] std::optional<Pid> stored_pid(const std::string& name) const;

 private:
  void handle(EndpointId self, const Message& message);

  Internetwork& net_;
  Transport& transport_;
  EndpointId endpoint_;
  RegistryStats stats_;
  std::map<std::string, Pid> table_;  // pids valid in the registry's context
};

/// Client-side helpers: register/lookup on behalf of a process, driving the
/// simulator until the reply lands.
class RegistryClient {
 public:
  RegistryClient(Internetwork& net, Transport& transport, Simulator& sim,
                 const ServiceRegistry& registry);

  /// Announce `provider` (an endpoint) under `service` from `from`'s
  /// location. Typically from == provider ("register myself").
  Status announce(EndpointId from, const std::string& service,
                  EndpointId provider);
  Status withdraw(EndpointId from, const std::string& service);

  /// Look up a service for `requester`; the returned pid is valid in the
  /// requester's context.
  Result<Pid> locate(EndpointId requester, const std::string& service);

 private:
  Result<Pid> registry_pid_for(EndpointId from) const;

  Internetwork& net_;
  Transport& transport_;
  Simulator& sim_;
  const ServiceRegistry& registry_;
  std::uint64_t next_token_ = 1;
};

}  // namespace namecoh
